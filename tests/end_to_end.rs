//! End-to-end integration tests: full pipeline over benchmark circuits and
//! production topologies, checking semantic correctness and the paper's
//! directional claims (MIRAGE reduces SWAPs/depth vs the SABRE baseline).

use mirage::circuit::generators::{ghz, qft, two_local_full, wstate};
use mirage::core::verify::verify_routed;
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::topology::CouplingMap;

#[test]
fn mirage_preserves_semantics_on_qft() {
    let c = qft(5, true);
    let target = Target::sqrt_iswap(CouplingMap::line(5));
    for seed in [1u64, 2, 3] {
        let mut opts = TranspileOptions::quick(RouterKind::Mirage, seed);
        opts.use_vf2 = false;
        let out = transpile(&c, &target, &opts).expect("transpiles");
        assert!(
            verify_routed(&c, &out.as_routed(), &target),
            "seed {seed} broke semantics"
        );
    }
}

#[test]
fn sabre_preserves_semantics_on_qft() {
    let c = qft(5, false);
    let target = Target::sqrt_iswap(CouplingMap::grid(2, 3));
    let mut opts = TranspileOptions::quick(RouterKind::Sabre, 4);
    opts.use_vf2 = false;
    let out = transpile(&c, &target, &opts).expect("transpiles");
    assert!(verify_routed(&c, &out.as_routed(), &target));
}

#[test]
fn all_output_gates_respect_topology() {
    let c = two_local_full(9, 1, 5);
    let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
    for router in [
        RouterKind::Sabre,
        RouterKind::MirageSwaps,
        RouterKind::Mirage,
    ] {
        let mut opts = TranspileOptions::quick(router, 6);
        opts.use_vf2 = false;
        let out = transpile(&c, &target, &opts).expect("transpiles");
        for instr in &out.circuit.instructions {
            if instr.gate.is_two_qubit() {
                assert!(
                    target
                        .topology()
                        .are_adjacent(instr.qubits[0], instr.qubits[1]),
                    "{router:?} emitted an uncoupled gate on {:?}",
                    instr.qubits
                );
            }
        }
    }
}

#[test]
fn mirage_depth_never_worse_than_sabre_by_much() {
    // Directional claim on a routing-heavy workload; MIRAGE should clearly
    // win (the paper reports ≈30% average depth reduction).
    let c = two_local_full(6, 2, 9);
    let target = Target::sqrt_iswap(CouplingMap::line(6));
    let mut sabre_opts = TranspileOptions::quick(RouterKind::Sabre, 7);
    sabre_opts.use_vf2 = false;
    let mut mirage_opts = TranspileOptions::quick(RouterKind::Mirage, 7);
    mirage_opts.use_vf2 = false;
    let sabre = transpile(&c, &target, &sabre_opts).unwrap();
    let mirage = transpile(&c, &target, &mirage_opts).unwrap();
    assert!(
        mirage.metrics.depth_estimate < sabre.metrics.depth_estimate,
        "mirage {:.2} should beat sabre {:.2} on a line-routed dense circuit",
        mirage.metrics.depth_estimate,
        sabre.metrics.depth_estimate
    );
    assert!(mirage.metrics.swaps_inserted <= sabre.metrics.swaps_inserted);
}

#[test]
fn heavy_hex_routing_completes() {
    let c = wstate(27);
    let target = Target::sqrt_iswap(CouplingMap::heavy_hex(5));
    let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Mirage, 8)).unwrap();
    assert_eq!(out.circuit.n_qubits, 57);
    for instr in &out.circuit.instructions {
        if instr.gate.is_two_qubit() {
            assert!(target
                .topology()
                .are_adjacent(instr.qubits[0], instr.qubits[1]));
        }
    }
}

#[test]
fn vf2_handles_linear_circuits_without_routing() {
    let c = ghz(10);
    let target = Target::sqrt_iswap(CouplingMap::heavy_hex(5));
    let out = transpile(&c, &target, &TranspileOptions::quick(RouterKind::Mirage, 9)).unwrap();
    assert!(out.used_vf2);
    assert_eq!(out.metrics.swaps_inserted, 0);
    assert_eq!(out.metrics.mirrors_accepted, 0);
}

#[test]
fn results_deterministic_across_runs() {
    let c = qft(6, false);
    let target = Target::sqrt_iswap(CouplingMap::line(6));
    let opts = TranspileOptions::quick(RouterKind::Mirage, 10);
    let a = transpile(&c, &target, &opts).unwrap();
    let b = transpile(&c, &target, &opts).unwrap();
    assert_eq!(a.circuit, b.circuit);
    assert_eq!(a.metrics.swaps_inserted, b.metrics.swaps_inserted);
}

#[test]
fn mirror_acceptance_tracks_aggression() {
    // A3 (always accept) must accept at least as many mirrors as A0 (never).
    let c = two_local_full(5, 1, 11);
    let target = Target::sqrt_iswap(CouplingMap::line(5));
    let run = |mix: [f64; 4]| {
        let mut opts = TranspileOptions::quick(RouterKind::Mirage, 12);
        opts.use_vf2 = false;
        opts.trials.aggression_mix = mix;
        opts.trials.layout_trials = 1;
        opts.trials.routing_trials = 1;
        transpile(&c, &target, &opts)
            .unwrap()
            .metrics
            .mirrors_accepted
    };
    let never = run([1.0, 0.0, 0.0, 0.0]);
    let always = run([0.0, 0.0, 0.0, 1.0]);
    assert_eq!(never, 0);
    assert!(always > 0);
}
