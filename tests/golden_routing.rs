//! Golden bit-identity tests for the routing hot path.
//!
//! Every case routes a fixed circuit with a fixed seed and compares the
//! routed circuit's structural fingerprint ([`Circuit::fingerprint`]),
//! SWAP count, and mirror count against values pinned at the commit
//! *before* the allocation-free router rewrite landed. Any hot-path
//! optimization that changes a single output bit — a reordered candidate,
//! a perturbed float, a different tie-break — fails here.
//!
//! The matrix covers {line, grid, heavy-hex} × {SABRE, A1, A2, A3} ×
//! {uniform, skewed calibration} for direct `route` calls, plus one
//! full `TrialEngine` run per topology (which also exercises
//! `absorb_adjacent_swaps` and post-selection).
//!
//! To re-pin after an *intentional* behavior change:
//!
//! ```text
//! MIRAGE_REGEN_GOLDEN=1 cargo test --test golden_routing -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::generators::{qft, two_local_full};
use mirage::circuit::{Circuit, Dag};
use mirage::core::calibration::Calibration;
use mirage::core::layout::Layout;
use mirage::core::router::{node_coords, route, Aggression, RouterConfig};
use mirage::core::trials::{Metric, TrialEngine, TrialOptions};
use mirage::core::verify::verify_routed;
use mirage::core::Target;
use mirage::math::Rng;
use mirage::topology::CouplingMap;

/// label, routed-circuit fingerprint, swaps inserted, mirrors accepted.
type Golden = (&'static str, u64, usize, usize);

/// Pinned at the pre-rewrite router (PR 4 head). Do not edit by hand.
const GOLDEN: &[Golden] = &[
    ("line-8/sabre/uniform", 0x9A5D110826D99A4D, 36, 0),
    ("line-8/sabre/skewed", 0x9A5D110826D99A4D, 36, 0),
    ("line-8/a1/uniform", 0xB009471C4D0FA0CB, 35, 10),
    ("line-8/a1/skewed", 0xFE05B8148927CF16, 36, 9),
    ("line-8/a2/uniform", 0xB009471C4D0FA0CB, 35, 10),
    ("line-8/a2/skewed", 0xFE05B8148927CF16, 36, 9),
    ("line-8/a3/uniform", 0x872775A64DF15156, 29, 28),
    ("line-8/a3/skewed", 0x872775A64DF15156, 29, 28),
    ("grid-3x3/sabre/uniform", 0x57EA49A2DC5AD9F6, 20, 0),
    ("grid-3x3/sabre/skewed", 0x57EA49A2DC5AD9F6, 20, 0),
    ("grid-3x3/a1/uniform", 0x15441373A02EDF74, 15, 11),
    ("grid-3x3/a1/skewed", 0x02AD18A7F8BAE72E, 16, 10),
    ("grid-3x3/a2/uniform", 0x15441373A02EDF74, 15, 11),
    ("grid-3x3/a2/skewed", 0x02AD18A7F8BAE72E, 16, 10),
    ("grid-3x3/a3/uniform", 0xF7DC8CCD78D891B6, 17, 32),
    ("grid-3x3/a3/skewed", 0xF7DC8CCD78D891B6, 17, 32),
    ("heavy-hex-3/sabre/uniform", 0x203C7DE95E10E290, 88, 0),
    ("heavy-hex-3/sabre/skewed", 0x203C7DE95E10E290, 88, 0),
    ("heavy-hex-3/a1/uniform", 0x7B807F7A1733BE7E, 81, 12),
    ("heavy-hex-3/a1/skewed", 0x7B807F7A1733BE7E, 81, 12),
    ("heavy-hex-3/a2/uniform", 0x969108E950B493B8, 63, 34),
    ("heavy-hex-3/a2/skewed", 0x969108E950B493B8, 63, 34),
    ("heavy-hex-3/a3/uniform", 0x71A5D446674E59D2, 72, 45),
    ("heavy-hex-3/a3/skewed", 0x71A5D446674E59D2, 72, 45),
    ("line-8/trials", 0x59F208C844814F20, 3, 30),
    ("grid-3x3/trials", 0xF2C2A7709095FF21, 15, 10),
    ("heavy-hex-3/trials", 0xFB5B655AA1A22B9D, 5, 40),
];

struct Topo {
    name: &'static str,
    map: CouplingMap,
    circuit: Circuit,
    cal_seed: u64,
}

fn topologies() -> Vec<Topo> {
    vec![
        // QFT circuits keep their controlled-phase coordinate classes
        // through consolidation (Weyl coords are invariant under the
        // absorbed 1Q gates), and a cphase class and its mirror decompose
        // at *different* costs — so the skewed-calibration cases really
        // price edges into the mirror decision. two_local_full circuits
        // consolidate into generic SU(4) blocks whose class and mirror
        // both cost three applications, and the edge factor cancels.
        Topo {
            name: "line-8",
            map: CouplingMap::line(8),
            circuit: qft(8, false),
            cal_seed: 0xCA11,
        },
        Topo {
            name: "grid-3x3",
            map: CouplingMap::grid(3, 3),
            circuit: qft(8, true),
            cal_seed: 0xCA12,
        },
        Topo {
            name: "heavy-hex-3",
            map: CouplingMap::heavy_hex(3),
            circuit: two_local_full(10, 1, 0xC7),
            cal_seed: 0xCA13,
        },
    ]
}

fn target_for(topo: &Topo, calibrated: bool) -> Target {
    let t = Target::sqrt_iswap(topo.map.clone());
    if calibrated {
        // Strong 10x outliers (the calibration_skew setting): mild synthetic
        // factors never flip a mirror decision on these small circuits, so a
        // skewed device is what actually exercises edge-priced routing.
        let cal = Calibration::skewed(&topo.map, &mut Rng::new(topo.cal_seed), 3e-3, 0.25, 10.0)
            .expect("skewed covers the map");
        t.with_calibration(cal).expect("calibration covers the map")
    } else {
        t
    }
}

/// One deterministic direct `route` call from a seeded random layout.
fn route_case(topo: &Topo, target: &Target, aggression: Option<Aggression>, seed: u64) -> Case {
    let cc = consolidate(&topo.circuit);
    let dag = Dag::from_circuit(&cc);
    let coords = node_coords(&dag);
    let config = RouterConfig {
        aggression,
        ..RouterConfig::default()
    };
    let mut rng = Rng::new(seed);
    let layout = Layout::random(cc.n_qubits, target.n_qubits(), &mut rng);
    let routed = route(&dag, &coords, target, layout, &config, &mut rng);
    assert!(
        verify_routed(&topo.circuit, &routed, target),
        "golden case must stay semantically valid"
    );
    Case {
        fingerprint: routed.circuit.fingerprint(),
        swaps: routed.swaps_inserted,
        mirrors: routed.mirrors_accepted,
    }
}

/// The trial-engine options every golden trials case runs under.
fn trials_opts(topo: &Topo) -> TrialOptions {
    TrialOptions::quick(Metric::EstimatedSuccess, 0x901D + topo.cal_seed)
}

/// Thread count for golden trial runs: `MIRAGE_TEST_THREADS=<n>` runs the
/// trial engine in parallel with `n` workers (CI runs the suite both ways
/// to gate pool-size invariance); unset runs it serially.
fn env_threads() -> Option<usize> {
    std::env::var("MIRAGE_TEST_THREADS")
        .ok()
        .map(|s| s.parse().expect("MIRAGE_TEST_THREADS must be an integer"))
}

/// One full trial-engine run (layout strategies, refinement, routing
/// trials, SWAP absorption, post-selection). `threads: None` obeys
/// `MIRAGE_TEST_THREADS` (serial by default); `Some(n)` forces an
/// `n`-thread parallel run. Every choice must produce the same pinned
/// fingerprint — that is the engine's determinism contract.
fn trials_case_threaded(topo: &Topo, threads: Option<usize>) -> Case {
    let target = target_for(topo, true);
    let cc = consolidate(&topo.circuit);
    let engine = TrialEngine::new(&cc, &target);
    let mut opts = trials_opts(topo);
    if let Some(n) = threads.or_else(env_threads) {
        opts.parallel = true;
        opts.threads = n;
    }
    let outcome = engine.run_detailed(true, &opts).expect("valid mix");
    assert!(
        verify_routed(&topo.circuit, &outcome.best, &target),
        "golden trials case must stay semantically valid"
    );
    Case {
        fingerprint: outcome.best.circuit.fingerprint(),
        swaps: outcome.best.swaps_inserted,
        mirrors: outcome.best.mirrors_accepted,
    }
}

fn trials_case(topo: &Topo) -> Case {
    trials_case_threaded(topo, None)
}

struct Case {
    fingerprint: u64,
    swaps: usize,
    mirrors: usize,
}

fn run_all() -> Vec<(String, Case)> {
    let modes: [(&str, Option<Aggression>); 4] = [
        ("sabre", None),
        ("a1", Some(Aggression::A1)),
        ("a2", Some(Aggression::A2)),
        ("a3", Some(Aggression::A3)),
    ];
    let mut out = Vec::new();
    for topo in &topologies() {
        for (mode_name, aggression) in modes {
            for (cal_name, calibrated) in [("uniform", false), ("skewed", true)] {
                let target = target_for(topo, calibrated);
                let seed = 0x5EED ^ topo.cal_seed ^ (mode_name.len() as u64) << 8;
                let case = route_case(topo, &target, aggression, seed);
                out.push((format!("{}/{}/{}", topo.name, mode_name, cal_name), case));
            }
        }
    }
    for topo in &topologies() {
        out.push((format!("{}/trials", topo.name), trials_case(topo)));
    }
    out
}

/// Pool-size invariance: the golden trials fingerprints must come out of
/// the engine unchanged at every thread count, including more workers
/// than trials. Pre-split seeds + trial-index reduction order make the
/// winner independent of scheduling; this is the proof.
#[test]
fn trials_fingerprints_invariant_across_thread_counts() {
    for topo in &topologies() {
        let label = format!("{}/trials", topo.name);
        let &(_, g_fp, g_swaps, g_mirrors) = GOLDEN
            .iter()
            .find(|(l, ..)| *l == label)
            .expect("every topology has a pinned trials case");
        for threads in [1usize, 2, 4, 8] {
            let case = trials_case_threaded(topo, Some(threads));
            assert_eq!(
                (case.fingerprint, case.swaps, case.mirrors),
                (g_fp, g_swaps, g_mirrors),
                "{label} @ {threads} threads: parallel run drifted from the \
                 pinned serial fingerprint (got 0x{:016X}, {} swaps, {} mirrors)",
                case.fingerprint,
                case.swaps,
                case.mirrors
            );
        }
    }
}

/// Mid-job calibration swap under parallel trials: a warm engine (scratch
/// memos and shared cache filled under calibration A) that hot-swaps to
/// calibration B must produce — at every thread count — exactly what a
/// cold engine on a fresh target built with B produces. This is the
/// generation-tagging contract of the per-worker cost memo: the epoch
/// bump from `swap_calibration` invalidates every memoized cost.
#[test]
fn calibration_swap_mid_job_matches_fresh_target_at_every_thread_count() {
    let topos = topologies();
    let topo = &topos[1]; // grid-3x3 / qft(8, true): mirror decisions price edges
    let cc = consolidate(&topo.circuit);
    let cal_b = Calibration::skewed(&topo.map, &mut Rng::new(0xB0B5EED), 3e-3, 0.25, 10.0)
        .expect("skewed covers the map");

    // Reference: a cold serial run on a fresh target carrying B from birth.
    let fresh_target = Target::sqrt_iswap(topo.map.clone())
        .with_calibration(cal_b.clone())
        .expect("calibration covers the map");
    let fresh_engine = TrialEngine::new(&cc, &fresh_target);
    let reference = fresh_engine
        .run_detailed(true, &trials_opts(topo))
        .expect("valid mix")
        .best
        .circuit
        .fingerprint();

    let golden_label = format!("{}/trials", topo.name);
    let &(_, warm_fp, ..) = GOLDEN
        .iter()
        .find(|(l, ..)| *l == golden_label)
        .expect("pinned trials case");

    for threads in [1usize, 2, 4, 8] {
        let target = target_for(topo, true); // calibration A (skewed, cal_seed)
        let engine = TrialEngine::new(&cc, &target);
        let mut opts = trials_opts(topo);
        opts.parallel = true;
        opts.threads = threads;
        // Warm run under A: fills the pooled scratches' cost memos and the
        // shared cache — and must still match the pinned golden.
        let warm = engine.run_detailed(true, &opts).expect("valid mix");
        assert_eq!(
            warm.best.circuit.fingerprint(),
            warm_fp,
            "warm run @ {threads} threads drifted from the pinned golden"
        );
        target
            .swap_calibration(std::sync::Arc::new(cal_b.clone()))
            .expect("calibration covers the map");
        let swapped = engine.run_detailed(true, &opts).expect("valid mix");
        assert_eq!(
            swapped.best.circuit.fingerprint(),
            reference,
            "post-swap run @ {threads} threads must be bit-identical to a \
             fresh target built with the new calibration"
        );
    }
}

#[test]
fn routed_circuits_match_pinned_fingerprints() {
    let actual = run_all();
    if std::env::var("MIRAGE_REGEN_GOLDEN").is_ok() {
        println!("const GOLDEN: &[Golden] = &[");
        for (label, case) in &actual {
            println!(
                "    (\"{label}\", 0x{fp:016X}, {swaps}, {mirrors}),",
                fp = case.fingerprint,
                swaps = case.swaps,
                mirrors = case.mirrors
            );
        }
        println!("];");
        panic!("MIRAGE_REGEN_GOLDEN set: paste the table above over GOLDEN");
    }
    assert_eq!(actual.len(), GOLDEN.len(), "case matrix changed shape");
    for ((label, case), &(g_label, g_fp, g_swaps, g_mirrors)) in actual.iter().zip(GOLDEN) {
        assert_eq!(label, g_label, "case order changed");
        assert_eq!(
            (case.fingerprint, case.swaps, case.mirrors),
            (g_fp, g_swaps, g_mirrors),
            "{label}: routed output drifted from the pinned pre-rewrite behavior \
             (got fingerprint 0x{:016X}, {} swaps, {} mirrors)",
            case.fingerprint,
            case.swaps,
            case.mirrors
        );
    }
}
