//! The network front, proven by fault injection.
//!
//! Three rings of coverage, inside out:
//!
//! 1. **Frame codec properties** — seeded-RNG round-trips over arbitrary
//!    payloads, plus every way a frame can be damaged (truncated at each
//!    prefix, corrupted at each byte, oversized) must yield a *typed*
//!    error: no panics, no over-reads.
//! 2. **Envelope properties** — versioning, unknown tags, truncation and
//!    trailing bytes are all typed decode failures.
//! 3. **Live loopback TCP** — a real `NetServer` under hostile clients:
//!    disconnects mid-job, garbage bytes, malformed envelopes, expired
//!    deadlines, full queues. The server must answer with typed protocol
//!    responses and keep serving; and the answers it does produce must be
//!    bit-identical to in-process `TranspileService` runs with the same
//!    seeds, at pool sizes 1 and 4.

use mirage::circuit::generators::{ghz, qft};
use mirage::circuit::qasm::to_qasm;
use mirage::core::RouterKind;
use mirage::core::Target;
use mirage::math::Rng;
use mirage::serve::net::frame::{
    decode_frame, encode_frame, read_frame, FrameError, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use mirage::serve::net::proto::{
    ProtoError, Request, Response, SubmitRequest, WireOptions, PROTO_VERSION,
};
use mirage::serve::net::{
    frame, ChaosConfig, ChaosConnector, ChaosPlan, ClientError, FailureKind, NetClient, NetServer,
    RetryPolicy, ServeConfig, TcpConnector,
};
use mirage::serve::{InjectedFault, Lane, TranspileJob, TranspileService};
use mirage::topology::CouplingMap;
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Ring 1: frame codec properties
// ---------------------------------------------------------------------------

#[test]
fn frames_round_trip_arbitrary_payloads() {
    let mut rng = Rng::new(0xF4A3E);
    // Boundary sizes plus a seeded sweep of arbitrary ones.
    let mut sizes = vec![0usize, 1, 2, HEADER_LEN, 255, 256, 4096];
    for _ in 0..40 {
        sizes.push(rng.below(16 * 1024));
    }
    for size in sizes {
        let payload: Vec<u8> = (0..size).map(|_| rng.next_u64() as u8).collect();
        let frame = encode_frame(&payload);
        // Buffer decoder.
        let (decoded, consumed) = decode_frame(&frame, DEFAULT_MAX_PAYLOAD)
            .unwrap_or_else(|e| panic!("size {size}: {e}"));
        assert_eq!(decoded, payload);
        assert_eq!(consumed, frame.len());
        // Streaming decoder, including at the exact cap.
        let mut cursor = Cursor::new(frame);
        assert_eq!(read_frame(&mut cursor, size as u32).unwrap(), payload);
    }
}

#[test]
fn truncation_at_every_prefix_is_a_typed_error() {
    let payload = b"the quick brown fox jumps over the lazy daemon";
    let frame = encode_frame(payload);
    for cut in 0..frame.len() {
        let prefix = &frame[..cut];
        // Buffer decoder: empty input reads as Closed, anything shorter
        // than the full frame as Truncated. Never a panic, never Ok.
        match decode_frame(prefix, DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::Closed) => assert_eq!(cut, 0),
            Err(FrameError::Truncated { got, .. }) => assert!(got <= cut),
            other => panic!("prefix {cut}: expected truncation, got {other:?}"),
        }
        // Streaming decoder over the same prefix.
        let mut cursor = Cursor::new(prefix.to_vec());
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::Closed) => assert_eq!(cut, 0),
            Err(FrameError::Truncated { .. }) => {}
            other => panic!("stream prefix {cut}: expected truncation, got {other:?}"),
        }
    }
}

#[test]
fn corruption_at_every_byte_is_a_typed_error_or_detected() {
    let payload = b"seeded corruption sweep";
    let clean = encode_frame(payload);
    let mut rng = Rng::new(0xC0FFEE);
    for pos in 0..clean.len() {
        let mut frame = clean.clone();
        // Flip 1..=8 random bits of this byte (never zero flips).
        let flips = 1 + rng.below(8);
        for _ in 0..flips {
            frame[pos] ^= 1u8 << rng.below(8);
        }
        if frame[pos] == clean[pos] {
            continue; // bit flips cancelled out; nothing corrupted
        }
        let result = decode_frame(&frame, DEFAULT_MAX_PAYLOAD);
        match &result {
            // Magic bytes damaged.
            Err(FrameError::BadMagic(_)) => assert!(pos < 2),
            // Length field damaged: reads as over-cap or as a longer/
            // shorter frame than the buffer holds…
            Err(FrameError::Oversized { .. }) | Err(FrameError::Truncated { .. }) => {
                assert!((2..6).contains(&pos))
            }
            // …a *shrunk* length re-frames the tail, which the checksum
            // then catches, same as checksum-field or payload damage.
            Err(FrameError::ChecksumMismatch { .. }) => {}
            other => panic!("corrupt byte {pos}: undetected corruption: {other:?}"),
        }
    }
}

#[test]
fn oversized_frames_never_over_read() {
    /// Reader that counts every byte handed out, to prove the decoder
    /// stopped at the header.
    struct Counting<R> {
        inner: R,
        read: usize,
    }
    impl<R: Read> Read for Counting<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.read += n;
            Ok(n)
        }
    }
    // A frame whose header declares 1 MiB; the reader's cap is 1 KiB.
    let frame = encode_frame(&vec![0xAB; 1024 * 1024]);
    let mut counting = Counting {
        inner: Cursor::new(frame),
        read: 0,
    };
    let result = read_frame(&mut counting, 1024);
    assert_eq!(
        result,
        Err(FrameError::Oversized {
            len: 1024 * 1024,
            max: 1024
        })
    );
    assert_eq!(
        counting.read, HEADER_LEN,
        "decoder must stop after the header — no payload byte may be \
         read or buffered for a frame it already rejected"
    );
}

// ---------------------------------------------------------------------------
// Ring 2: envelope properties
// ---------------------------------------------------------------------------

fn sample_submit(label: &str, qasm: &str, seed: u64) -> SubmitRequest {
    SubmitRequest {
        label: label.to_owned(),
        qasm: qasm.to_owned(),
        seed,
        lane: Lane::Batch,
        deadline_ms: None,
        options: quick_wire(),
        fault: None,
    }
}

/// The wire options every loopback test runs under: small trial counts,
/// VF2 off (so routing actually runs), parallelism from
/// `MIRAGE_TEST_THREADS` exactly like the golden-routing suite.
fn quick_wire() -> WireOptions {
    let mut wire = WireOptions::quick(RouterKind::Mirage);
    wire.layout_trials = 2;
    wire.routing_trials = 2;
    wire.use_vf2 = false;
    if let Some(threads) = env_threads() {
        wire.parallel = true;
        wire.threads = threads as u32;
    }
    wire
}

/// Thread count for in-job parallelism: `MIRAGE_TEST_THREADS=<n>` runs
/// every loopback job's trial engine with `n` workers (CI runs the suite
/// both ways to gate thread-count invariance); unset runs it serially.
fn env_threads() -> Option<usize> {
    std::env::var("MIRAGE_TEST_THREADS")
        .ok()
        .map(|s| s.parse().expect("MIRAGE_TEST_THREADS must be an integer"))
}

#[test]
fn envelope_decode_failures_are_typed() {
    let submit = Request::Submit(sample_submit("x", "OPENQASM 2.0;\n", 1)).encode();

    // Foreign version byte.
    let mut wrong_version = submit.clone();
    wrong_version[0] = 9;
    assert_eq!(
        Request::decode(&wrong_version),
        Err(ProtoError::UnsupportedVersion(9))
    );

    // Unknown message tag.
    let mut bad_tag = submit.clone();
    bad_tag[1] = 0x7F;
    assert_eq!(
        Request::decode(&bad_tag),
        Err(ProtoError::UnknownTag {
            what: "request",
            tag: 0x7F
        })
    );

    // Truncation at every prefix is typed, never a panic.
    for cut in 0..submit.len() {
        match Request::decode(&submit[..cut]) {
            Err(
                ProtoError::Truncated { .. }
                | ProtoError::UnsupportedVersion(_)
                | ProtoError::UnknownTag { .. }
                | ProtoError::InvalidUtf8 { .. },
            ) => {}
            other => panic!("prefix {cut}: expected a typed error, got {other:?}"),
        }
    }

    // Trailing bytes after a complete message are rejected.
    let mut padded = submit.clone();
    padded.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        Request::decode(&padded),
        Err(ProtoError::TrailingBytes { extra: 3 })
    );

    // Non-UTF-8 in a string field.
    let mut bad_utf8 = Request::Submit(sample_submit("ab", "OPENQASM 2.0;\n", 1)).encode();
    // label starts after version byte + tag byte + 4-byte length.
    bad_utf8[6] = 0xFF;
    assert_eq!(
        Request::decode(&bad_utf8),
        Err(ProtoError::InvalidUtf8 { what: "label" })
    );
}

// ---------------------------------------------------------------------------
// Ring 3: live loopback TCP
// ---------------------------------------------------------------------------

fn grid_target() -> Arc<Target> {
    Arc::new(Target::sqrt_iswap(CouplingMap::grid(6, 6)))
}

/// Raw-socket submit: send the request and return the stream for manual
/// response reads (the fault tests need sub-conversation control the
/// blocking client deliberately doesn't expose).
fn raw_submit(addr: std::net::SocketAddr, submit: SubmitRequest) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    frame::write_frame(&mut stream, &Request::Submit(submit).encode()).expect("send");
    stream
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = read_frame(stream, DEFAULT_MAX_PAYLOAD).expect("read frame");
    Response::decode(&payload).expect("decode response")
}

/// Wait for `Running` on a raw stream (consuming the `Queued` edge), so
/// the caller knows the single worker is occupied by this job.
fn wait_until_running(stream: &mut TcpStream) {
    match read_response(stream) {
        Response::Queued { .. } => {}
        other => panic!("expected Queued, got {other:?}"),
    }
    match read_response(stream) {
        Response::Running { .. } => {}
        other => panic!("expected Running, got {other:?}"),
    }
}

/// A job slow enough (hundreds of routing trials on QFT-12) to keep a
/// worker busy while a test stages the queue behind it.
fn slow_submit(label: &str) -> SubmitRequest {
    let mut submit = sample_submit(label, &to_qasm(&qft(12, false)), 0x51_0e);
    submit.options.layout_trials = 6;
    submit.options.routing_trials = 8;
    submit
}

#[test]
fn ping_reports_server_identity() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(2)).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let info = client.ping().unwrap();
    assert_eq!(info.version, PROTO_VERSION);
    assert_eq!(info.workers, 2);
    assert_eq!(info.generation, 0);
    let stats = server.shutdown();
    assert_eq!(stats.connections, 1);
}

/// The headline acceptance test: a loopback QFT-32 round trip is
/// bit-identical to an in-process `TranspileService::run_batch` with the
/// same seed — same fingerprint, same QASM text — at pool sizes 1 and 4.
#[test]
fn loopback_qft32_matches_in_process_service_bit_for_bit() {
    let wire = quick_wire();
    let qasm = to_qasm(&qft(32, false));
    let seed = 0x9F732;

    // In-process reference: the same job through the service directly.
    let reference = {
        let service = TranspileService::new(grid_target(), 1);
        let job = TranspileJob::new("qft-32", qft(32, false), wire.to_options(seed));
        let results = service.run_batch(vec![job]).unwrap();
        let out = results.into_iter().next().unwrap().outcome.expect("routes");
        (out.circuit.fingerprint(), to_qasm(&out.circuit))
    };

    for workers in [1usize, 4] {
        let server =
            NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(workers)).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let mut submit = sample_submit("qft-32", &qasm, seed);
        submit.options = wire.clone();
        let outcome = client.submit(submit).unwrap();
        assert_eq!(
            outcome.done.fingerprint, reference.0,
            "{workers}-worker loopback result must match the in-process fingerprint"
        );
        assert_eq!(
            outcome.done.qasm, reference.1,
            "{workers}-worker loopback QASM must match byte-for-byte"
        );
        assert_eq!(outcome.done.generation, 0);
        assert!(outcome.done.metrics.two_qubit_gates > 0);
        server.shutdown();
    }
}

#[test]
fn client_disconnect_mid_job_leaves_the_server_serving() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Occupy the worker and then vanish: connect, submit, confirm the job
    // is running, and slam the connection shut.
    {
        let mut doomed = raw_submit(addr, slow_submit("abandoned"));
        wait_until_running(&mut doomed);
        // scope end drops the stream — TCP reset/close mid-job
    }

    // The pool must finish the orphaned job and keep serving new clients.
    let mut client = NetClient::connect(addr).unwrap();
    let outcome = client
        .submit(sample_submit("survivor", &to_qasm(&ghz(4)), 7))
        .expect("server must survive a mid-job disconnect");
    assert!(outcome.done.metrics.two_qubit_gates > 0);

    let stats = server.shutdown();
    assert_eq!(
        stats.service.jobs, 2,
        "both the abandoned and the follow-up job must have been processed"
    );
}

#[test]
fn garbage_bytes_get_an_error_and_only_that_connection_dies() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Not even a frame: an HTTP request. The server must answer with a
    // typed protocol error and close only this connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    match read_response(&mut stream) {
        Response::ProtocolError { message } => assert!(message.contains("frame")),
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    // The connection is closed afterwards (stream desync is fatal).
    assert!(matches!(
        read_frame(&mut stream, DEFAULT_MAX_PAYLOAD),
        Err(FrameError::Closed | FrameError::Io(_) | FrameError::Truncated { .. })
    ));

    // A well-formed *frame* holding a malformed *envelope* keeps the
    // connection: framing preserved sync, so the conversation continues.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut bad_envelope = vec![PROTO_VERSION, 0x7F];
    bad_envelope.extend_from_slice(b" not a message");
    frame::write_frame(&mut stream, &bad_envelope).unwrap();
    match read_response(&mut stream) {
        Response::ProtocolError { message } => assert!(message.contains("tag")),
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    // …same connection, valid request: still served.
    frame::write_frame(&mut stream, &Request::Ping.encode()).unwrap();
    assert!(matches!(read_response(&mut stream), Response::Pong { .. }));

    // And the server as a whole never stopped serving.
    let mut client = NetClient::connect(addr).unwrap();
    client.ping().expect("server survives garbage connections");
    server.shutdown();
}

#[test]
fn oversized_request_is_rejected_from_the_header_alone() {
    let config = ServeConfig::new(1).with_max_payload(1024);
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &config).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Send only the header of a frame declaring a 1 MiB payload. A
    // correct server rejects from the header; a broken one would block
    // waiting for a megabyte that never comes.
    let frame = encode_frame(&vec![0u8; 1024 * 1024]);
    stream.write_all(&frame[..HEADER_LEN]).unwrap();
    match read_response(&mut stream) {
        Response::ProtocolError { message } => {
            assert!(message.contains("exceeds cap"), "got: {message}")
        }
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn expired_deadline_is_rejected_at_dequeue_over_the_wire() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Hold the single worker so the deadlined job has to sit in queue.
    let mut blocker = raw_submit(addr, slow_submit("blocker"));
    wait_until_running(&mut blocker);

    // This job's 1 ms deadline will be long gone when the worker frees up.
    let mut stale = sample_submit("stale", &to_qasm(&ghz(4)), 3);
    stale.deadline_ms = Some(1);
    let mut client = NetClient::connect(addr).unwrap();
    match client.submit(stale) {
        Err(ClientError::Failed { kind, message, .. }) => {
            assert_eq!(kind, FailureKind::DeadlineExceeded);
            assert!(message.contains("deadline exceeded"), "got: {message}");
        }
        other => panic!("expected a DeadlineExceeded failure, got {other:?}"),
    }

    // The blocker itself still completes fine.
    assert!(matches!(read_response(&mut blocker), Response::Done(_)));
    let stats = server.shutdown();
    assert_eq!(stats.service.jobs, 2, "the expired job counts as processed");
}

#[test]
fn full_queue_answers_typed_busy_without_blocking() {
    let config = ServeConfig::new(1).with_queue_capacity(1);
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &config).unwrap();
    let addr = server.local_addr();

    // Occupy the worker, then fill this connection's batch-lane budget
    // (admission is per client per lane).
    let mut blocker = raw_submit(addr, slow_submit("blocker"));
    wait_until_running(&mut blocker);
    let mut queued = raw_submit(addr, sample_submit("queued", &to_qasm(&ghz(4)), 5));
    match read_response(&mut queued) {
        Response::Queued { lane, .. } => assert_eq!(lane, Lane::Batch),
        other => panic!("expected Queued, got {other:?}"),
    }

    // Second submission pipelined on the SAME connection: this client's
    // batch budget is full → typed Busy, answered immediately (bounded
    // wait proves nobody blocked on the queue).
    let started = Instant::now();
    frame::write_frame(
        &mut queued,
        &Request::Submit(sample_submit("bounced", &to_qasm(&ghz(4)), 6)).encode(),
    )
    .unwrap();
    loop {
        match read_response(&mut queued) {
            Response::Busy { lane, capacity } => {
                assert_eq!(lane, Lane::Batch);
                assert_eq!(capacity, 1);
                break;
            }
            Response::Running { .. } => continue,
            other => panic!("expected Busy, got {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "Busy must be immediate, not queued-then-failed"
    );

    // A different connection is a different admission client: its own
    // batch budget is untouched, so the same instant still accepts.
    let mut other_client = raw_submit(addr, sample_submit("other-client", &to_qasm(&ghz(4)), 60));
    match read_response(&mut other_client) {
        Response::Queued { lane, .. } => assert_eq!(lane, Lane::Batch),
        other => panic!("expected Queued, got {other:?}"),
    }

    // The interactive lane has its own budget: same instant, still open.
    let mut express = sample_submit("express", &to_qasm(&ghz(4)), 7);
    express.lane = Lane::Interactive;
    let mut express_conn = raw_submit(addr, express);
    match read_response(&mut express_conn) {
        Response::Queued { lane, .. } => assert_eq!(lane, Lane::Interactive),
        other => panic!("expected Queued, got {other:?}"),
    }

    // Everything accepted completes.
    for stream in [
        &mut blocker,
        &mut queued,
        &mut other_client,
        &mut express_conn,
    ] {
        loop {
            match read_response(stream) {
                Response::Running { .. } => continue,
                Response::Done(_) => break,
                other => panic!("expected Running/Done, got {other:?}"),
            }
        }
    }
    server.shutdown();
}

#[test]
fn interactive_jobs_overtake_queued_batch_jobs_over_the_wire() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Stage the queue behind a busy worker: batch first, interactive after.
    let mut blocker = raw_submit(addr, slow_submit("blocker"));
    wait_until_running(&mut blocker);
    let mut batch = raw_submit(addr, sample_submit("batch", &to_qasm(&qft(8, false)), 8));
    match read_response(&mut batch) {
        Response::Queued { .. } => {}
        other => panic!("expected Queued, got {other:?}"),
    }
    let mut inter = sample_submit("inter", &to_qasm(&qft(8, false)), 9);
    inter.lane = Lane::Interactive;
    let mut inter = raw_submit(addr, inter);
    match read_response(&mut inter) {
        Response::Queued { .. } => {}
        other => panic!("expected Queued, got {other:?}"),
    }

    // Strict lane priority on a single worker: the interactive job must
    // reach Running (dequeue) before the batch job does, even though the
    // batch job was queued first. Observe each stream's Running edge from
    // its own thread and compare receipt times — the gap is a whole job
    // execution, not a scheduling jitter.
    let t0 = Instant::now();
    let clock = |mut stream: TcpStream| {
        std::thread::spawn(move || {
            match read_response(&mut stream) {
                Response::Running { .. } => {}
                other => panic!("expected Running, got {other:?}"),
            }
            let at = t0.elapsed();
            loop {
                match read_response(&mut stream) {
                    Response::Done(_) => return at,
                    Response::Running { .. } => continue,
                    other => panic!("expected Done, got {other:?}"),
                }
            }
        })
    };
    let inter_clock = clock(inter);
    let batch_clock = clock(batch);
    let inter_running_at = inter_clock.join().unwrap();
    let batch_running_at = batch_clock.join().unwrap();
    assert!(
        inter_running_at < batch_running_at,
        "interactive job must dequeue first (interactive at {inter_running_at:?}, \
         batch at {batch_running_at:?})"
    );

    assert!(matches!(read_response(&mut blocker), Response::Done(_)));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_job() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Accept four jobs (Queued confirms acceptance) while the single
    // worker can only have started the first.
    let mut streams: Vec<TcpStream> = (0..4)
        .map(|i| {
            let mut submit = sample_submit(&format!("drain-{i}"), &to_qasm(&qft(8, false)), i);
            submit.options.layout_trials = 4;
            let mut stream = raw_submit(addr, submit);
            match read_response(&mut stream) {
                Response::Queued { .. } => stream,
                other => panic!("expected Queued, got {other:?}"),
            }
        })
        .collect();

    // Shut down with jobs still queued: every accepted job must still be
    // executed and its result delivered before the server goes away.
    let shutdown = std::thread::spawn(move || server.shutdown());
    let mut fingerprints = Vec::new();
    for stream in &mut streams {
        loop {
            match read_response(stream) {
                Response::Running { .. } => continue,
                Response::Done(done) => {
                    fingerprints.push(done.fingerprint);
                    break;
                }
                other => panic!("expected Running/Done, got {other:?}"),
            }
        }
    }
    let stats = shutdown.join().unwrap();
    assert_eq!(
        stats.service.jobs, 4,
        "drain-then-stop runs every accepted job"
    );

    // And the drained results are the same bits a direct in-process
    // service produces for the same seeds.
    let service = TranspileService::new(grid_target(), 1);
    let jobs = (0..4)
        .map(|i| {
            let mut wire = quick_wire();
            wire.layout_trials = 4;
            TranspileJob::new(format!("direct-{i}"), qft(8, false), wire.to_options(i))
        })
        .collect();
    let direct: Vec<u64> = service
        .run_batch(jobs)
        .unwrap()
        .into_iter()
        .map(|r| r.outcome.expect("routes").circuit.fingerprint())
        .collect();
    assert_eq!(fingerprints, direct);
}

#[test]
fn injected_worker_panic_over_the_wire_fails_one_job_only() {
    let wire = quick_wire();
    // In-process reference bits for the two surviving jobs.
    let reference: Vec<u64> = {
        let service = TranspileService::new(grid_target(), 1);
        let jobs = vec![
            TranspileJob::new("a", qft(8, false), wire.to_options(21)),
            TranspileJob::new("b", ghz(6), wire.to_options(22)),
        ];
        service
            .run_batch(jobs)
            .unwrap()
            .into_iter()
            .map(|r| r.outcome.expect("routes").circuit.fingerprint())
            .collect()
    };

    // A production server refuses fault-carrying submissions outright.
    let strict = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let mut client = NetClient::connect(strict.local_addr()).unwrap();
    let mut refused = sample_submit("nope", &to_qasm(&ghz(4)), 1);
    refused.fault = Some(InjectedFault::Panic);
    match client.submit(refused) {
        Err(ClientError::Rejected { message }) => {
            assert!(
                message.contains("fault injection is disabled"),
                "got: {message}"
            )
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    strict.shutdown();

    // A chaos-enabled server runs them: the worker-killing job fails
    // alone with a typed wire error (never a hung connection), the pool
    // respawns the worker, and the surviving jobs' results match the
    // in-process reference bit for bit.
    let config = ServeConfig::new(1).with_chaos();
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let a = client
        .submit(sample_submit("a", &to_qasm(&qft(8, false)), 21))
        .unwrap();
    assert_eq!(a.done.fingerprint, reference[0]);
    let mut boom = sample_submit("boom", &to_qasm(&ghz(4)), 5);
    boom.fault = Some(InjectedFault::PanicKill);
    match client.submit(boom) {
        Err(ClientError::Failed { kind, message, .. }) => {
            assert_eq!(kind, FailureKind::WorkerPanicked);
            assert!(
                message.contains("panicked") || message.contains("died"),
                "got: {message}"
            );
        }
        other => panic!("expected a WorkerPanicked failure, got {other:?}"),
    }
    let b = client
        .submit(sample_submit("b", &to_qasm(&ghz(6)), 22))
        .unwrap();
    assert_eq!(b.done.fingerprint, reference[1]);
    let stats = server.shutdown();
    assert!(
        stats.service.respawns >= 1,
        "the killed worker must have been respawned"
    );
    assert_eq!(
        stats.service.jobs, 3,
        "all three jobs reached terminal state"
    );
}

/// Chaos seeds the loopback convergence sweep runs under: CI pins one via
/// `MIRAGE_CHAOS_SEED=<n>` for its extra pass; the default sweep covers
/// three fixed seeds.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("MIRAGE_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("MIRAGE_CHAOS_SEED must be an integer")],
        Err(_) => vec![0xC4A0_5EED, 7, 1234],
    }
}

/// The convergence acceptance test: under a seeded fault-injection proxy
/// that drops, truncates, corrupts, duplicates, and delays frames, a
/// retrying client's results must be **bit-identical** to the fault-free
/// loopback run — for every seed in the sweep.
#[test]
fn chaos_transport_sweep_converges_to_fault_free_results() {
    let jobs = || {
        vec![
            ("chaos-a".to_owned(), to_qasm(&ghz(5)), 31u64),
            ("chaos-b".to_owned(), to_qasm(&qft(6, false)), 32),
            ("chaos-c".to_owned(), to_qasm(&ghz(4)), 33),
            ("chaos-d".to_owned(), to_qasm(&qft(7, false)), 34),
        ]
    };
    let reference: Vec<(u64, String)> = {
        let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(2)).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let results = jobs()
            .into_iter()
            .map(|(label, qasm, seed)| {
                let outcome = client.submit(sample_submit(&label, &qasm, seed)).unwrap();
                (outcome.done.fingerprint, outcome.done.qasm)
            })
            .collect();
        server.shutdown();
        results
    };

    for seed in chaos_seeds() {
        let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(2)).unwrap();
        let plan = ChaosPlan::new(ChaosConfig::new(seed));
        let connector = ChaosConnector::new(
            TcpConnector::new(server.local_addr()).unwrap(),
            plan.clone(),
        );
        // The fault budget (8) bounds failed attempts; 12 attempts leaves
        // headroom, so a policy-exhausted error here is a real bug.
        let policy = RetryPolicy::new(12)
            .with_base_delay(Duration::from_millis(1))
            .with_seed(seed);
        let mut client = NetClient::with_connector(Box::new(connector), policy)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: connect failed: {e}"));
        for ((label, qasm, job_seed), (fingerprint, text)) in jobs().iter().zip(&reference) {
            let outcome = client
                .submit(sample_submit(label, qasm, *job_seed))
                .unwrap_or_else(|e| panic!("seed {seed:#x}, job {label}: {e}"));
            assert_eq!(
                outcome.done.fingerprint, *fingerprint,
                "seed {seed:#x}, job {label}: diverged from fault-free run"
            );
            assert_eq!(
                &outcome.done.qasm, text,
                "seed {seed:#x}, job {label}: QASM text diverged"
            );
        }
        let stats = plan.stats();
        assert!(stats.frames > 0, "seed {seed:#x}: chaos proxy saw traffic");
        server.shutdown();
    }
}

/// The fair-share acceptance test: one connection flooding the batch lane
/// cannot prevent a second client's jobs from completing — the queue's
/// weighted round-robin interleaves clients, so the polite client's last
/// job finishes while the flood is still draining.
#[test]
fn flooding_connection_cannot_starve_another_clients_jobs() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Park the single worker so both clients queue fully before any
    // batch-lane dequeue happens.
    let mut blocker = raw_submit(addr, slow_submit("blocker"));
    wait_until_running(&mut blocker);

    // Client A floods six pipelined jobs on one connection...
    let mut flood = TcpStream::connect(addr).unwrap();
    flood.set_nodelay(true).unwrap();
    for i in 0..6u64 {
        let submit = sample_submit(&format!("flood-{i}"), &to_qasm(&qft(8, false)), 40 + i);
        frame::write_frame(&mut flood, &Request::Submit(submit).encode()).unwrap();
    }
    for _ in 0..6 {
        match read_response(&mut flood) {
            Response::Queued { .. } => {}
            other => panic!("expected Queued, got {other:?}"),
        }
    }
    // ...then client B queues two, strictly after the flood.
    let mut polite = TcpStream::connect(addr).unwrap();
    polite.set_nodelay(true).unwrap();
    for i in 0..2u64 {
        let submit = sample_submit(&format!("polite-{i}"), &to_qasm(&qft(8, false)), 50 + i);
        frame::write_frame(&mut polite, &Request::Submit(submit).encode()).unwrap();
    }
    for _ in 0..2 {
        match read_response(&mut polite) {
            Response::Queued { .. } => {}
            other => panic!("expected Queued, got {other:?}"),
        }
    }

    // Watch each stream's Done edges from its own thread: under FIFO the
    // polite client would finish dead last; under weighted round-robin
    // its second job completes while most of the flood is still queued.
    let t0 = Instant::now();
    let clock = |mut stream: TcpStream, dones: usize| {
        std::thread::spawn(move || {
            let mut last = Duration::ZERO;
            let mut seen = 0;
            while seen < dones {
                match read_response(&mut stream) {
                    Response::Done(_) => {
                        seen += 1;
                        last = t0.elapsed();
                    }
                    Response::Running { .. } => continue,
                    other => panic!("expected Running/Done, got {other:?}"),
                }
            }
            last
        })
    };
    let flood_clock = clock(flood, 6);
    let polite_clock = clock(polite, 2);
    let polite_done = polite_clock.join().unwrap();
    let flood_done = flood_clock.join().unwrap();
    assert!(
        polite_done < flood_done,
        "fair-share violated: polite client finished at {polite_done:?}, \
         after the flood drained at {flood_done:?}"
    );

    assert!(matches!(read_response(&mut blocker), Response::Done(_)));
    let stats = server.shutdown();
    assert_eq!(stats.service.jobs, 9, "all accepted jobs completed");
}

/// Shutdown-during-retry: when the server drains while a retrying client
/// is mid-conversation, every *accepted* job still gets its terminal
/// answer, and the never-accepted submission ends in a typed error after
/// bounded retries — never a hang.
#[test]
fn shutdown_during_retry_gives_typed_answers_not_hangs() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let addr = server.local_addr();

    // Two accepted jobs: one running, one queued behind it.
    let mut blocker = raw_submit(addr, slow_submit("blocker"));
    wait_until_running(&mut blocker);
    let mut queued = raw_submit(addr, sample_submit("queued", &to_qasm(&ghz(4)), 61));
    match read_response(&mut queued) {
        Response::Queued { .. } => {}
        other => panic!("expected Queued, got {other:?}"),
    }

    // A retrying client connects now (pre-shutdown) but submits only once
    // the drain has begun, so its job is never accepted.
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
    let late = std::thread::spawn(move || {
        let policy = RetryPolicy::new(4)
            .with_base_delay(Duration::from_millis(20))
            .with_seed(3);
        let mut client = NetClient::connect_with_retry(addr, policy).unwrap();
        ready_tx.send(()).unwrap();
        go_rx.recv().unwrap();
        client.submit(sample_submit("late", &to_qasm(&ghz(4)), 62))
    });
    ready_rx.recv().unwrap();
    let shutdown = std::thread::spawn(move || server.shutdown());
    // Let the shutdown flag reach the connection handlers (they poll
    // every 20 ms), then release the late submission into the drain.
    std::thread::sleep(Duration::from_millis(60));
    go_tx.send(()).unwrap();

    // Every accepted job still reaches Done during the drain.
    for stream in [&mut blocker, &mut queued] {
        loop {
            match read_response(stream) {
                Response::Running { .. } => continue,
                Response::Done(_) => break,
                other => panic!("expected Running/Done, got {other:?}"),
            }
        }
    }
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.service.jobs, 2, "both accepted jobs drained");

    // The late client got a typed terminal error after bounded retries.
    match late.join().unwrap() {
        Err(ClientError::Io(_) | ClientError::Frame(_) | ClientError::Rejected { .. }) => {}
        other => panic!("expected a typed transport error, got {other:?}"),
    }
}

#[test]
fn unparseable_qasm_is_rejected_not_queued() {
    let server = NetServer::bind(grid_target(), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    match client.submit(sample_submit("bad", "this is not qasm", 1)) {
        Err(ClientError::Rejected { message }) => {
            assert!(message.contains("qasm parse error"), "got: {message}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Connection stays usable after a rejection.
    client.ping().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.service.jobs, 0, "nothing was ever queued");
}
