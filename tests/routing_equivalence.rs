//! Randomized semantic-equivalence sweep: every router configuration must
//! produce circuits equivalent to their inputs, across random circuits,
//! topologies, aggressions, and seeds.

use mirage::circuit::Circuit;
use mirage::core::verify::verify_routed;
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::math::Rng;
use mirage::topology::CouplingMap;

fn random_circuit(n: usize, gates: usize, rng: &mut Rng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.below(5) {
            0 => {
                let q = rng.below(n);
                c.h(q);
            }
            1 => {
                let q = rng.below(n);
                c.rz(rng.uniform_range(0.0, std::f64::consts::TAU), q);
            }
            2 => {
                let a = rng.below(n);
                let b = (a + 1 + rng.below(n - 1)) % n;
                c.cx(a, b);
            }
            3 => {
                let a = rng.below(n);
                let b = (a + 1 + rng.below(n - 1)) % n;
                c.cp(rng.uniform_range(0.3, 2.8), a, b);
            }
            _ => {
                let a = rng.below(n);
                let b = (a + 1 + rng.below(n - 1)) % n;
                c.swap(a, b);
            }
        }
    }
    c
}

fn check(c: &Circuit, target: &Target, router: RouterKind, seed: u64) {
    let mut opts = TranspileOptions::quick(router, seed);
    opts.use_vf2 = false;
    opts.trials.layout_trials = 2;
    opts.trials.routing_trials = 2;
    let out = transpile(c, target, &opts).expect("transpiles");
    assert!(
        verify_routed(c, &out.as_routed(), target),
        "router {router:?} seed {seed} broke a random circuit"
    );
}

#[test]
fn random_circuits_on_line() {
    let mut rng = Rng::new(0xE0E);
    for seed in 0..6u64 {
        let c = random_circuit(5, 18, &mut rng);
        let target = Target::sqrt_iswap(CouplingMap::line(5));
        check(&c, &target, RouterKind::Sabre, seed);
        check(&c, &target, RouterKind::Mirage, seed);
    }
}

#[test]
fn random_circuits_on_grid() {
    let mut rng = Rng::new(0xE1E);
    for seed in 0..4u64 {
        let c = random_circuit(7, 20, &mut rng);
        let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
        check(&c, &target, RouterKind::Mirage, seed);
    }
}

#[test]
fn random_circuits_on_ring() {
    let mut rng = Rng::new(0xE2E);
    for seed in 0..4u64 {
        let c = random_circuit(6, 16, &mut rng);
        let target = Target::sqrt_iswap(CouplingMap::ring(6));
        check(&c, &target, RouterKind::MirageSwaps, seed);
    }
}

#[test]
fn dense_unitary_blocks_route_correctly() {
    // Circuits made of opaque Haar blocks — the post-consolidation shape.
    let mut rng = Rng::new(0xE3E);
    let mut c = Circuit::new(5);
    for _ in 0..10 {
        let a = rng.below(5);
        let b = (a + 1 + rng.below(4)) % 5;
        let u = mirage::gates::haar_2q(&mut rng);
        c.push(mirage::circuit::Gate::Unitary2(u), &[a, b]);
    }
    let target = Target::sqrt_iswap(CouplingMap::line(5));
    check(&c, &target, RouterKind::Mirage, 77);
}
