//! Integration tests for the calibration layer: the uniform calibration
//! must be metrically invisible, the file format must round-trip, missing
//! entries must fail loudly, and `Metric::EstimatedSuccess` must be
//! selectable through the public `TranspileOptions` API.

use mirage::circuit::generators::{qft, two_local_full};
use mirage::core::{
    transpile, verify_report, verify_routed, Calibration, CalibrationError, EdgeCalibration,
    Metric, QubitCalibration, RouterKind, Target, TranspileOptions,
};
use mirage::math::Rng;
use mirage::topology::CouplingMap;

/// A zero-error calibration is the identity: same routed circuit, same
/// depth/cost metrics as the stock (uncalibrated) target, success exactly 1.
#[test]
fn zero_error_calibration_reproduces_uniform_metrics_exactly() {
    let circuit = two_local_full(5, 1, 23);
    for router in [RouterKind::Sabre, RouterKind::Mirage] {
        let stock = Target::sqrt_iswap(CouplingMap::line(5));
        let calibrated = Target::sqrt_iswap(CouplingMap::line(5))
            .with_calibration(Calibration::uniform(&CouplingMap::line(5)))
            .expect("uniform covers the line");
        let mut opts = TranspileOptions::quick(router, 5);
        opts.use_vf2 = false;
        let a = transpile(&circuit, &stock, &opts).unwrap();
        let b = transpile(&circuit, &calibrated, &opts).unwrap();
        assert_eq!(a.circuit, b.circuit, "{router:?} must route identically");
        assert_eq!(a.metrics.depth_estimate, b.metrics.depth_estimate);
        assert_eq!(a.metrics.total_gate_cost, b.metrics.total_gate_cost);
        assert_eq!(a.metrics.swaps_inserted, b.metrics.swaps_inserted);
        assert_eq!(b.metrics.estimated_success, 1.0);
    }
}

/// The plain-text format round-trips bit-exactly, including hand-set
/// outlier values.
#[test]
fn calibration_file_round_trips() {
    let topo = CouplingMap::grid(3, 3);
    let mut cal = Calibration::synthetic(&topo, &mut Rng::new(0xF00D));
    cal.set_edge(
        0,
        1,
        EdgeCalibration {
            duration_factor: 12.75,
            error_2q: 0.0375,
        },
    )
    .unwrap();
    cal.set_qubit(
        4,
        QubitCalibration {
            duration_1q: 0.03,
            error_1q: 0.002,
            readout_error: 0.11,
        },
    )
    .unwrap();
    let text = cal.to_text();
    let back = Calibration::from_text(&text).expect("well-formed text parses");
    assert_eq!(cal, back);
    // And the re-serialized text is stable (idempotent save).
    assert_eq!(text, back.to_text());
}

/// A calibration that misses a coupler is rejected when attached to a
/// target, with an error naming the edge.
#[test]
fn missing_edge_rejected_at_target_attach() {
    let topo = CouplingMap::grid(2, 2); // edges (0,1) (0,2) (1,3) (2,3)
    let partial = Calibration::from_edges(
        4,
        &[
            (0, 1, EdgeCalibration::default()),
            (0, 2, EdgeCalibration::default()),
            (1, 3, EdgeCalibration::default()),
        ],
    )
    .unwrap();
    let err = Target::sqrt_iswap(topo)
        .with_calibration(partial)
        .unwrap_err();
    assert_eq!(err, CalibrationError::MissingEdge { a: 2, b: 3 });
    assert!(err.to_string().contains("(2, 3)"));
}

/// `Metric::EstimatedSuccess` is selectable through the public options and
/// produces a verified routing whose reported success matches the
/// verifier's independent recomputation.
#[test]
fn estimated_success_end_to_end_with_verify_report() {
    let topo = CouplingMap::grid(3, 3);
    let cal = Calibration::synthetic(&topo, &mut Rng::new(0xE2E));
    let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
    let circuit = qft(6, false);
    let mut opts =
        TranspileOptions::quick(RouterKind::Mirage, 3).with_metric(Metric::EstimatedSuccess);
    opts.use_vf2 = false;
    let out = transpile(&circuit, &target, &opts).unwrap();
    let routed = out.as_routed();
    assert!(verify_routed(&circuit, &routed, &target));
    let report = verify_report(&circuit, &routed, &target);
    assert!(report.ok());
    assert!(
        (report.estimated_success - out.metrics.estimated_success).abs() < 1e-12,
        "pipeline ({}) and verifier ({}) must agree",
        out.metrics.estimated_success,
        report.estimated_success
    );
    assert!(report.estimated_success > 0.0 && report.estimated_success < 1.0);
}

/// Success-metric routing on a device with one catastrophic edge avoids
/// that edge when an alternative of equal length exists.
#[test]
fn success_metric_penalizes_bad_edges() {
    // A ring: two equal-length paths between any pair, so routing can
    // always avoid the one terrible coupler.
    let topo = CouplingMap::ring(6);
    let mut cal = Calibration::uniform(&topo);
    for &(a, b) in topo.edges() {
        cal.set_edge(
            a,
            b,
            EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 1e-3,
            },
        )
        .unwrap();
    }
    cal.set_edge(
        2,
        3,
        EdgeCalibration {
            duration_factor: 8.0,
            error_2q: 0.25,
        },
    )
    .unwrap();
    let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
    let circuit = two_local_full(6, 1, 31);
    let mut opts =
        TranspileOptions::quick(RouterKind::Mirage, 9).with_metric(Metric::EstimatedSuccess);
    opts.use_vf2 = false;
    let out = transpile(&circuit, &target, &opts).unwrap();
    assert!(verify_routed(&circuit, &out.as_routed(), &target));
    let on_bad_edge = out
        .circuit
        .instructions
        .iter()
        .filter(|i| i.gate.is_two_qubit() && i.qubits.contains(&2) && i.qubits.contains(&3))
        .count();
    // Post-selection across trials should find a candidate that touches the
    // bad coupler rarely (the depth metric alone would tolerate it).
    let depth_out = {
        let mut o = TranspileOptions::quick(RouterKind::Mirage, 9);
        o.use_vf2 = false;
        transpile(&circuit, &target, &o).unwrap()
    };
    assert!(
        out.metrics.estimated_success >= depth_out.metrics.estimated_success - 1e-9,
        "success metric ({}) must not lose to depth metric ({})",
        out.metrics.estimated_success,
        depth_out.metrics.estimated_success
    );
    assert!(
        on_bad_edge <= 2,
        "success-metric routing leaned on the bad edge {on_bad_edge} times"
    );
}
