//! Cross-crate integration: QASM round trips through the full pipeline —
//! parse → clean → transpile → translate → export — with statevector
//! verification at each stage.

use mirage::circuit::passes;
use mirage::circuit::qasm::{from_qasm, to_qasm};
use mirage::circuit::sim::{run, State};
use mirage::core::{transpile, RouterKind, Target, TranspileOptions};
use mirage::math::Complex64;
use mirage::synth::decompose::DecompOptions;
use mirage::synth::translate::translate_circuit;
use mirage::topology::CouplingMap;

const SAMPLE: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cu1(pi/2) q[1],q[2];
rz(pi/8) q[2];
cx q[2],q[3];
swap q[0],q[3];
ccx q[0],q[1],q[2];
barrier q[0],q[1];
measure q[0] -> c[0];
"#;

#[test]
fn parse_sample_program() {
    let c = from_qasm(SAMPLE).expect("parses");
    assert_eq!(c.n_qubits, 4);
    assert!(c.two_qubit_gate_count() >= 9); // 3 named + expanded ccx
}

#[test]
fn qasm_export_import_fixpoint() {
    let c = from_qasm(SAMPLE).expect("parses");
    let text = to_qasm(&c);
    let c2 = from_qasm(&text).expect("re-parses");
    let s1 = run(&c);
    let s2 = run(&c2);
    assert!(s1.fidelity(&s2) > 1.0 - 1e-9);
}

#[test]
fn cleaned_circuit_is_equivalent_mod_elision() {
    let c = from_qasm(SAMPLE).expect("parses");
    let cleaned = passes::clean(&c);
    let (elided, perm) = passes::elide_swaps(&cleaned);
    assert_eq!(elided.swap_count(), 0);
    let s_orig = run(&c);
    let s_new = run(&elided);
    let expected = s_orig.permuted(&perm);
    assert!(expected.fidelity(&s_new) > 1.0 - 1e-9);
}

#[test]
fn full_pipeline_from_qasm_text() {
    let c = from_qasm(SAMPLE).expect("parses");
    let target = Target::sqrt_iswap(CouplingMap::ring(4));
    let mut opts = TranspileOptions::quick(RouterKind::Mirage, 3);
    opts.use_vf2 = false;
    let out = transpile(&c, &target, &opts).expect("transpiles");

    // Verify through the final layout.
    let s_log = run(&c);
    let s_phys = run(&out.circuit);
    let mut expected = vec![Complex64::ZERO; 1 << out.circuit.n_qubits];
    for (s, &amp) in s_log.amps.iter().enumerate() {
        let mut t = 0usize;
        for l in 0..c.n_qubits {
            if s & (1 << l) != 0 {
                t |= 1 << out.final_layout.phys(l);
            }
        }
        expected[t] = amp;
    }
    let expected = State {
        n: out.circuit.n_qubits,
        amps: expected,
    };
    assert!(
        s_phys.fidelity(&expected) > 1.0 - 1e-7,
        "pipeline broke the sample program"
    );
}

#[test]
fn translated_output_exports_cleanly() {
    let c = from_qasm("qreg q[2];\nh q[0];\ncx q[0],q[1];").expect("parses");
    let target = Target::sqrt_iswap(CouplingMap::line(2));
    let (pulses, stats) = translate_circuit(
        &c,
        target.coverage(),
        &DecompOptions {
            restarts: 6,
            evals_per_restart: 6000,
            infidelity_target: 1e-9,
            seed: 5,
        },
    );
    assert_eq!(stats.pulses, 2);
    // The pulse circuit exports (iSWAP^α path) and re-imports equivalently.
    let text = to_qasm(&pulses);
    assert!(text.contains("rxx("));
    let back = from_qasm(&text).expect("re-parses");
    let s1 = run(&c);
    let s2 = run(&back);
    assert!(s1.fidelity(&s2) > 1.0 - 1e-6);
}
