//! Integration tests for the placement subsystem: every layout strategy
//! must emit valid bijections on ragged register sizes, calibration-aware
//! seeding must beat (or tie) random seeding at equal trial budget on a
//! skewed device, mis-normalized trial mixes must be rejected with a clean
//! error, and the extracted VF2 strategy must preserve the pipeline's
//! fast path while breaking embedding ties by estimated success.

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::generators::{ghz, qft, two_local_full};
use mirage::core::placement::{PlacementContext, BALANCED_STRATEGY_MIX};
use mirage::core::trials::{Metric, TrialEngine, TrialOptions};
use mirage::core::{
    transpile, verify_routed, Calibration, EdgeCalibration, RouterKind, StrategyKind, Target,
    TranspileError, TranspileOptions,
};
use mirage::math::Rng;
use mirage::topology::CouplingMap;

/// Property-style seeded sweep: on every (strategy, topology, width)
/// combination with `n_logical < n_physical`, a proposed layout is a
/// bijection over the device register whose two maps invert each other.
#[test]
fn strategies_emit_valid_bijections_on_ragged_sizes() {
    let mut rng = Rng::new(0xB17EC);
    for topo in [
        CouplingMap::line(11),
        CouplingMap::grid(3, 5),
        CouplingMap::heavy_hex(3),
    ] {
        let cal = Calibration::synthetic(&topo, &mut Rng::new(0x5EED));
        let target = Target::sqrt_iswap(topo.clone())
            .with_calibration(cal)
            .expect("synthetic covers the topology");
        for n_logical in [2usize, 4, 6, 9] {
            let circuit = consolidate(&two_local_full(n_logical, 1, 7));
            let ctx = PlacementContext::new(&circuit, &target);
            for kind in StrategyKind::ALL {
                for _ in 0..5 {
                    let Some(layout) = kind.strategy().propose(&ctx, &mut rng) else {
                        assert_eq!(kind, StrategyKind::Vf2Embed, "only VF2 may decline");
                        continue;
                    };
                    assert_eq!(layout.n_logical(), n_logical);
                    assert_eq!(layout.n_physical(), topo.n_qubits());
                    assert!(
                        layout.is_bijective(),
                        "{}: maps must be mutually inverse bijections",
                        kind.name()
                    );
                }
            }
        }
    }
}

/// The headline acceptance property: on a skewed grid with a fixed seed,
/// noise-aware seeding achieves estimated success ≥ random seeding at
/// equal trial budget — and the comparison is deterministic per seed.
#[test]
fn noise_aware_beats_random_on_skewed_grid() {
    let topo = CouplingMap::grid(4, 4);
    let cal = Calibration::skewed(&topo, &mut Rng::new(0xCA11B), 5e-3, 0.25, 10.0)
        .expect("base error and factor in range");
    let target = Target::sqrt_iswap(topo)
        .with_calibration(cal)
        .expect("skewed covers the topology");
    let circuit = consolidate(&qft(6, false));
    let engine = TrialEngine::new(&circuit, &target);

    let run = |mix: [f64; 5]| {
        let mut opts = TrialOptions::quick(Metric::EstimatedSuccess, 0xBEE);
        opts.layout_trials = 6;
        opts.strategy_mix = mix;
        engine.run_detailed(true, &opts).expect("valid options")
    };
    let random = run(StrategyKind::Random.one_hot());
    let noise = run(StrategyKind::NoiseAware.one_hot());
    let mixed = run(BALANCED_STRATEGY_MIX);
    let success = |o: &mirage::core::TrialOutcome| o.best.estimated_success(&target);

    assert!(verify_routed(&circuit, &noise.best, &target));
    assert!(
        success(&noise) >= success(&random),
        "noise-aware {} must not trail random {}",
        success(&noise),
        success(&random)
    );
    assert!(
        success(&mixed) >= success(&random),
        "mixed {} must not trail random {}",
        success(&mixed),
        success(&random)
    );
    // Deterministic per seed: a second identical run reproduces the result.
    let again = run(StrategyKind::NoiseAware.one_hot());
    assert_eq!(noise.best.circuit, again.best.circuit);
    assert_eq!(success(&noise), success(&again));
}

/// Mis-normalized mixes surface as `TranspileError::InvalidTrialMix`
/// through the public transpile API instead of silently re-allocating the
/// trial budget.
#[test]
fn invalid_mixes_error_through_transpile() {
    let circuit = two_local_full(4, 1, 7);
    let target = Target::sqrt_iswap(CouplingMap::line(4));

    let mut opts = TranspileOptions::quick(RouterKind::Mirage, 1);
    opts.trials.aggression_mix = [0.25, 0.25, 0.25, 0.1];
    let err = transpile(&circuit, &target, &opts).unwrap_err();
    assert!(matches!(
        err,
        TranspileError::InvalidTrialMix {
            which: "aggression_mix",
            ..
        }
    ));
    assert!(err.to_string().contains("aggression_mix"), "{err}");

    let mut opts = TranspileOptions::quick(RouterKind::Mirage, 1);
    opts.trials.strategy_mix = [0.5, 0.5, 0.5, 0.0, -0.5];
    let err = transpile(&circuit, &target, &opts).unwrap_err();
    assert!(matches!(
        err,
        TranspileError::InvalidTrialMix {
            which: "strategy_mix",
            ..
        }
    ));

    // Valid mixes (including every one-hot) pass through.
    for kind in StrategyKind::ALL {
        let mut opts = TranspileOptions::quick(RouterKind::Mirage, 2);
        opts.trials = opts.trials.with_strategy(kind);
        let out = transpile(&circuit, &target, &opts).unwrap();
        assert!(verify_routed(&circuit, &out.as_routed(), &target));
    }
}

/// The extracted `Vf2Embed` strategy preserves the pipeline fast path and
/// adds calibration-aware tie-breaking: an embeddable circuit still skips
/// routing, and on a noisy device the embedding avoids lossy couplers.
#[test]
fn vf2_fast_path_breaks_ties_by_success() {
    // Lossy (0,1) coupler on a 3-line; GHZ(2) embeds many ways.
    let topo = CouplingMap::line(3);
    let mut cal = Calibration::uniform(&topo);
    cal.set_edge(
        0,
        1,
        EdgeCalibration {
            duration_factor: 1.0,
            error_2q: 0.2,
        },
    )
    .unwrap();
    let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
    let out = transpile(
        &ghz(2),
        &target,
        &TranspileOptions::quick(RouterKind::Sabre, 3),
    )
    .unwrap();
    assert!(out.used_vf2, "GHZ(2) embeds into a 3-line");
    assert_eq!(out.metrics.swaps_inserted, 0);
    let mut seats = out.initial_layout.assignment();
    seats.sort_unstable();
    assert_eq!(seats, vec![1, 2], "embedding must avoid the lossy coupler");
    assert!(
        out.metrics.estimated_success > 0.99,
        "{}",
        out.metrics.estimated_success
    );

    // Uniform device: the strategy-seeded engine reproduces the classic
    // single-result VF2 answer (GHZ on a grid routes with zero SWAPs).
    let uniform = Target::sqrt_iswap(CouplingMap::grid(3, 3));
    let out = transpile(
        &ghz(5),
        &uniform,
        &TranspileOptions::quick(RouterKind::Sabre, 1),
    )
    .unwrap();
    assert!(out.used_vf2);
    assert_eq!(out.metrics.swaps_inserted, 0);
    assert_eq!(out.metrics.estimated_success, 1.0);
}

/// The CLI-facing mixed seeding keeps working end-to-end on an
/// uncalibrated device (noise-aware degrades to random, VF2 may decline)
/// and on a calibrated one.
#[test]
fn balanced_mix_transpiles_end_to_end() {
    let circuit = qft(5, false);
    for target in [
        Target::sqrt_iswap(CouplingMap::grid(3, 3)),
        Target::sqrt_iswap(CouplingMap::grid(3, 3))
            .with_calibration(Calibration::synthetic(
                &CouplingMap::grid(3, 3),
                &mut Rng::new(0xFAB),
            ))
            .expect("synthetic covers the grid"),
    ] {
        let mut opts = TranspileOptions::quick(RouterKind::Mirage, 9);
        opts.use_vf2 = false;
        opts.trials = opts.trials.with_strategy_mix(BALANCED_STRATEGY_MIX);
        opts.trials.layout_trials = 5;
        let out = transpile(&circuit, &target, &opts).unwrap();
        assert!(verify_routed(&circuit, &out.as_routed(), &target));
    }
}
