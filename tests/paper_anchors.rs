//! Anchor tests pinning the reproduction to the paper's published numbers
//! (tolerances documented inline; see EXPERIMENTS.md for the full
//! comparison).

use mirage::coverage::haar::{haar_score, FidelityModel};
use mirage::coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage::weyl::coords::WeylCoord;
use mirage::weyl::mirror::mirror_coord;

fn set(n: u32, mirrors: bool, max_k: usize, seed: u64) -> CoverageSet {
    CoverageSet::build(
        BasisGate::iswap_root(n),
        &CoverageOptions {
            max_k,
            samples_per_k: 2000,
            inflation: 0.012,
            mirrors,
            seed,
        },
    )
}

#[test]
fn fig1_cnot_and_cns_cost_the_same() {
    // The paper's central observation (Fig. 1): in the √iSWAP basis, CNOT
    // and CNS = CNOT+SWAP have identical decomposition cost (k = 2).
    let s = set(2, false, 3, 1);
    assert_eq!(s.min_k(&WeylCoord::CNOT), Some(2));
    assert_eq!(s.min_k(&mirror_coord(&WeylCoord::CNOT)), Some(2));
}

#[test]
fn cnot_basis_does_not_get_free_mirrors() {
    // In the CNOT basis, mirroring a CNOT (→ iSWAP class) *doubles* its
    // cost (k = 1 → k = 2), whereas in the √iSWAP basis both cost k = 2.
    // That asymmetry is why the mirror trick favors the iSWAP family.
    let s = CoverageSet::build(
        BasisGate::cnot(),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 2000,
            inflation: 0.012,
            mirrors: false,
            seed: 2,
        },
    );
    assert_eq!(s.min_k(&WeylCoord::CNOT), Some(1));
    assert_eq!(s.min_k(&WeylCoord::ISWAP), Some(2));
    assert_eq!(s.min_k(&WeylCoord::SWAP), Some(3));
}

#[test]
fn fig3_sqrt_iswap_coverage_fractions() {
    // Paper: 79.0% standard, 94.4% mirror at k = 2 (±5 points for the
    // sampled-hull construction and Monte Carlo volume).
    let plain = set(2, false, 3, 3);
    let mirror = set(2, true, 3, 3);
    let c_plain = plain.haar_coverage(2, 6000, 33);
    let c_mirror = mirror.haar_coverage(2, 6000, 33);
    assert!(
        (c_plain - 0.790).abs() < 0.05,
        "standard coverage {c_plain:.3}"
    );
    assert!(
        (c_mirror - 0.944).abs() < 0.05,
        "mirror coverage {c_mirror:.3}"
    );
}

#[test]
fn table1_sqrt_iswap_haar_scores() {
    // Paper Table I: 1.105 / 0.9890 standard; 1.029 / 0.9897 mirror.
    let model = FidelityModel::paper_default();
    let hs_plain = haar_score(&set(2, false, 3, 4), &model, 6000, 44);
    let hs_mirror = haar_score(&set(2, true, 3, 4), &model, 6000, 44);
    assert!(
        (hs_plain.score - 1.105).abs() < 0.035,
        "{:.4}",
        hs_plain.score
    );
    assert!((hs_plain.avg_fidelity - 0.9890).abs() < 0.001);
    assert!(
        (hs_mirror.score - 1.029).abs() < 0.035,
        "{:.4}",
        hs_mirror.score
    );
    assert!((hs_mirror.avg_fidelity - 0.9897).abs() < 0.001);
}

#[test]
fn fig4_quarter_iswap_depth_caps() {
    // Paper: ∜iSWAP needs up to k = 6 standard; with mirrors the depth
    // never exceeds k = 4.
    let plain = set(4, false, 8, 5);
    assert_eq!(plain.min_k(&WeylCoord::SWAP), Some(6));
    let mirror = set(4, true, 6, 5);
    let full_at = mirror
        .levels
        .iter()
        .find(|l| l.full)
        .map(|l| l.k)
        .expect("mirror set covers the chamber");
    assert!(full_at <= 4, "full coverage at k = {full_at}");
}

#[test]
fn fig6_cphase_in_pswap_out() {
    // Paper Fig. 6: CPHASE gates live inside the √iSWAP k=2 region, their
    // pSWAP mirrors outside (except the iSWAP endpoint).
    let s = set(2, false, 3, 6);
    for theta in [0.4, 0.9, 1.6, 2.2] {
        let w = WeylCoord::cphase(theta);
        assert_eq!(s.min_k(&w), Some(2), "CPHASE({theta}) should be k=2");
        let m = mirror_coord(&w);
        assert_eq!(s.min_k(&m), Some(3), "pSWAP({theta}) should be k=3");
    }
    // Endpoint: CPHASE(π) = CZ mirrors to iSWAP, still k = 2.
    let endpoint = mirror_coord(&WeylCoord::cphase(std::f64::consts::PI));
    assert_eq!(s.min_k(&endpoint), Some(2));
}

#[test]
fn eq1_worked_examples() {
    // The named examples around Eq. 1.
    assert!(mirror_coord(&WeylCoord::CNOT).approx_eq(&WeylCoord::ISWAP, 1e-9));
    assert!(mirror_coord(&WeylCoord::ISWAP).approx_eq(&WeylCoord::CNOT, 1e-9));
    assert!(mirror_coord(&WeylCoord::SWAP).approx_eq(&WeylCoord::IDENTITY, 1e-9));
    assert!(mirror_coord(&WeylCoord::B_GATE).approx_eq(&WeylCoord::B_GATE, 1e-9));
}

#[test]
fn fidelity_model_normalization() {
    // iSWAP: duration 1.0 at 99% fidelity (paper §III-C).
    let m = FidelityModel::paper_default();
    assert!((m.gate_fidelity(1.0) - 0.99).abs() < 1e-12);
    // √iSWAP halves the exposure.
    assert!((m.gate_fidelity(0.5).powi(2) - 0.99).abs() < 1e-12);
}
