//! End-to-end serving tests: the batch service over calibrated targets,
//! and calibration hot-swap observed through the public `mirage` API.

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::generators::{ghz, portfolio_qaoa, qft, two_local_full};
use mirage::core::calibration::EdgeCalibration;
use mirage::core::trials::Metric;
use mirage::core::verify::verify_routed;
use mirage::core::{transpile, Calibration, RouterKind, Target, TranspileOptions};
use mirage::math::Rng;
use mirage::serve::net::CalibrationRefresher;
use mirage::serve::{InjectedFault, JobError, TranspileJob, TranspileService};
use mirage::topology::CouplingMap;
use mirage::weyl::coords::WeylCoord;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_opts(seed: u64) -> TranspileOptions {
    let mut opts = TranspileOptions::quick(RouterKind::Mirage, seed);
    opts.trials.layout_trials = 2;
    opts.trials.routing_trials = 2;
    opts
}

#[test]
fn service_round_trips_a_mixed_batch_on_a_calibrated_device() {
    let topo = CouplingMap::grid(3, 3);
    let cal = Calibration::synthetic(&topo, &mut Rng::new(0x5EED5));
    let target = Arc::new(Target::sqrt_iswap(topo).with_calibration(cal).unwrap());
    let service = TranspileService::new(Arc::clone(&target), 3);
    let circuits = vec![
        ("qft-5", qft(5, false)),
        ("ghz-7", ghz(7)),
        ("twolocal-5", two_local_full(5, 1, 7)),
        ("qaoa-6", portfolio_qaoa(6, 1, 7)),
    ];
    let jobs: Vec<TranspileJob> = circuits
        .iter()
        .enumerate()
        .map(|(i, (name, c))| {
            TranspileJob::new(*name, c.clone(), quick_opts(3)).with_seed(100 + i as u64)
        })
        .collect();
    let results = service.run_batch(jobs).unwrap();
    assert_eq!(results.len(), circuits.len());
    for (result, (name, circuit)) in results.iter().zip(&circuits) {
        let out = result.outcome.as_ref().expect("job succeeds");
        assert!(
            verify_routed(&consolidate(circuit), &out.as_routed(), &target),
            "{name} failed verification"
        );
        assert!(out.metrics.estimated_success > 0.0 && out.metrics.estimated_success <= 1.0);
    }
    let stats = service.shutdown();
    assert_eq!(stats.jobs, circuits.len() as u64);
}

#[test]
fn hot_swap_changes_routing_metrics_without_rebuilding_the_target() {
    // The acceptance scenario: a warm, shared Target absorbs a calibration
    // swap; the next job's metrics reflect the new device, bit-identically
    // to a target built with that calibration from scratch.
    let topo = CouplingMap::line(5);
    let target = Arc::new(Target::sqrt_iswap(topo.clone()));
    let circuit = two_local_full(5, 1, 9);
    let opts = quick_opts(7).with_metric(Metric::EstimatedSuccess);

    // Warm everything: coverage set, coordinate costs, per-edge costs.
    let before = transpile(&circuit, &target, &opts).unwrap();
    assert_eq!(before.metrics.estimated_success, 1.0, "uniform device");
    assert!(target.coverage_built());
    let (_, misses_warm) = target.cache_stats();

    let cal = Calibration::synthetic(&topo, &mut Rng::new(0xACDC));
    target.swap_calibration(Arc::new(cal.clone())).unwrap();
    assert_eq!(target.calibration_generation(), 1);

    let after = transpile(&circuit, &target, &opts).unwrap();
    assert!(
        after.metrics.estimated_success > 0.0 && after.metrics.estimated_success < 1.0,
        "post-swap routing must be scored under the noisy calibration"
    );

    // Identical to a cold target carrying the same calibration...
    let fresh = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
    let expected = transpile(&circuit, &fresh, &opts).unwrap();
    assert_eq!(after.circuit, expected.circuit);
    assert_eq!(
        after.metrics.estimated_success,
        expected.metrics.estimated_success
    );

    // ...but the swapped target never rebuilt its coverage set: its
    // coordinate-class entries stayed warm across the swap (only per-edge
    // entries re-priced), while the fresh target had to miss everything.
    let (_, misses_after) = target.cache_stats();
    let (_, misses_fresh) = fresh.cache_stats();
    assert!(
        misses_after - misses_warm < misses_fresh,
        "swap re-priced {} entries, a rebuild would pay {}",
        misses_after - misses_warm,
        misses_fresh
    );
}

#[test]
fn warm_cache_serves_new_edge_costs_immediately_after_swap() {
    let topo = CouplingMap::line(3);
    let target = Target::sqrt_iswap(topo.clone());
    // Warm the per-edge entry under the nominal calibration.
    assert!((target.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 1.5).abs() < 1e-12);
    let mut cal = Calibration::uniform(&topo);
    cal.set_edge(
        0,
        1,
        EdgeCalibration {
            duration_factor: 3.0,
            error_2q: 0.0,
        },
    )
    .unwrap();
    target.swap_calibration(Arc::new(cal)).unwrap();
    assert!(
        (target.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 4.5).abs() < 1e-12,
        "stale cached cost served after swap"
    );
}

/// Block until `condition` holds or a generous deadline passes (the
/// refresher polls every few milliseconds; CI machines get 10 s of slack).
fn wait_for(what: &str, condition: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn calibration_refresher_hot_swaps_from_a_watched_file() {
    let topo = CouplingMap::line(5);
    let cal_a = Calibration::synthetic(&topo, &mut Rng::new(0xA11CE));
    let target = Arc::new(
        Target::sqrt_iswap(topo.clone())
            .with_calibration(cal_a.clone())
            .unwrap(),
    );
    let service = TranspileService::new(Arc::clone(&target), 2);

    let path = std::env::temp_dir().join(format!("mirage-refresh-{}.cal", std::process::id()));
    std::fs::write(&path, cal_a.to_text()).unwrap();
    let mut refresher =
        CalibrationRefresher::spawn(Arc::clone(&target), path.clone(), Duration::from_millis(5));

    let opts = quick_opts(7).with_metric(Metric::EstimatedSuccess);
    let job = |label: &str, seed: u64| {
        TranspileJob::new(label, two_local_full(5, 1, 9), opts.clone()).with_seed(seed)
    };

    // The boot file is the baseline: watching it must NOT count as a
    // change, so the first job still runs under generation 0.
    wait_for("first poll", || refresher.polls() >= 1);
    let before = service.run_batch(vec![job("before", 41)]).unwrap();
    assert_eq!(before[0].generation, 0);
    assert_eq!(refresher.swaps(), 0);

    // Rewrite the watched file mid-serving-session: the refresher must
    // pick it up and later jobs must run under the bumped generation.
    let cal_b = Calibration::synthetic(&topo, &mut Rng::new(0xB0B));
    std::fs::write(&path, cal_b.to_text()).unwrap();
    wait_for("hot swap of revision B", || refresher.swaps() >= 1);
    assert_eq!(target.calibration_generation(), 1);
    let after = service.run_batch(vec![job("after", 42)]).unwrap();
    assert_eq!(after[0].generation, 1);

    // Bit-identical to a fresh target built with revision B directly.
    let fresh = Arc::new(
        Target::sqrt_iswap(topo.clone())
            .with_calibration(cal_b)
            .unwrap(),
    );
    let expected = TranspileService::new(fresh, 1)
        .run_batch(vec![job("fresh", 42)])
        .unwrap();
    assert_eq!(
        after[0].outcome.as_ref().unwrap().circuit,
        expected[0].outcome.as_ref().unwrap().circuit,
        "a file-driven hot swap must be indistinguishable from a rebuild"
    );

    // A corrupt rewrite is counted and skipped, never fatal: the last
    // good calibration keeps serving, and the failure lands in the
    // corrupt (not I/O) counter.
    std::fs::write(&path, "not a calibration file").unwrap();
    wait_for("corrupt revision to be counted", || refresher.errors() >= 1);
    assert!(refresher.corrupt_skipped() >= 1, "parse failure class");
    assert_eq!(target.calibration_generation(), 1, "bad file must not swap");
    assert!(
        refresher.status_line().contains("corrupt skipped"),
        "status line reports the split counters: {}",
        refresher.status_line()
    );
    assert!(service.run_batch(vec![job("still-up", 43)]).unwrap()[0]
        .outcome
        .is_ok());

    // And the next good revision recovers automatically.
    let cal_c = Calibration::synthetic(&topo, &mut Rng::new(0xCAFE));
    std::fs::write(&path, cal_c.to_text()).unwrap();
    wait_for("hot swap of revision C", || refresher.swaps() >= 2);
    assert_eq!(target.calibration_generation(), 2);

    refresher.stop();
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_panics_fail_alone_and_survivors_stay_bit_identical() {
    // The supervision acceptance gate: rerun the same batch with two jobs
    // carrying injected panics (one caught in-place, one killing its
    // worker). The faulted jobs — and ONLY those — must fail with the
    // typed WorkerPanicked error, the pool must respawn the killed
    // worker, and every surviving job's circuit must be bit-identical to
    // the fault-free run.
    let make_service = || {
        let topo = CouplingMap::grid(3, 3);
        let cal = Calibration::synthetic(&topo, &mut Rng::new(0x5EED5));
        let target = Arc::new(Target::sqrt_iswap(topo).with_calibration(cal).unwrap());
        TranspileService::new(target, 2)
    };
    let jobs = |faults: &[Option<InjectedFault>]| -> Vec<TranspileJob> {
        (0..6)
            .map(|i| {
                let mut job = TranspileJob::new(
                    format!("job-{i}"),
                    two_local_full(5, 1, 11 + i as u64),
                    quick_opts(2),
                )
                .with_seed(900 + i as u64);
                if let Some(fault) = faults[i] {
                    job = job.with_fault(fault);
                }
                job
            })
            .collect()
    };

    let clean_service = make_service();
    let clean = clean_service.run_batch(jobs(&[None; 6])).unwrap();
    let clean_stats = clean_service.shutdown();
    assert_eq!(clean_stats.respawns, 0);

    let mut faults = [None; 6];
    faults[1] = Some(InjectedFault::Panic);
    faults[4] = Some(InjectedFault::PanicKill);
    let service = make_service();
    let faulted = service.run_batch(jobs(&faults)).unwrap();
    for (i, (clean_result, result)) in clean.iter().zip(&faulted).enumerate() {
        if faults[i].is_some() {
            match &result.outcome {
                Err(JobError::WorkerPanicked { message }) => {
                    assert!(
                        message.contains("injected fault") || message.contains("died"),
                        "job {i}: panic surfaced with its payload, got {message:?}"
                    );
                }
                other => panic!("job {i}: expected WorkerPanicked, got {other:?}"),
            }
        } else {
            let clean_out = clean_result.outcome.as_ref().unwrap();
            let out = result
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("job {i} must survive its neighbors' panics, got {e}"));
            assert_eq!(
                out.circuit.fingerprint(),
                clean_out.circuit.fingerprint(),
                "job {i}: survivor diverged from the fault-free run"
            );
            assert_eq!(out.circuit, clean_out.circuit);
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.jobs, 6, "every job reached a terminal result");
    assert!(
        stats.respawns >= 1,
        "the killed worker must have been respawned"
    );
}

#[test]
fn service_batches_are_deterministic_through_the_public_api() {
    let run = |workers: usize| {
        let topo = CouplingMap::grid(2, 4);
        let cal = Calibration::skewed(&topo, &mut Rng::new(0xF00), 5e-3, 0.25, 6.0).unwrap();
        let target = Arc::new(Target::sqrt_iswap(topo).with_calibration(cal).unwrap());
        let service = TranspileService::new(target, workers);
        let jobs: Vec<TranspileJob> = (0..6)
            .map(|i| {
                TranspileJob::new(
                    format!("job-{i}"),
                    two_local_full(5, 1, 7 + i as u64),
                    quick_opts(0).with_metric(Metric::EstimatedSuccess),
                )
                .with_seed(500 + i as u64)
            })
            .collect();
        service
            .run_batch(jobs)
            .unwrap()
            .into_iter()
            .map(|r| r.outcome.unwrap().circuit)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(3), "1 vs 3 workers must be bit-identical");
}
