//! End-to-end serving tests: the batch service over calibrated targets,
//! and calibration hot-swap observed through the public `mirage` API.

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::generators::{ghz, portfolio_qaoa, qft, two_local_full};
use mirage::core::calibration::EdgeCalibration;
use mirage::core::trials::Metric;
use mirage::core::verify::verify_routed;
use mirage::core::{transpile, Calibration, RouterKind, Target, TranspileOptions};
use mirage::math::Rng;
use mirage::serve::{TranspileJob, TranspileService};
use mirage::topology::CouplingMap;
use mirage::weyl::coords::WeylCoord;
use std::sync::Arc;

fn quick_opts(seed: u64) -> TranspileOptions {
    let mut opts = TranspileOptions::quick(RouterKind::Mirage, seed);
    opts.trials.layout_trials = 2;
    opts.trials.routing_trials = 2;
    opts
}

#[test]
fn service_round_trips_a_mixed_batch_on_a_calibrated_device() {
    let topo = CouplingMap::grid(3, 3);
    let cal = Calibration::synthetic(&topo, &mut Rng::new(0x5EED5));
    let target = Arc::new(Target::sqrt_iswap(topo).with_calibration(cal).unwrap());
    let service = TranspileService::new(Arc::clone(&target), 3);
    let circuits = vec![
        ("qft-5", qft(5, false)),
        ("ghz-7", ghz(7)),
        ("twolocal-5", two_local_full(5, 1, 7)),
        ("qaoa-6", portfolio_qaoa(6, 1, 7)),
    ];
    let jobs: Vec<TranspileJob> = circuits
        .iter()
        .enumerate()
        .map(|(i, (name, c))| {
            TranspileJob::new(*name, c.clone(), quick_opts(3)).with_seed(100 + i as u64)
        })
        .collect();
    let results = service.run_batch(jobs).unwrap();
    assert_eq!(results.len(), circuits.len());
    for (result, (name, circuit)) in results.iter().zip(&circuits) {
        let out = result.outcome.as_ref().expect("job succeeds");
        assert!(
            verify_routed(&consolidate(circuit), &out.as_routed(), &target),
            "{name} failed verification"
        );
        assert!(out.metrics.estimated_success > 0.0 && out.metrics.estimated_success <= 1.0);
    }
    let stats = service.shutdown();
    assert_eq!(stats.jobs, circuits.len() as u64);
}

#[test]
fn hot_swap_changes_routing_metrics_without_rebuilding_the_target() {
    // The acceptance scenario: a warm, shared Target absorbs a calibration
    // swap; the next job's metrics reflect the new device, bit-identically
    // to a target built with that calibration from scratch.
    let topo = CouplingMap::line(5);
    let target = Arc::new(Target::sqrt_iswap(topo.clone()));
    let circuit = two_local_full(5, 1, 9);
    let opts = quick_opts(7).with_metric(Metric::EstimatedSuccess);

    // Warm everything: coverage set, coordinate costs, per-edge costs.
    let before = transpile(&circuit, &target, &opts).unwrap();
    assert_eq!(before.metrics.estimated_success, 1.0, "uniform device");
    assert!(target.coverage_built());
    let (_, misses_warm) = target.cache_stats();

    let cal = Calibration::synthetic(&topo, &mut Rng::new(0xACDC));
    target.swap_calibration(Arc::new(cal.clone())).unwrap();
    assert_eq!(target.calibration_generation(), 1);

    let after = transpile(&circuit, &target, &opts).unwrap();
    assert!(
        after.metrics.estimated_success > 0.0 && after.metrics.estimated_success < 1.0,
        "post-swap routing must be scored under the noisy calibration"
    );

    // Identical to a cold target carrying the same calibration...
    let fresh = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
    let expected = transpile(&circuit, &fresh, &opts).unwrap();
    assert_eq!(after.circuit, expected.circuit);
    assert_eq!(
        after.metrics.estimated_success,
        expected.metrics.estimated_success
    );

    // ...but the swapped target never rebuilt its coverage set: its
    // coordinate-class entries stayed warm across the swap (only per-edge
    // entries re-priced), while the fresh target had to miss everything.
    let (_, misses_after) = target.cache_stats();
    let (_, misses_fresh) = fresh.cache_stats();
    assert!(
        misses_after - misses_warm < misses_fresh,
        "swap re-priced {} entries, a rebuild would pay {}",
        misses_after - misses_warm,
        misses_fresh
    );
}

#[test]
fn warm_cache_serves_new_edge_costs_immediately_after_swap() {
    let topo = CouplingMap::line(3);
    let target = Target::sqrt_iswap(topo.clone());
    // Warm the per-edge entry under the nominal calibration.
    assert!((target.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 1.5).abs() < 1e-12);
    let mut cal = Calibration::uniform(&topo);
    cal.set_edge(
        0,
        1,
        EdgeCalibration {
            duration_factor: 3.0,
            error_2q: 0.0,
        },
    )
    .unwrap();
    target.swap_calibration(Arc::new(cal)).unwrap();
    assert!(
        (target.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 4.5).abs() < 1e-12,
        "stale cached cost served after swap"
    );
}

#[test]
fn service_batches_are_deterministic_through_the_public_api() {
    let run = |workers: usize| {
        let topo = CouplingMap::grid(2, 4);
        let cal = Calibration::skewed(&topo, &mut Rng::new(0xF00), 5e-3, 0.25, 6.0).unwrap();
        let target = Arc::new(Target::sqrt_iswap(topo).with_calibration(cal).unwrap());
        let service = TranspileService::new(target, workers);
        let jobs: Vec<TranspileJob> = (0..6)
            .map(|i| {
                TranspileJob::new(
                    format!("job-{i}"),
                    two_local_full(5, 1, 7 + i as u64),
                    quick_opts(0).with_metric(Metric::EstimatedSuccess),
                )
                .with_seed(500 + i as u64)
            })
            .collect();
        service
            .run_batch(jobs)
            .unwrap()
            .into_iter()
            .map(|r| r.outcome.unwrap().circuit)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(3), "1 vs 3 workers must be bit-identical");
}
