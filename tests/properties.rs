//! Property-based tests (proptest) over the core invariants: Weyl-chamber
//! canonicalization, the mirror equation, circuit metrics, simulation, and
//! routing.

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::sim::equivalent_on_zero;
use mirage::circuit::{Circuit, Gate};
use mirage::gates::{can, haar_1q, haar_2q};
use mirage::math::{Mat4, Rng};
use mirage::weyl::coords::{coords_of, WeylCoord};
use mirage::weyl::kak::kak_decompose;
use mirage::weyl::mirror::{mirror_coord, mirror_unitary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonicalize_lands_in_chamber(a in -7.0f64..7.0, b in -7.0f64..7.0, c in -7.0f64..7.0) {
        let w = WeylCoord::canonicalize(a, b, c);
        prop_assert!(w.in_chamber(1e-9), "{w}");
    }

    #[test]
    fn canonicalize_is_idempotent(a in -7.0f64..7.0, b in -7.0f64..7.0, c in -7.0f64..7.0) {
        let w = WeylCoord::canonicalize(a, b, c);
        let w2 = WeylCoord::canonicalize(w.a, w.b, w.c);
        prop_assert!(w.approx_eq(&w2, 1e-9), "{w} vs {w2}");
    }

    #[test]
    fn mirror_is_involutive(a in 0.0f64..1.5, b in 0.0f64..0.8, c in 0.0f64..0.8) {
        let w = WeylCoord::canonicalize(a, b, c);
        let back = mirror_coord(&mirror_coord(&w));
        prop_assert!(back.approx_eq(&w, 1e-9), "{w} -> {back}");
    }

    #[test]
    fn coords_of_can_roundtrip(a in 0.0f64..1.5, b in 0.0f64..0.8, c in 0.0f64..0.8) {
        let w = WeylCoord::canonicalize(a, b, c);
        let got = coords_of(&can(w.a, w.b, w.c));
        prop_assert!(got.approx_eq(&w, 1e-6), "{w} vs {got}");
    }

    #[test]
    fn mirror_eq1_matches_matrices(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let u = haar_2q(&mut rng);
        let lhs = coords_of(&mirror_unitary(&u));
        let rhs = mirror_coord(&coords_of(&u));
        prop_assert!(lhs.approx_eq(&rhs, 1e-6), "{lhs} vs {rhs}");
    }

    #[test]
    fn coords_invariant_under_locals(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let u = haar_2q(&mut rng);
        let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let r = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let a = coords_of(&u);
        let b = coords_of(&l.mul(&u).mul(&r));
        prop_assert!(a.approx_eq(&b, 1e-6), "{a} vs {b}");
    }

    #[test]
    fn kak_reconstructs(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let u = haar_2q(&mut rng);
        let kak = kak_decompose(&u).expect("haar unitary decomposes");
        let rec = kak.reconstruct();
        prop_assert!(rec.approx_eq(&u, 1e-6), "error {:.2e}", rec.max_diff(&u));
    }

    #[test]
    fn consolidation_preserves_semantics(seed in 0u64..5_000) {
        let mut rng = Rng::new(seed);
        let mut c = Circuit::new(4);
        for _ in 0..12 {
            match rng.below(4) {
                0 => { let q = rng.below(4); c.h(q); }
                1 => { let q = rng.below(4); c.rz(rng.uniform_range(0.0, 6.0), q); }
                2 => {
                    let a = rng.below(4);
                    let b = (a + 1 + rng.below(3)) % 4;
                    c.cx(a, b);
                }
                _ => {
                    let a = rng.below(4);
                    let b = (a + 1 + rng.below(3)) % 4;
                    c.cp(rng.uniform_range(0.1, 3.0), a, b);
                }
            }
        }
        let cc = consolidate(&c);
        prop_assert!(equivalent_on_zero(&c, &cc, None));
        prop_assert!(cc.instructions.len() <= c.instructions.len());
    }

    #[test]
    fn weighted_depth_bounds(seed in 0u64..5_000) {
        let mut rng = Rng::new(seed);
        let mut c = Circuit::new(5);
        for _ in 0..15 {
            let a = rng.below(5);
            let b = (a + 1 + rng.below(4)) % 5;
            c.cx(a, b);
        }
        // Depth is at most the gate count and at least count/⌊n/2⌋.
        let d = c.depth();
        prop_assert!(d <= c.gate_count());
        prop_assert!(d * 2 >= c.gate_count() / 2);
        // Weighted depth with unit weights equals depth.
        let wd = c.weighted_depth(|_| 1.0);
        prop_assert!((wd - d as f64).abs() < 1e-9);
    }

    #[test]
    fn mirror_unitary_coords_cost_identity(seed in 0u64..5_000) {
        // SWAP·SWAP·U == U: double mirror at the matrix level.
        let mut rng = Rng::new(seed);
        let u = haar_2q(&mut rng);
        let mm = mirror_unitary(&mirror_unitary(&u));
        prop_assert!(mm.approx_eq(&u, 1e-12));
    }

    #[test]
    fn gate_inverses_cancel(theta in -3.0f64..3.0) {
        for g in [Gate::Rx(theta), Gate::Ry(theta), Gate::Rz(theta), Gate::Phase(theta)] {
            let m = g.matrix1().mul(&g.inverse().matrix1());
            prop_assert!(m.approx_eq_up_to_phase(&mirage::math::Mat2::identity(), 1e-9));
        }
        for g in [Gate::Cphase(theta), Gate::Rzz(theta), Gate::Cry(theta)] {
            let m = g.matrix2().mul(&g.inverse().matrix2());
            prop_assert!(m.approx_eq_up_to_phase(&Mat4::identity(), 1e-9));
        }
    }
}
