//! Property-style randomized tests over the core invariants: Weyl-chamber
//! canonicalization, the mirror equation, circuit metrics, simulation, and
//! routing. Each property is checked over a deterministic sweep of cases
//! driven by the workspace RNG (the repo carries no external property-test
//! dependency).

use mirage::circuit::consolidate::consolidate;
use mirage::circuit::sim::equivalent_on_zero;
use mirage::circuit::{Circuit, Gate};
use mirage::gates::{can, haar_1q, haar_2q};
use mirage::math::{Mat4, Rng};
use mirage::weyl::coords::{coords_of, WeylCoord};
use mirage::weyl::kak::kak_decompose;
use mirage::weyl::mirror::{mirror_coord, mirror_unitary};

const CASES: usize = 64;

#[test]
fn canonicalize_lands_in_chamber() {
    let mut rng = Rng::new(0x11);
    for _ in 0..CASES {
        let w = WeylCoord::canonicalize(
            rng.uniform_range(-7.0, 7.0),
            rng.uniform_range(-7.0, 7.0),
            rng.uniform_range(-7.0, 7.0),
        );
        assert!(w.in_chamber(1e-9), "{w}");
    }
}

#[test]
fn canonicalize_is_idempotent() {
    let mut rng = Rng::new(0x12);
    for _ in 0..CASES {
        let w = WeylCoord::canonicalize(
            rng.uniform_range(-7.0, 7.0),
            rng.uniform_range(-7.0, 7.0),
            rng.uniform_range(-7.0, 7.0),
        );
        let w2 = WeylCoord::canonicalize(w.a, w.b, w.c);
        assert!(w.approx_eq(&w2, 1e-9), "{w} vs {w2}");
    }
}

#[test]
fn mirror_is_involutive() {
    let mut rng = Rng::new(0x13);
    for _ in 0..CASES {
        let w = WeylCoord::canonicalize(
            rng.uniform_range(0.0, 1.5),
            rng.uniform_range(0.0, 0.8),
            rng.uniform_range(0.0, 0.8),
        );
        let back = mirror_coord(&mirror_coord(&w));
        assert!(back.approx_eq(&w, 1e-9), "{w} -> {back}");
    }
}

#[test]
fn coords_of_can_roundtrip() {
    let mut rng = Rng::new(0x14);
    for _ in 0..CASES {
        let w = WeylCoord::canonicalize(
            rng.uniform_range(0.0, 1.5),
            rng.uniform_range(0.0, 0.8),
            rng.uniform_range(0.0, 0.8),
        );
        let got = coords_of(&can(w.a, w.b, w.c));
        assert!(got.approx_eq(&w, 1e-6), "{w} vs {got}");
    }
}

#[test]
fn mirror_eq1_matches_matrices() {
    let mut rng = Rng::new(0x15);
    for _ in 0..CASES {
        let u = haar_2q(&mut rng);
        let lhs = coords_of(&mirror_unitary(&u));
        let rhs = mirror_coord(&coords_of(&u));
        assert!(lhs.approx_eq(&rhs, 1e-6), "{lhs} vs {rhs}");
    }
}

#[test]
fn coords_invariant_under_locals() {
    let mut rng = Rng::new(0x16);
    for _ in 0..CASES {
        let u = haar_2q(&mut rng);
        let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let r = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let a = coords_of(&u);
        let b = coords_of(&l.mul(&u).mul(&r));
        assert!(a.approx_eq(&b, 1e-6), "{a} vs {b}");
    }
}

#[test]
fn kak_reconstructs() {
    let mut rng = Rng::new(0x17);
    for _ in 0..CASES {
        let u = haar_2q(&mut rng);
        let kak = kak_decompose(&u).expect("haar unitary decomposes");
        let rec = kak.reconstruct();
        assert!(rec.approx_eq(&u, 1e-6), "error {:.2e}", rec.max_diff(&u));
    }
}

#[test]
fn consolidation_preserves_semantics() {
    let mut rng = Rng::new(0x18);
    for _ in 0..32 {
        let mut c = Circuit::new(4);
        for _ in 0..12 {
            match rng.below(4) {
                0 => {
                    let q = rng.below(4);
                    c.h(q);
                }
                1 => {
                    let q = rng.below(4);
                    c.rz(rng.uniform_range(0.0, 6.0), q);
                }
                2 => {
                    let a = rng.below(4);
                    let b = (a + 1 + rng.below(3)) % 4;
                    c.cx(a, b);
                }
                _ => {
                    let a = rng.below(4);
                    let b = (a + 1 + rng.below(3)) % 4;
                    c.cp(rng.uniform_range(0.1, 3.0), a, b);
                }
            }
        }
        let cc = consolidate(&c);
        assert!(equivalent_on_zero(&c, &cc, None));
        assert!(cc.instructions.len() <= c.instructions.len());
    }
}

#[test]
fn weighted_depth_bounds() {
    let mut rng = Rng::new(0x19);
    for _ in 0..32 {
        let mut c = Circuit::new(5);
        for _ in 0..15 {
            let a = rng.below(5);
            let b = (a + 1 + rng.below(4)) % 5;
            c.cx(a, b);
        }
        // Depth is at most the gate count and at least count/⌊n/2⌋.
        let d = c.depth();
        assert!(d <= c.gate_count());
        assert!(d * 2 >= c.gate_count() / 2);
        // Weighted depth with unit weights equals depth.
        let wd = c.weighted_depth(|_| 1.0);
        assert!((wd - d as f64).abs() < 1e-9);
    }
}

#[test]
fn mirror_unitary_coords_cost_identity() {
    // SWAP·SWAP·U == U: double mirror at the matrix level.
    let mut rng = Rng::new(0x1A);
    for _ in 0..CASES {
        let u = haar_2q(&mut rng);
        let mm = mirror_unitary(&mirror_unitary(&u));
        assert!(mm.approx_eq(&u, 1e-12));
    }
}

#[test]
fn gate_inverses_cancel() {
    let mut rng = Rng::new(0x1B);
    for _ in 0..CASES {
        let theta = rng.uniform_range(-3.0, 3.0);
        for g in [
            Gate::Rx(theta),
            Gate::Ry(theta),
            Gate::Rz(theta),
            Gate::Phase(theta),
        ] {
            let m = g.matrix1().mul(&g.inverse().matrix1());
            assert!(m.approx_eq_up_to_phase(&mirage::math::Mat2::identity(), 1e-9));
        }
        for g in [Gate::Cphase(theta), Gate::Rzz(theta), Gate::Cry(theta)] {
            let m = g.matrix2().mul(&g.inverse().matrix2());
            assert!(m.approx_eq_up_to_phase(&Mat4::identity(), 1e-9));
        }
    }
}
