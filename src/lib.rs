//! # mirage — a Rust reproduction of the MIRAGE quantum transpiler
//!
//! This is the umbrella crate of the workspace reproducing
//! *MIRAGE: Quantum Circuit Decomposition and Routing Collaborative Design
//! using Mirror Gates* (McKinney, Hatridge, Jones — HPCA 2024,
//! arXiv:2308.03874).
//!
//! It re-exports the public APIs of every subsystem crate so downstream users
//! can depend on a single crate:
//!
//! * [`math`] — complex linear algebra, eigensolvers, deterministic RNG.
//! * [`gates`] — one/two-qubit gate library, the iSWAP family, Haar sampling.
//! * [`weyl`] — Weyl-chamber canonical coordinates, the mirror-gate equation
//!   (paper Eq. 1), and full KAK decomposition.
//! * [`coverage`] — monodromy-style coverage polytopes, Haar scores,
//!   approximate-decomposition Monte Carlo (paper Algorithm 1).
//! * [`circuit`] — circuit IR, DAG, block consolidation, benchmark circuit
//!   generators (QASMBench/MQTBench equivalents).
//! * [`topology`] — coupling maps (line/ring/grid/heavy-hex/all-to-all) and a
//!   VF2 layout check.
//! * [`synth`] — numerical decomposition into a basis gate, templates, the
//!   decoherence error model (paper Eq. 2).
//! * [`core`] — the [`core::Target`] device model with its
//!   [`core::Calibration`] layer (per-edge durations/errors, noise-aware
//!   routing metric), the SABRE baseline router, the MIRAGE router with
//!   aggression levels (paper Algorithm 2), and the end-to-end transpile
//!   pipeline.
//! * [`serve`] — the batch transpilation service: a
//!   [`serve::TranspileService`] worker pool over one shared target, with
//!   deterministic batched jobs and hot-swappable calibration.
//!
//! # Quickstart
//!
//! ```
//! use mirage::core::{transpile, Target, TranspileOptions, RouterKind};
//! use mirage::circuit::generators::two_local_full;
//! use mirage::topology::CouplingMap;
//!
//! let circ = two_local_full(4, 1, 7);
//! let target = Target::sqrt_iswap(CouplingMap::line(4));
//! let out = transpile(&circ, &target, &TranspileOptions::quick(RouterKind::Mirage, 1))
//!     .expect("transpilation succeeds");
//! assert!(out.metrics.swaps_inserted <= 3);
//! ```

pub use mirage_circuit as circuit;
pub use mirage_core as core;
pub use mirage_coverage as coverage;
pub use mirage_gates as gates;
pub use mirage_math as math;
pub use mirage_serve as serve;
pub use mirage_synth as synth;
pub use mirage_topology as topology;
pub use mirage_weyl as weyl;

/// Compiles every `rust` code block in the README as a doctest, so the
/// quickstart (and the calibration walkthrough) can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
