//! `mirage-cli` — command-line front end for the MIRAGE transpiler.
//!
//! ```text
//! mirage-cli transpile <input.qasm> --topo grid:6x6 [--basis sqrt-iswap|cnot|cz]
//!                      [--router mirage|sabre|mirage-swaps]
//!                      [--calibration cal.txt] [--metric depth|swaps|success]
//!                      [--layout random|degree|noise|degree-noise|vf2|mixed]
//!                      [--seed N] [--trials N] [--out out.qasm] [--translate] [--draw]
//! mirage-cli batch <input>... --topo grid:6x6 [--workers N] [--router ...]
//!                  [--calibration cal.txt] [--metric ...] [--layout ...]
//!                  [--seed N] [--trials N]  # inputs: qasm files or gen specs
//! mirage-cli serve --topo grid:6x6 [--listen 127.0.0.1:7878] [--workers N]
//!                  [--capacity N] [--calibration cal.txt]
//!                  [--watch-cal cal.txt] [--watch-ms 1000] [--conns N] [--chaos]
//! mirage-cli client <input>... --connect 127.0.0.1:7878 [--seed N] [--trials N]
//!                   [--router ...] [--metric ...] [--lane interactive|batch]
//!                   [--deadline-ms N] [--retries N] [--retry-ms MS] [--out out.qasm]
//! mirage-cli stats <input.qasm>
//! mirage-cli draw <input.qasm>
//! mirage-cli gen <name> [--out file.qasm]     # qft:18, ghz:8, twolocal:4, ...
//! mirage-cli gen-cal --topo heavy-hex:5 [--seed N] [--out cal.txt]
//! ```

use mirage::circuit::{generators, qasm, render, Circuit};
use mirage::core::placement::StrategyKind;
use mirage::core::{
    transpile, Calibration, Metric, RouterKind, Target, TranspileOptions, BALANCED_STRATEGY_MIX,
};
use mirage::math::Rng;
use mirage::serve::net::{
    CalibrationRefresher, NetClient, NetServer, RetryPolicy, ServeConfig, SubmitRequest,
    WireOptions,
};
use mirage::serve::{Lane, TranspileJob, TranspileService};
use mirage::synth::decompose::DecompOptions;
use mirage::synth::translate::translate_circuit;
use mirage::topology::CouplingMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mirage-cli transpile <input.qasm> --topo <spec> [--basis sqrt-iswap|cnot|cz]
                       [--router mirage|sabre|mirage-swaps]
                       [--calibration cal.txt] [--metric depth|swaps|success]
                       [--layout random|degree|noise|degree-noise|vf2|mixed]
                       [--seed N] [--trials N] [--out out.qasm] [--translate] [--draw]
  mirage-cli batch <input>... --topo <spec> [--basis ...] [--workers N]
                   [--router ...] [--calibration cal.txt] [--metric ...]
                   [--layout ...] [--seed N] [--trials N]
                   # inputs are qasm files or generator specs (qft:6, ghz:8, ...);
                   # jobs run on a worker pool, results are seed-deterministic
  mirage-cli serve --topo <spec> [--listen ADDR:PORT] [--basis ...] [--workers N]
                   [--capacity N] [--calibration cal.txt]
                   [--watch-cal cal.txt] [--watch-ms MS] [--conns N] [--chaos]
                   # framed-TCP daemon; --capacity bounds each queue lane
                   # (overload answers Busy); --watch-cal hot-swaps the
                   # calibration when the file changes; --conns exits after
                   # N connections (for scripted runs); --chaos accepts
                   # fault-injection test submissions (keep off in production)
  mirage-cli client <input>... --connect ADDR:PORT [--seed N] [--trials N]
                    [--router ...] [--metric ...] [--lane interactive|batch]
                    [--deadline-ms N] [--retries N] [--retry-ms MS] [--out out.qasm]
                    # submits each input to a mirage-cli serve daemon;
                    # results are bit-identical to a local run_batch with
                    # the same seeds; --retries resubmits through Busy
                    # answers and dropped connections with jittered
                    # exponential backoff starting at --retry-ms
  mirage-cli stats <input.qasm>
  mirage-cli draw <input.qasm>
  mirage-cli gen <name> [--out file.qasm]
  mirage-cli gen-cal --topo <spec> [--seed N] [--out cal.txt]

topology specs : line:N  ring:N  grid:RxC  heavy-hex:D  a2a:N
basis gates    : sqrt-iswap (default)  cnot  cz
generator names: qft:N ghz:N wstate:N bv:N twolocal:N qaoa:N adder:BITS
metrics        : depth (default for mirage)  swaps  success (needs --calibration
                 or a zero-error device; selects on predicted success probability)
layouts        : how layout trials are seeded — random (default), degree
                 (interaction/degree matching), noise (low-error regions of the
                 calibration), degree-noise (degree matching inside a low-error
                 region), vf2 (exact embeddings), or mixed (a balanced split of
                 the trial budget across all five)";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "transpile" => cmd_transpile(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "draw" => cmd_draw(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "gen-cal" => cmd_gen_cal(&args[1..]),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// `--flag value` pairs collected by [`split_flags`].
type Flags = Vec<(String, String)>;

/// Parse `--flag value` style options; returns (positional, flags).
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags have no value.
            if matches!(name, "translate" | "draw" | "chaos") {
                flags.push((name.to_string(), "true".to_string()));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
                i += 2;
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Parse a topology spec like `grid:6x6` or `heavy-hex:5`.
fn parse_topology(spec: &str) -> Result<CouplingMap, String> {
    let (kind, param) = spec
        .split_once(':')
        .ok_or_else(|| format!("topology spec '{spec}' needs kind:param"))?;
    let bad = |_| format!("bad parameter in '{spec}'");
    match kind {
        "line" => Ok(CouplingMap::line(param.parse().map_err(bad)?)),
        "ring" => Ok(CouplingMap::ring(param.parse().map_err(bad)?)),
        "a2a" => Ok(CouplingMap::all_to_all(param.parse().map_err(bad)?)),
        "heavy-hex" => Ok(CouplingMap::heavy_hex(param.parse().map_err(bad)?)),
        "grid" => {
            let (r, c) = param
                .split_once('x')
                .ok_or_else(|| format!("grid spec '{param}' needs RxC"))?;
            Ok(CouplingMap::grid(
                r.parse().map_err(bad)?,
                c.parse().map_err(bad)?,
            ))
        }
        other => Err(format!("unknown topology kind '{other}'")),
    }
}

/// Build a [`Target`] from a topology spec and basis-gate name.
fn parse_target(topo_spec: &str, basis: &str) -> Result<Target, String> {
    let topo = parse_topology(topo_spec)?;
    match basis {
        "sqrt-iswap" | "sqrt_iswap" => Ok(Target::sqrt_iswap(topo)),
        "cnot" => Ok(Target::cnot(topo)),
        "cz" => Ok(Target::cz(topo)),
        other => Err(format!("unknown basis gate '{other}'")),
    }
}

/// Parse a generator spec like `qft:18`.
fn parse_generator(spec: &str) -> Result<Circuit, String> {
    let (kind, param) = spec.split_once(':').unwrap_or((spec, ""));
    let n: usize = if param.is_empty() {
        0
    } else {
        param.parse().map_err(|_| format!("bad size in '{spec}'"))?
    };
    match kind {
        "qft" => Ok(generators::qft(n.max(2), false)),
        "ghz" => Ok(generators::ghz(n.max(2))),
        "wstate" => Ok(generators::wstate(n.max(2))),
        "bv" => Ok(generators::bv(n.max(2), (n.max(2) - 1) / 2)),
        "twolocal" => Ok(generators::two_local_full(n.max(2), 1, 7)),
        "qaoa" => Ok(generators::portfolio_qaoa(n.max(2), 1, 7)),
        "adder" => Ok(generators::cuccaro_adder(n.max(1))),
        other => Err(format!("unknown generator '{other}'")),
    }
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qasm::from_qasm(&src).map_err(|e| e.to_string())
}

/// Everything `transpile` and `batch` share: the target, the options, and
/// the labels worth echoing back.
struct CommonSetup {
    target: Target,
    opts: TranspileOptions,
    router: RouterKind,
    layout: String,
    seed: u64,
}

/// Parse the flags shared by `transpile` and `batch` into a ready target
/// and options.
fn parse_common(flags: &Flags) -> Result<CommonSetup, String> {
    let mut target = parse_target(
        flag(flags, "topo").ok_or("--topo is required")?,
        flag(flags, "basis").unwrap_or("sqrt-iswap"),
    )?;
    if let Some(path) = flag(flags, "calibration") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let cal = Calibration::from_text(&text).map_err(|e| e.to_string())?;
        target = target.with_calibration(cal).map_err(|e| e.to_string())?;
    }
    let router = match flag(flags, "router").unwrap_or("mirage") {
        "mirage" => RouterKind::Mirage,
        "mirage-swaps" => RouterKind::MirageSwaps,
        "sabre" => RouterKind::Sabre,
        other => return Err(format!("unknown router '{other}'")),
    };
    let metric = match flag(flags, "metric") {
        None => None,
        Some("depth") => Some(Metric::Depth),
        Some("swaps") => Some(Metric::SwapCount),
        Some("success") => Some(Metric::EstimatedSuccess),
        Some(other) => return Err(format!("unknown metric '{other}'")),
    };
    let seed: u64 = flag(flags, "seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| "bad --seed")?;
    let trials: usize = flag(flags, "trials")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "bad --trials")?;

    let layout = flag(flags, "layout").unwrap_or("random").to_string();
    let strategy_mix = if layout == "mixed" {
        BALANCED_STRATEGY_MIX
    } else {
        layout.parse::<StrategyKind>()?.one_hot()
    };

    let mut opts = TranspileOptions::quick(router, seed);
    opts.trials.layout_trials = trials;
    opts.trials.routing_trials = trials;
    opts.trials.parallel = true;
    opts.trials.strategy_mix = strategy_mix;
    if let Some(metric) = metric {
        opts = opts.with_metric(metric);
    }
    Ok(CommonSetup {
        target,
        opts,
        router,
        layout,
        seed,
    })
}

/// A batch input: an existing qasm file, or a generator spec like `qft:6`.
fn load_batch_input(spec: &str) -> Result<Circuit, String> {
    if std::path::Path::new(spec).exists() {
        load_circuit(spec)
    } else {
        parse_generator(spec)
            .map_err(|e| format!("'{spec}' is neither a readable file nor a generator spec ({e})"))
    }
}

fn cmd_transpile(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let input = pos.first().ok_or("transpile needs an input file")?;
    let circuit = load_circuit(input)?;
    let CommonSetup {
        target,
        opts,
        router,
        layout,
        ..
    } = parse_common(&flags)?;
    let out = transpile(&circuit, &target, &opts).map_err(|e| e.to_string())?;

    eprintln!(
        "input   : {} qubits, {} two-qubit gates",
        circuit.n_qubits,
        circuit.two_qubit_gate_count()
    );
    eprintln!("target  : {} ({} qubits)", target.name(), target.n_qubits());
    eprintln!("router  : {router:?}  (vf2 shortcut: {})", out.used_vf2);
    eprintln!("layout  : {layout} seeding");
    eprintln!(
        "depth   : {:.2} duration units (iSWAP = 1.0)",
        out.metrics.depth_estimate
    );
    eprintln!(
        "cost    : {:.2} duration units total",
        out.metrics.total_gate_cost
    );
    eprintln!("swaps   : {}", out.metrics.swaps_inserted);
    eprintln!(
        "mirrors : {} ({:.0}% of decisions)",
        out.metrics.mirrors_accepted,
        100.0 * out.metrics.mirror_rate
    );
    eprintln!(
        "success : {:.4} estimated probability (incl. readout)",
        out.metrics.estimated_success
    );

    let mut result = out.circuit.clone();
    if flag(&flags, "translate").is_some() {
        let (translated, stats) =
            translate_circuit(&result, target.coverage(), &DecompOptions::default());
        eprintln!(
            "pulses  : {} {} (residual infidelity {:.1e})",
            stats.pulses,
            target.basis().name,
            stats.worst_infidelity
        );
        result = translated;
    }
    if flag(&flags, "draw").is_some() {
        println!("{}", render::render(&result));
    }
    match flag(&flags, "out") {
        Some(path) => {
            std::fs::write(path, qasm::to_qasm(&result))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote   : {path}");
        }
        None => {
            if flag(&flags, "draw").is_none() {
                print!("{}", qasm::to_qasm(&result));
            }
        }
    }
    Ok(())
}

/// Transpile many inputs on a `TranspileService` worker pool and print a
/// per-job metrics table. Jobs are seeded `--seed + index`, so the whole
/// batch is reproducible and independent of worker count.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if pos.is_empty() {
        return Err("batch needs at least one input (qasm file or generator spec)".into());
    }
    let setup = parse_common(&flags)?;
    let workers: usize = match flag(&flags, "workers") {
        Some(w) => w.parse().map_err(|_| "bad --workers")?,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }

    // Input widths, indexed by job id: the routed circuit is widened to
    // the device register, so the table must remember the input's width.
    let mut input_widths = Vec::with_capacity(pos.len());
    let jobs: Vec<TranspileJob> = pos
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let circuit = load_batch_input(spec)?;
            input_widths.push(circuit.n_qubits);
            Ok(TranspileJob::new(spec.clone(), circuit, setup.opts.clone())
                .with_seed(setup.seed + i as u64))
        })
        .collect::<Result<_, String>>()?;

    eprintln!(
        "target  : {} ({} qubits), router {:?}, {} layout seeding",
        setup.target.name(),
        setup.target.n_qubits(),
        setup.router,
        setup.layout
    );
    eprintln!("batch   : {} jobs on {} workers", jobs.len(), workers);

    let service = TranspileService::new(Arc::new(setup.target), workers);
    let started = std::time::Instant::now();
    let results = service.run_batch(jobs).map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    let stats = service.shutdown();

    println!(
        "{:>3}  {:<24} {:>6} {:>8} {:>7} {:>8} {:>8} {:>7} {:>6}",
        "job", "input", "qubits", "depth", "swaps", "mirrors", "success", "ms", "worker"
    );
    let mut failures = 0usize;
    for r in &results {
        match &r.outcome {
            Ok(out) => println!(
                "{:>3}  {:<24} {:>6} {:>8.2} {:>7} {:>8} {:>8.4} {:>7.1} {:>6}",
                r.job_id,
                r.label,
                input_widths[r.job_id as usize],
                out.metrics.depth_estimate,
                out.metrics.swaps_inserted,
                out.metrics.mirrors_accepted,
                out.metrics.estimated_success,
                r.elapsed.as_secs_f64() * 1e3,
                r.worker
            ),
            Err(e) => {
                failures += 1;
                println!("{:>3}  {:<24} error: {e}", r.job_id, r.label);
            }
        }
    }
    let throughput = results.len() as f64 / wall.as_secs_f64().max(1e-9);
    eprintln!(
        "done    : {} jobs ({} failed) in {:.2}s — {:.2} jobs/s across {} workers",
        stats.jobs,
        failures,
        wall.as_secs_f64(),
        throughput,
        stats.per_worker.len()
    );
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

/// Run the framed-TCP serving daemon until interrupted (or, with
/// `--conns N`, until `N` connections have been accepted — the scripted
/// mode CI smoke runs use).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (_, flags) = split_flags(args)?;
    let mut target = parse_target(
        flag(&flags, "topo").ok_or("--topo is required")?,
        flag(&flags, "basis").unwrap_or("sqrt-iswap"),
    )?;
    if let Some(path) = flag(&flags, "calibration") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let cal = Calibration::from_text(&text).map_err(|e| e.to_string())?;
        target = target.with_calibration(cal).map_err(|e| e.to_string())?;
    }
    let workers: usize = match flag(&flags, "workers") {
        Some(w) => w.parse().map_err(|_| "bad --workers")?,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let mut config = ServeConfig::new(workers);
    if let Some(cap) = flag(&flags, "capacity") {
        config = config.with_queue_capacity(cap.parse().map_err(|_| "bad --capacity")?);
    }
    if flag(&flags, "chaos").is_some() {
        config = config.with_chaos();
        eprintln!("chaos    : fault-injection submissions accepted");
    }

    let target = Arc::new(target);
    let listen = flag(&flags, "listen").unwrap_or("127.0.0.1:7878");
    let server = NetServer::bind(Arc::clone(&target), listen, &config)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    eprintln!(
        "listening: {} — {} ({} qubits), {} workers{}",
        server.local_addr(),
        target.name(),
        target.n_qubits(),
        workers,
        match config.queue_capacity {
            Some(cap) => format!(", {cap} jobs/lane"),
            None => String::new(),
        }
    );

    let mut refresher = None;
    if let Some(path) = flag(&flags, "watch-cal") {
        let interval: u64 = flag(&flags, "watch-ms")
            .unwrap_or("1000")
            .parse()
            .map_err(|_| "bad --watch-ms")?;
        refresher = Some(CalibrationRefresher::spawn(
            Arc::clone(&target),
            std::path::PathBuf::from(path),
            std::time::Duration::from_millis(interval),
        ));
        eprintln!("watching : {path} (every {interval} ms)");
    }

    let limit: Option<u64> = match flag(&flags, "conns") {
        Some(n) => Some(n.parse().map_err(|_| "bad --conns")?),
        None => None,
    };
    let Some(limit) = limit else {
        // Daemon mode: serve until the process is killed.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    };
    // Wait for N *finished* conversations, not N accepts — shutting down
    // on accept would cut a client off between its jobs.
    while server.connections_closed() < limit {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    if let Some(mut refresher) = refresher.take() {
        refresher.stop();
        eprintln!("watched  : {}", refresher.status_line());
    }
    let stats = server.shutdown();
    eprintln!(
        "served   : {} connection(s), {} job(s)",
        stats.connections, stats.service.jobs
    );
    Ok(())
}

/// Submit inputs to a running `mirage-cli serve` daemon and print the
/// same per-job table as `batch`. Jobs are seeded `--seed + index`,
/// making the remote batch bit-identical to a local one.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if pos.is_empty() {
        return Err("client needs at least one input (qasm file or generator spec)".into());
    }
    let addr = flag(&flags, "connect").unwrap_or("127.0.0.1:7878");
    let seed: u64 = flag(&flags, "seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| "bad --seed")?;
    let trials: u32 = flag(&flags, "trials")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "bad --trials")?;
    let router = match flag(&flags, "router").unwrap_or("mirage") {
        "mirage" => RouterKind::Mirage,
        "mirage-swaps" => RouterKind::MirageSwaps,
        "sabre" => RouterKind::Sabre,
        other => return Err(format!("unknown router '{other}'")),
    };
    let lane = match flag(&flags, "lane").unwrap_or("batch") {
        "batch" => Lane::Batch,
        "interactive" => Lane::Interactive,
        other => return Err(format!("unknown lane '{other}'")),
    };
    let deadline_ms: Option<u64> = match flag(&flags, "deadline-ms") {
        Some(ms) => Some(ms.parse().map_err(|_| "bad --deadline-ms")?),
        None => None,
    };
    let mut wire = WireOptions::quick(router);
    wire.layout_trials = trials;
    wire.routing_trials = trials;
    wire.parallel = true;
    match flag(&flags, "metric") {
        None => {}
        Some("depth") => wire.metric = Some(Metric::Depth),
        Some("swaps") => wire.metric = Some(Metric::SwapCount),
        Some("success") => wire.metric = Some(Metric::EstimatedSuccess),
        Some(other) => return Err(format!("unknown metric '{other}'")),
    }
    if flag(&flags, "out").is_some() && pos.len() > 1 {
        return Err("--out needs exactly one input".into());
    }
    let retries: u32 = flag(&flags, "retries")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --retries")?;
    let policy = if retries == 0 {
        RetryPolicy::none()
    } else {
        let base_ms: u64 = flag(&flags, "retry-ms")
            .unwrap_or("5")
            .parse()
            .map_err(|_| "bad --retry-ms")?;
        RetryPolicy::new(retries + 1)
            .with_base_delay(std::time::Duration::from_millis(base_ms.max(1)))
            .with_seed(seed)
    };

    let mut client = NetClient::connect_with_retry(addr, policy)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let info = client.ping().map_err(|e| e.to_string())?;
    eprintln!(
        "server  : {addr} (protocol v{}, {} workers, calibration generation {})",
        info.version, info.workers, info.generation
    );
    println!(
        "{:>3}  {:<24} {:>8} {:>7} {:>8} {:>8} {:>7} {:>4}",
        "job", "input", "depth", "swaps", "mirrors", "success", "ms", "gen"
    );
    let mut failures = 0usize;
    for (i, spec) in pos.iter().enumerate() {
        let circuit = load_batch_input(spec)?;
        let submit = SubmitRequest {
            label: spec.clone(),
            qasm: qasm::to_qasm(&circuit),
            seed: seed + i as u64,
            lane,
            deadline_ms,
            options: wire.clone(),
            fault: None,
        };
        match client.submit(submit) {
            Ok(outcome) => {
                let m = &outcome.done.metrics;
                println!(
                    "{:>3}  {:<24} {:>8.2} {:>7} {:>8} {:>8.4} {:>7.1} {:>4}",
                    outcome.job_id,
                    spec,
                    m.depth_estimate,
                    m.swaps,
                    m.mirrors,
                    m.estimated_success,
                    outcome.done.elapsed_us as f64 / 1e3,
                    outcome.done.generation
                );
                if let Some(path) = flag(&flags, "out") {
                    std::fs::write(path, &outcome.done.qasm)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote   : {path}");
                }
            }
            Err(e) => {
                failures += 1;
                println!("{:>3}  {:<24} error: {e}", i, spec);
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_flags(args)?;
    let input = pos.first().ok_or("stats needs an input file")?;
    let c = load_circuit(input)?;
    println!("qubits          : {}", c.n_qubits);
    println!("gates           : {}", c.gate_count());
    println!("two-qubit gates : {}", c.two_qubit_gate_count());
    println!("cx-equivalent   : {}", generators::cx_equivalent_count(&c));
    println!("depth           : {}", c.depth());
    println!("2q depth        : {}", c.depth_2q());
    println!("interactions    : {}", c.interaction_edges().len());
    println!("histogram       :");
    for (name, count) in c.gate_histogram() {
        println!("  {name:<10} {count}");
    }
    Ok(())
}

fn cmd_draw(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_flags(args)?;
    let input = pos.first().ok_or("draw needs an input file")?;
    let c = load_circuit(input)?;
    println!("{}", render::render(&c));
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let spec = pos.first().ok_or("gen needs a generator spec")?;
    let c = parse_generator(spec)?;
    let text = qasm::to_qasm(&c);
    match flag(&flags, "out") {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Emit a seeded synthetic calibration file for a topology — a starting
/// point for hand-editing or for feeding `transpile --calibration`.
fn cmd_gen_cal(args: &[String]) -> Result<(), String> {
    let (_, flags) = split_flags(args)?;
    let topo = parse_topology(flag(&flags, "topo").ok_or("--topo is required")?)?;
    let seed: u64 = flag(&flags, "seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| "bad --seed")?;
    let cal = Calibration::synthetic(&topo, &mut Rng::new(seed));
    let text = cal.to_text();
    match flag(&flags, "out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote   : {path} ({} qubits)", cal.n_qubits());
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}
