//! Full KAK (Cartan) decomposition of two-qubit unitaries.
//!
//! `U = e^{iφ} · (K1l ⊗ K1r) · CAN(a,b,c) · (K2l ⊗ K2r)` with all `K` in
//! SU(2). This is the workhorse behind basis translation: once a consolidated
//! two-qubit block is reduced to its canonical part plus locals, the
//! canonical part can be rebuilt from the target basis gate and the locals
//! re-attached.
//!
//! The algorithm is the standard magic-basis one: in the magic basis the
//! local subgroup SU(2)⊗SU(2) becomes SO(4) and `CAN` becomes diagonal, so a
//! simultaneous real diagonalization of the real and imaginary parts of
//! `G = MᵀM` produces the Cartan factors.

#[cfg(test)]
use crate::coords::coords_of;
use crate::coords::WeylCoord;
use mirage_gates::{can, magic_basis};
use mirage_math::eig::{rdet4, simultaneous_diag4};
use mirage_math::{Complex64, Mat2, Mat4};

/// The factors of a KAK decomposition.
///
/// Reconstruct with [`Kak::reconstruct`]; the raw interaction coefficients
/// `(a, b, c)` are *not* canonicalized (they can be any real numbers) —
/// use [`Kak::canonical_coords`] for the chamber point.
#[derive(Debug, Clone)]
pub struct Kak {
    /// Left local factor on the high qubit.
    pub k1l: Mat2,
    /// Left local factor on the low qubit.
    pub k1r: Mat2,
    /// Raw interaction coefficient on XX.
    pub a: f64,
    /// Raw interaction coefficient on YY.
    pub b: f64,
    /// Raw interaction coefficient on ZZ.
    pub c: f64,
    /// Right local factor on the high qubit.
    pub k2l: Mat2,
    /// Right local factor on the low qubit.
    pub k2r: Mat2,
    /// Global phase φ.
    pub global_phase: f64,
}

impl Kak {
    /// Rebuild the unitary `e^{iφ}(K1l⊗K1r)·CAN(a,b,c)·(K2l⊗K2r)`.
    pub fn reconstruct(&self) -> Mat4 {
        let l1 = Mat4::kron(&self.k1l, &self.k1r);
        let l2 = Mat4::kron(&self.k2l, &self.k2r);
        l1.mul(&can(self.a, self.b, self.c))
            .mul(&l2)
            .scale(Complex64::cis(self.global_phase))
    }

    /// The canonicalized Weyl-chamber point of the interaction part.
    pub fn canonical_coords(&self) -> WeylCoord {
        WeylCoord::canonicalize(self.a, self.b, self.c)
    }
}

/// Error type for [`kak_decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KakError {
    /// The input was not unitary to working precision.
    NotUnitary,
    /// The simultaneous diagonalization failed to converge (should not
    /// happen for unitary input; indicates severe numerical trouble).
    Diagonalization,
}

impl std::fmt::Display for KakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KakError::NotUnitary => write!(f, "input matrix is not unitary"),
            KakError::Diagonalization => {
                write!(f, "simultaneous diagonalization did not converge")
            }
        }
    }
}

impl std::error::Error for KakError {}

/// Split a matrix `v ≈ z·(A ⊗ B)` (with `A`, `B` unitary and `|z| = 1`) into
/// `(A, B, arg z)` with both factors normalized into SU(2).
fn kron_factor(v: &Mat4) -> Option<(Mat2, Mat2, f64)> {
    // Locate the largest-magnitude entry.
    let (mut bi, mut bj, mut mag) = (0usize, 0usize, -1.0f64);
    for i in 0..4 {
        for j in 0..4 {
            let m = v.e[i][j].abs();
            if m > mag {
                mag = m;
                bi = i;
                bj = j;
            }
        }
    }
    if mag < 1e-12 {
        return None;
    }
    let (i1, i0) = (bi / 2, bi % 2);
    let (j1, j0) = (bj / 2, bj % 2);

    // a[p][q] = A[p][q] · B[i0][j0] and b[k][l] = A[i1][j1] · B[k][l].
    let mut a = Mat2::zero();
    let mut b = Mat2::zero();
    for p in 0..2 {
        for q in 0..2 {
            a.e[p][q] = v.e[2 * p + i0][2 * q + j0];
            b.e[p][q] = v.e[2 * i1 + p][2 * j1 + q];
        }
    }

    // Normalize each factor into SU(2).
    let da = a.det();
    let db = b.det();
    if da.abs() < 1e-12 || db.abs() < 1e-12 {
        return None;
    }
    let a = a.scale(da.sqrt().inv());
    let b = b.scale(db.sqrt().inv());

    // Residual global phase: compare one entry of kron(a,b) against v.
    let k = Mat4::kron(&a, &b);
    let z = v.e[bi][bj] / k.e[bi][bj];
    let phase = z.arg();

    // Verify the factorization (catches inputs that are not actually
    // tensor products).
    let rec = k.scale(Complex64::cis(phase));
    if rec.max_diff(v) > 1e-6 {
        return None;
    }
    Some((a, b, phase))
}

/// Compute the KAK decomposition of a two-qubit unitary.
///
/// # Errors
///
/// Returns [`KakError::NotUnitary`] when `u` fails the unitarity check, and
/// [`KakError::Diagonalization`] on numerical breakdown (not observed for
/// unitary inputs in practice).
pub fn kak_decompose(u: &Mat4) -> Result<Kak, KakError> {
    if !u.is_unitary(1e-8) {
        return Err(KakError::NotUnitary);
    }

    // Phase-normalize into SU(4), remembering the global phase.
    let det = u.det();
    let phase4 = det.arg() / 4.0;
    let su = u.scale(Complex64::cis(-phase4));
    let mut global_phase = phase4;

    let bm = magic_basis();
    let m = su.conjugate_by(&bm);
    let g = m.transpose().mul(&m);

    // Split into commuting real symmetric parts and diagonalize together.
    let mut re = [[0.0f64; 4]; 4];
    let mut im = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            re[i][j] = g.e[i][j].re;
            im[i][j] = g.e[i][j].im;
        }
    }
    let p = simultaneous_diag4(&re, &im, 1e-7).ok_or(KakError::Diagonalization)?;

    // Eigenphases: λ_j = (Pᵀ G P)_jj.
    let pm = {
        let mut x = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                x.e[i][j] = Complex64::real(p[i][j]);
            }
        }
        x
    };
    let d2 = pm.transpose().mul(&g).mul(&pm);
    let mut theta = [0.0f64; 4];
    for (j, t) in theta.iter_mut().enumerate() {
        *t = d2.e[j][j].arg() / 2.0;
    }
    // With M = K1·D·K2 and K2 = Pᵀ we need det(D) = +1 so that K1 lands in
    // SO(4): enforce Σθ ≡ 0 (mod 2π) by flipping one phase by π (this keeps
    // D² = eigenvalues intact).
    let s = theta.iter().sum::<f64>();
    let k = (s / std::f64::consts::PI).round() as i64;
    if k.rem_euclid(2) == 1 {
        theta[0] += std::f64::consts::PI;
    }

    // K2 = Pᵀ is real orthogonal with det +1; K1 = M·P·D⁻¹ is then real
    // orthogonal too (K1ᵀK1 = D⁻¹·PᵀGP·D⁻¹ = D⁻¹·D²·D⁻¹ = I).
    let d_inv = Mat4::diag([
        Complex64::cis(-theta[0]),
        Complex64::cis(-theta[1]),
        Complex64::cis(-theta[2]),
        Complex64::cis(-theta[3]),
    ]);
    let k1 = m.mul(&pm).mul(&d_inv);
    let k2m = pm.transpose();

    // Sanity: K1 must be real to working precision.
    let mut max_im = 0.0f64;
    let mut k1r = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            max_im = max_im.max(k1.e[i][j].im.abs());
            k1r[i][j] = k1.e[i][j].re;
        }
    }
    if max_im > 1e-6 {
        return Err(KakError::Diagonalization);
    }
    debug_assert!((rdet4(&k1r) - 1.0).abs() < 1e-6);

    // Leave the magic basis: L1 = B K1 B†, L2 = B K2 B†.
    let l1 = bm.mul(&k1).mul(&bm.adjoint());
    let l2 = bm.mul(&k2m).mul(&bm.adjoint());

    let (k1l, k1r, p1) = kron_factor(&l1).ok_or(KakError::Diagonalization)?;
    let (k2l, k2r2, p2) = kron_factor(&l2).ok_or(KakError::Diagonalization)?;
    global_phase += p1 + p2;

    // Interaction coefficients from the eigenphases (see coords.rs for the
    // linear map).
    let a = (theta[0] + theta[1]) / 2.0;
    let b = (theta[1] + theta[3]) / 2.0;
    let c = (theta[0] + theta[3]) / 2.0;

    let kak = Kak {
        k1l,
        k1r,
        a,
        b,
        c,
        k2l,
        k2r: k2r2,
        global_phase,
    };

    // Final safeguard: fix the global phase against the actual input (the
    // eigenphase bookkeeping can leave a π offset when det roots differ).
    let rec = kak.reconstruct();
    let mut best = kak;
    if rec.max_diff(u) > 1e-7 {
        // Try aligning the phase directly.
        let (mut bi, mut bj, mut mag) = (0usize, 0usize, -1.0);
        for i in 0..4 {
            for j in 0..4 {
                if rec.e[i][j].abs() > mag {
                    mag = rec.e[i][j].abs();
                    bi = i;
                    bj = j;
                }
            }
        }
        let z = u.e[bi][bj] / rec.e[bi][bj];
        best.global_phase += z.arg();
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_gates::{
        cnot, cns, cphase, cz, haar_1q, haar_2q, iswap, iswap_alpha, sqrt_iswap, swap,
    };
    use mirage_math::Rng;

    fn assert_kak_roundtrip(u: &Mat4, tol: f64) {
        let kak = kak_decompose(u).expect("decomposition succeeds");
        let rec = kak.reconstruct();
        assert!(
            rec.approx_eq(u, tol),
            "reconstruction error {:.2e}\ninput:\n{u}\nrec:\n{rec}",
            rec.max_diff(u)
        );
        // Locals must be unitary (SU(2)).
        assert!(kak.k1l.is_unitary(1e-8));
        assert!(kak.k1r.is_unitary(1e-8));
        assert!(kak.k2l.is_unitary(1e-8));
        assert!(kak.k2r.is_unitary(1e-8));
    }

    #[test]
    fn roundtrip_named_gates() {
        for (name, g) in [
            ("identity", Mat4::identity()),
            ("cnot", cnot()),
            ("cz", cz()),
            ("swap", swap()),
            ("iswap", iswap()),
            ("sqrt_iswap", sqrt_iswap()),
            ("iswap_1_4", iswap_alpha(0.25)),
            ("cns", cns()),
            ("cphase_0.7", cphase(0.7)),
        ] {
            let kak = kak_decompose(&g);
            assert!(kak.is_ok(), "{name}: {kak:?}");
            assert_kak_roundtrip(&g, 1e-6);
        }
    }

    #[test]
    fn roundtrip_random_unitaries() {
        let mut rng = Rng::new(31);
        for _ in 0..100 {
            let u = haar_2q(&mut rng);
            assert_kak_roundtrip(&u, 1e-6);
        }
    }

    #[test]
    fn coords_agree_with_direct_computation() {
        let mut rng = Rng::new(32);
        for _ in 0..100 {
            let u = haar_2q(&mut rng);
            let kak = kak_decompose(&u).unwrap();
            let via_kak = kak.canonical_coords();
            let direct = coords_of(&u);
            assert!(via_kak.approx_eq(&direct, 1e-5), "{via_kak} vs {direct}");
        }
    }

    #[test]
    fn roundtrip_locals_only() {
        let mut rng = Rng::new(33);
        for _ in 0..20 {
            let u = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let kak = kak_decompose(&u).unwrap();
            assert!(kak.canonical_coords().is_identity(1e-6));
            assert_kak_roundtrip(&u, 1e-6);
        }
    }

    #[test]
    fn rejects_non_unitary() {
        let mut m = Mat4::identity();
        m.e[0][0] = Complex64::real(2.0);
        assert_eq!(kak_decompose(&m).unwrap_err(), KakError::NotUnitary);
    }

    #[test]
    fn kron_factor_roundtrip() {
        let mut rng = Rng::new(34);
        for _ in 0..50 {
            let a = haar_1q(&mut rng);
            let b = haar_1q(&mut rng);
            let v = Mat4::kron(&a, &b).scale(Complex64::cis(
                rng.uniform_range(0.0, std::f64::consts::TAU),
            ));
            let (fa, fb, ph) = kron_factor(&v).expect("valid tensor product");
            let rec = Mat4::kron(&fa, &fb).scale(Complex64::cis(ph));
            assert!(rec.approx_eq(&v, 1e-8));
        }
    }

    #[test]
    fn kron_factor_rejects_entangling() {
        assert!(kron_factor(&cnot()).is_none());
    }

    #[test]
    fn dressed_canonical_recovers_coefficients() {
        // Build U = (A⊗B)·CAN(a,b,c)·(C⊗D) with chamber coefficients; the
        // KAK coords must match.
        let mut rng = Rng::new(35);
        for _ in 0..50 {
            let w = WeylCoord::canonicalize(
                rng.uniform_range(0.0, 1.5),
                rng.uniform_range(0.0, 0.7),
                rng.uniform_range(0.0, 0.7),
            );
            let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let r = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let u = l.mul(&can(w.a, w.b, w.c)).mul(&r);
            let kak = kak_decompose(&u).unwrap();
            assert!(kak.canonical_coords().approx_eq(&w, 1e-5));
            assert_kak_roundtrip(&u, 1e-6);
        }
    }
}
