//! Canonical (Weyl-chamber) coordinates of two-qubit unitaries.
//!
//! # Convention
//!
//! We use the paper's *positive canonical basis*: the chamber is
//!
//! ```text
//! W = { (a,b,c) : 0 ≤ c ≤ b ≤ a,  b ≤ π/4,  a + b ≤ π/2 }
//! ```
//!
//! a tetrahedron with vertices I=(0,0,0), (π/2,0,0) (≡ I on the base),
//! iSWAP=(π/4,π/4,0) and SWAP=(π/4,π/4,π/4). On the base plane `c = 0`
//! the points `(a,b,0)` and `(π/2−a,b,0)` describe the same equivalence
//! class; we canonicalize those to `a ≤ π/4`. Points with `c > 0` in the
//! region `a > π/4` are genuinely distinct classes (e.g. the mirrors of
//! small CPHASE gates).

use mirage_gates::magic_basis;
use mirage_math::eig::{eigvals4, simultaneous_diag4};
use mirage_math::{wrap_mod, Complex64, Mat4, PI_2, PI_4};

/// Eigenvalues of a complex *symmetric unitary* matrix via simultaneous
/// Jacobi diagonalization of its (commuting) real and imaginary parts.
/// Returns `None` when the parts fail to co-diagonalize (non-symmetric or
/// non-unitary input).
fn jacobi_eigs(g: &Mat4) -> Option<[Complex64; 4]> {
    let mut re = [[0.0f64; 4]; 4];
    let mut im = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            re[i][j] = g.e[i][j].re;
            im[i][j] = g.e[i][j].im;
        }
    }
    let p = simultaneous_diag4(&re, &im, 1e-8)?;
    let mut out = [Complex64::ZERO; 4];
    for (j, o) in out.iter_mut().enumerate() {
        let mut lam = Complex64::ZERO;
        // λ_j = (Pᵀ G P)_jj = Σ_{ik} P_ij G_ik P_kj.
        for i in 0..4 {
            for k in 0..4 {
                lam += g.e[i][k] * (p[i][j] * p[k][j]);
            }
        }
        *o = lam;
    }
    Some(out)
}

/// Tolerance used when canonicalizing base-plane (`c ≈ 0`) points.
const FOLD_EPS: f64 = 1e-9;

/// A canonicalized point of the Weyl chamber.
///
/// Construct through [`WeylCoord::canonicalize`] (which accepts any real
/// triple) or [`coords_of`] (from a unitary). The `a`, `b`, `c` fields are
/// guaranteed to satisfy the chamber inequalities above.
#[derive(Debug, Clone, Copy)]
pub struct WeylCoord {
    /// First coordinate, in `[0, π/2]`.
    pub a: f64,
    /// Second coordinate, in `[0, π/4]`, with `b ≤ a` and `a + b ≤ π/2`.
    pub b: f64,
    /// Third coordinate, in `[0, b]`.
    pub c: f64,
}

impl WeylCoord {
    /// The identity class.
    pub const IDENTITY: WeylCoord = WeylCoord {
        a: 0.0,
        b: 0.0,
        c: 0.0,
    };
    /// CNOT / CZ / CPHASE(π) class.
    pub const CNOT: WeylCoord = WeylCoord {
        a: PI_4,
        b: 0.0,
        c: 0.0,
    };
    /// iSWAP / CNS / DCNOT class.
    pub const ISWAP: WeylCoord = WeylCoord {
        a: PI_4,
        b: PI_4,
        c: 0.0,
    };
    /// SWAP class.
    pub const SWAP: WeylCoord = WeylCoord {
        a: PI_4,
        b: PI_4,
        c: PI_4,
    };
    /// The B gate (π/4, π/8, 0) — the "midpoint" gate between CNOT and
    /// iSWAP, optimal for two-application coverage.
    pub const B_GATE: WeylCoord = WeylCoord {
        a: PI_4,
        b: PI_4 / 2.0,
        c: 0.0,
    };

    /// Coordinates of `iSWAP^α`: `(απ/4, απ/4, 0)` for `α ∈ [0, 1]`.
    pub fn iswap_alpha(alpha: f64) -> WeylCoord {
        WeylCoord::canonicalize(alpha * PI_4, alpha * PI_4, 0.0)
    }

    /// Coordinates of `CPHASE(θ)`: `(|θ|/4, 0, 0)` for `θ ∈ [−π, π]`.
    pub fn cphase(theta: f64) -> WeylCoord {
        WeylCoord::canonicalize(theta.abs() / 4.0, 0.0, 0.0)
    }

    /// Reduce an arbitrary real triple into the chamber using the Weyl-group
    /// moves (single-coordinate π/2 shifts, pairwise sign flips,
    /// permutations, and the base-plane fold).
    pub fn canonicalize(a: f64, b: f64, c: f64) -> WeylCoord {
        // 1. Shift every coordinate into [-π/4, π/4] (mod π/2 moves).
        let reduce = |x: f64| {
            let m = wrap_mod(x, PI_2); // [0, π/2)
            if m > PI_4 {
                m - PI_2 // (-π/4, 0)
            } else {
                m
            }
        };
        let mut v = [reduce(a), reduce(b), reduce(c)];

        // 2. Sort by decreasing absolute value.
        v.sort_by(|x, y| y.abs().total_cmp(&x.abs()));

        // 3. Make the two largest non-negative (pairwise sign flips move all
        //    negativity into the last slot).
        if v[0] < 0.0 {
            v[0] = -v[0];
            v[2] = -v[2];
        }
        if v[1] < 0.0 {
            v[1] = -v[1];
            v[2] = -v[2];
        }
        // Re-sort: flipping signs cannot reorder absolute values, so v is
        // still sorted; now π/4 ≥ v0 ≥ v1 ≥ |v2|.

        // 4. Boundary identification: when v0 = π/4 the classes (π/4, y, z)
        //    and (π/4, y, −z) coincide.
        if (v[0] - PI_4).abs() < FOLD_EPS && v[2] < 0.0 {
            v[2] = -v[2];
            // Keep ordering v1 ≥ v2 intact: |v2| unchanged.
        }

        // 5. Map from the "Cirq region" (π/4 ≥ x ≥ y ≥ |z|, z possibly < 0)
        //    into the paper chamber: a negative z marks the mirrored half
        //    a > π/4.
        let (mut a, b, c) = if v[2] >= 0.0 {
            (v[0], v[1], v[2])
        } else {
            (PI_2 - v[0], v[1], -v[2])
        };

        // 6. Base-plane fold: (a, b, 0) ≡ (π/2 − a, b, 0); choose a ≤ π/4.
        if c.abs() < FOLD_EPS && a > PI_4 {
            a = PI_2 - a;
        }

        // Clamp tiny negatives arising from rounding.
        WeylCoord {
            a: a.max(0.0),
            b: b.max(0.0),
            c: c.max(0.0),
        }
    }

    /// Euclidean distance to another chamber point.
    pub fn distance(&self, other: &WeylCoord) -> f64 {
        let da = self.a - other.a;
        let db = self.b - other.b;
        let dc = self.c - other.c;
        (da * da + db * db + dc * dc).sqrt()
    }

    /// Approximate equality within `tol`, accounting for the base-plane fold
    /// (so `(π/2−a, b, 0)` matches `(a, b, 0)` even if one side skipped the
    /// fold due to `c` sitting right at the tolerance).
    pub fn approx_eq(&self, other: &WeylCoord, tol: f64) -> bool {
        if self.distance(other) <= tol {
            return true;
        }
        if self.c.abs() <= tol && other.c.abs() <= tol {
            let folded = WeylCoord {
                a: PI_2 - other.a,
                b: other.b,
                c: other.c,
            };
            return self.distance(&folded) <= tol;
        }
        false
    }

    /// True when the point satisfies the chamber inequalities within `tol`.
    pub fn in_chamber(&self, tol: f64) -> bool {
        self.c >= -tol
            && self.b >= self.c - tol
            && self.a >= self.b - tol
            && self.b <= PI_4 + tol
            && self.a + self.b <= PI_2 + tol
    }

    /// True when this is (numerically) the identity class.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.approx_eq(&WeylCoord::IDENTITY, tol)
    }

    /// Quantize onto a fine grid for use as a hash key (the LRU coordinate
    /// cache of paper Fig. 13a). The grid step is `π/2 / 4096` ≈ 4e-4, far
    /// coarser than coordinate accuracy and far finer than any decision
    /// boundary the router cares about.
    pub fn quantized(&self) -> (u16, u16, u16) {
        let q = |x: f64| ((x / PI_2 * 4096.0).round() as i32).clamp(0, 4096) as u16;
        (q(self.a), q(self.b), q(self.c))
    }

    /// The coordinates as a plain tuple.
    pub fn as_tuple(&self) -> (f64, f64, f64) {
        (self.a, self.b, self.c)
    }
}

impl std::fmt::Display for WeylCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:.4}π, {:.4}π, {:.4}π)",
            self.a / std::f64::consts::PI,
            self.b / std::f64::consts::PI,
            self.c / std::f64::consts::PI
        )
    }
}

impl PartialEq for WeylCoord {
    /// Equality at the resolution of [`WeylCoord::quantized`], consistent
    /// with the `Hash` implementation (both are used by the coordinate
    /// cache).
    fn eq(&self, other: &Self) -> bool {
        self.quantized() == other.quantized()
    }
}

impl Eq for WeylCoord {}

impl std::hash::Hash for WeylCoord {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.quantized().hash(state);
    }
}

/// Compute the canonical coordinates of an arbitrary two-qubit unitary.
///
/// Conjugates into the magic basis, reads the eigenphases of `G = MᵀM`
/// (which equal twice the canonical phases), solves the small linear system,
/// and canonicalizes. The result is invariant under multiplication by
/// single-qubit gates on either side and by global phase.
///
/// # Panics
///
/// Does not panic for unitary input. Garbage in, garbage out for non-unitary
/// matrices.
pub fn coords_of(u: &Mat4) -> WeylCoord {
    let su = u.to_special();
    let bm = magic_basis();
    let m = su.conjugate_by(&bm);
    let g = m.transpose().mul(&m);

    // Preferred route: simultaneous Jacobi diagonalization of the commuting
    // real/imaginary parts of G — exact for degenerate spectra (identity,
    // CNOT, SWAP all have repeated eigenvalues, where polynomial root
    // finding loses precision). Fall back to the characteristic polynomial
    // if the Jacobi path declines (it does not for unitary input).
    let eigs = jacobi_eigs(&g).unwrap_or_else(|| eigvals4(&g));
    // θ_j = arg(λ_j)/2 ∈ (−π/2, π/2].
    let mut theta: Vec<f64> = eigs.iter().map(|z| z.arg() / 2.0).collect();

    // det(G) = 1 forces Σθ ≡ 0 (mod π); restore Σθ ≡ 0 (mod 2π) by flipping
    // one phase by π (a Weyl move) when the sum sits at π.
    let s = wrap_mod(theta.iter().sum::<f64>(), std::f64::consts::TAU);
    let dist_to = |x: f64, t: f64| {
        let d = (x - t).abs();
        d.min(std::f64::consts::TAU - d)
    };
    if dist_to(s, std::f64::consts::PI) < dist_to(s, 0.0) {
        theta[0] += std::f64::consts::PI;
    }

    // Invert θ0 = a−b+c, θ1 = a+b−c, θ3 = −a+b+c (any consistent slot
    // assignment differs by a Weyl move, which canonicalization removes).
    let a = (theta[0] + theta[1]) / 2.0;
    let b = (theta[1] + theta[3]) / 2.0;
    let c = (theta[0] + theta[3]) / 2.0;
    WeylCoord::canonicalize(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_gates::{
        can, cnot, cns, cphase, cz, haar_1q, haar_2q, iswap, iswap_alpha, pswap, sqrt_iswap, swap,
    };
    use mirage_math::{Mat2, Mat4, Rng};

    const TOL: f64 = 1e-7;

    #[test]
    fn named_gate_coordinates() {
        assert!(coords_of(&Mat4::identity()).approx_eq(&WeylCoord::IDENTITY, TOL));
        assert!(coords_of(&cnot()).approx_eq(&WeylCoord::CNOT, TOL));
        assert!(coords_of(&cz()).approx_eq(&WeylCoord::CNOT, TOL));
        assert!(coords_of(&iswap()).approx_eq(&WeylCoord::ISWAP, TOL));
        assert!(coords_of(&swap()).approx_eq(&WeylCoord::SWAP, TOL));
        assert!(coords_of(&cns()).approx_eq(&WeylCoord::ISWAP, TOL));
    }

    #[test]
    fn iswap_family_coordinates() {
        for alpha in [0.25, 1.0 / 3.0, 0.5, 0.75, 1.0] {
            let expect = WeylCoord::iswap_alpha(alpha);
            let got = coords_of(&iswap_alpha(alpha));
            assert!(got.approx_eq(&expect, TOL), "α={alpha}: {got} vs {expect}");
        }
    }

    #[test]
    fn sqrt_iswap_coordinate() {
        let got = coords_of(&sqrt_iswap());
        let expect = WeylCoord::canonicalize(PI_4 / 2.0, PI_4 / 2.0, 0.0);
        assert!(got.approx_eq(&expect, TOL));
    }

    #[test]
    fn cphase_family_coordinates() {
        for theta in [0.2, 0.9, 1.5, 2.5, std::f64::consts::PI] {
            let got = coords_of(&cphase(theta));
            let expect = WeylCoord::cphase(theta);
            assert!(got.approx_eq(&expect, TOL), "θ={theta}: {got} vs {expect}");
        }
    }

    #[test]
    fn pswap_family_coordinates() {
        // pSWAP(θ) = SWAP·CPHASE(θ) should sit at (π/4, π/4, π/4 − θ/4).
        for theta in [0.3, 1.0, 2.0, 3.0] {
            let got = coords_of(&pswap(theta));
            let expect = WeylCoord::canonicalize(PI_4, PI_4, PI_4 - theta / 4.0);
            assert!(got.approx_eq(&expect, TOL), "θ={theta}: {got} vs {expect}");
        }
    }

    #[test]
    fn can_roundtrip_inside_chamber() {
        let mut rng = Rng::new(42);
        for _ in 0..200 {
            // Sample a chamber point by canonicalizing a random triple.
            let w = WeylCoord::canonicalize(
                rng.uniform_range(-2.0, 2.0),
                rng.uniform_range(-2.0, 2.0),
                rng.uniform_range(-2.0, 2.0),
            );
            assert!(w.in_chamber(1e-12), "{w} not in chamber");
            let got = coords_of(&can(w.a, w.b, w.c));
            assert!(got.approx_eq(&w, 1e-6), "{w} -> {got}");
        }
    }

    #[test]
    fn local_invariance() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let u = haar_2q(&mut rng);
            let base = coords_of(&u);
            let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let r = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let dressed = l.mul(&u).mul(&r);
            let got = coords_of(&dressed);
            assert!(got.approx_eq(&base, 1e-6), "{base} vs {got}");
        }
    }

    #[test]
    fn qubit_reversal_invariance() {
        let mut rng = Rng::new(8);
        for _ in 0..50 {
            let u = haar_2q(&mut rng);
            let a = coords_of(&u);
            let b = coords_of(&u.reverse_qubits());
            assert!(a.approx_eq(&b, 1e-6));
        }
    }

    #[test]
    fn global_phase_invariance() {
        let mut rng = Rng::new(9);
        let u = haar_2q(&mut rng);
        let v = u.scale(mirage_math::Complex64::cis(1.23));
        assert!(coords_of(&u).approx_eq(&coords_of(&v), 1e-7));
    }

    #[test]
    fn adjoint_has_same_coordinates() {
        // U† is in the transpose-equivalent class; for the chamber with the
        // base fold, CAN(a,b,c)† ~ CAN(a,b,c) ... specifically the daggered
        // class mirrors c → −c, which canonicalization maps back.
        for g in [cnot(), iswap(), sqrt_iswap(), cphase(0.8)] {
            let a = coords_of(&g);
            let b = coords_of(&g.adjoint());
            assert!(a.approx_eq(&b, 1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn base_plane_fold() {
        // CAN(π/2 − t, b, 0) ≡ CAN(t, b, 0).
        let t = 0.3;
        let b = 0.2;
        let x = coords_of(&can(PI_2 - t, b, 0.0));
        let y = coords_of(&can(t, b, 0.0));
        assert!(x.approx_eq(&y, 1e-6), "{x} vs {y}");
    }

    #[test]
    fn canonicalize_idempotent() {
        let mut rng = Rng::new(10);
        for _ in 0..200 {
            let w = WeylCoord::canonicalize(
                rng.uniform_range(-4.0, 4.0),
                rng.uniform_range(-4.0, 4.0),
                rng.uniform_range(-4.0, 4.0),
            );
            let w2 = WeylCoord::canonicalize(w.a, w.b, w.c);
            assert!(w.approx_eq(&w2, 1e-9), "{w} vs {w2}");
        }
    }

    #[test]
    fn mirrored_half_points_exist() {
        // The mirror of CPHASE(0.4): (π/4, π/4, π/4 − 0.1) has a = π/4 but a
        // general pSWAP-like gate built directly can live at a > π/4 — e.g.
        // CAN(0.35π, 0.1π, 0.05π).
        let w = WeylCoord::canonicalize(
            0.35 * std::f64::consts::PI,
            0.1 * std::f64::consts::PI,
            0.05 * std::f64::consts::PI,
        );
        assert!(w.a > PI_4);
        assert!(w.in_chamber(1e-12));
        let got = coords_of(&can(w.a, w.b, w.c));
        assert!(got.approx_eq(&w, 1e-6), "{w} vs {got}");
    }

    #[test]
    fn quantized_is_stable_under_noise() {
        let w = WeylCoord::canonicalize(0.3, 0.2, 0.1);
        let v = WeylCoord::canonicalize(0.3 + 1e-9, 0.2 - 1e-9, 0.1);
        assert_eq!(w.quantized(), v.quantized());
    }

    #[test]
    fn kron_of_locals_is_identity_class() {
        let mut rng = Rng::new(11);
        let u = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        assert!(coords_of(&u).is_identity(1e-6));
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", WeylCoord::CNOT);
        assert!(s.contains("0.25"));
    }

    #[test]
    fn hash_consistent_with_quantization() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(WeylCoord::CNOT);
        assert!(set.contains(&WeylCoord::canonicalize(PI_4, 1e-12, 0.0)));
    }

    #[test]
    fn locals_of_locals() {
        // (A⊗B)·(C⊗D) stays identity class.
        let mut rng = Rng::new(12);
        let u = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let v = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        assert!(coords_of(&u.mul(&v)).is_identity(1e-6));
    }

    #[test]
    fn random_unitaries_land_in_chamber() {
        let mut rng = Rng::new(13);
        for _ in 0..300 {
            let w = coords_of(&haar_2q(&mut rng));
            assert!(w.in_chamber(1e-9), "{w}");
        }
    }

    #[test]
    fn b_gate_constant() {
        let b = can(
            WeylCoord::B_GATE.a,
            WeylCoord::B_GATE.b,
            WeylCoord::B_GATE.c,
        );
        assert!(coords_of(&b).approx_eq(&WeylCoord::B_GATE, TOL));
    }

    #[test]
    fn product_of_cnot_with_locals_changes_class() {
        // CNOT·(A⊗B)·CNOT generically lands elsewhere; just verify it stays
        // in the chamber and is generically not CNOT's class.
        let mut rng = Rng::new(14);
        let mut moved = 0;
        for _ in 0..20 {
            let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
            let u = cnot().mul(&l).mul(&cnot());
            let w = coords_of(&u);
            assert!(w.in_chamber(1e-9));
            if !w.approx_eq(&WeylCoord::CNOT, 1e-3) {
                moved += 1;
            }
        }
        assert!(moved > 10);
    }

    #[test]
    fn hadamard_pair_identity_class() {
        let u = Mat4::kron(&Mat2::hadamard_like(), &Mat2::hadamard_like());
        assert!(coords_of(&u).is_identity(1e-7));
    }
}
