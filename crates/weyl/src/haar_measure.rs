//! Haar-measure geometry of the Weyl chamber.
//!
//! The Haar distribution over two-qubit gate *classes* has a known density
//! on canonical coordinates. This module provides that density, a direct
//! chamber sampler built on it (rejection sampling), and cumulative checks
//! used to validate the coverage machinery's Monte Carlo volumes without
//! going through 4×4 unitaries.
//!
//! The density comes from the squared Vandermonde of the magic-basis
//! eigenphases `θ = (a−b+c, a+b−c, −a+b+c, −a−b−c)`:
//!
//! ```text
//! p(a,b,c) ∝ Π_{i<j} |e^{2iθᵢ} − e^{2iθⱼ}|² ∝ Π_{i<j} sin²(θᵢ − θⱼ)
//! ```
//!
//! which expands to the product of `sin²(2(a±b))`, `sin²(2(a±c))`,
//! `sin²(2(b±c))` — manifestly invariant under the chamber's conjugation
//! symmetry `(a,b,c) ↔ (π/2−a,b,c)`.

use crate::coords::WeylCoord;
use mirage_math::{Rng, PI_2, PI_4};

/// Unnormalized Haar density at a chamber point.
pub fn haar_density(w: &WeylCoord) -> f64 {
    let s2 = |x: f64| {
        let v = (2.0 * x).sin();
        v * v
    };
    s2(w.a - w.b) * s2(w.a + w.b) * s2(w.a - w.c) * s2(w.a + w.c) * s2(w.b - w.c) * s2(w.b + w.c)
}

/// Upper bound of [`haar_density`] over the chamber: every `sin²` factor is
/// at most 1.
const DENSITY_BOUND: f64 = 1.0;

/// Sample a chamber point from the Haar class distribution by rejection.
pub fn sample_haar_class(rng: &mut Rng) -> WeylCoord {
    loop {
        // Uniform proposal over the chamber's bounding box, folded in.
        let a = rng.uniform_range(0.0, PI_2);
        let b = rng.uniform_range(0.0, PI_4);
        let c = rng.uniform_range(0.0, PI_4);
        let w = WeylCoord { a, b, c };
        if !w.in_chamber(0.0) {
            continue;
        }
        if rng.uniform_range(0.0, DENSITY_BOUND) < haar_density(&w) {
            return w;
        }
    }
}

/// Monte Carlo estimate of the Haar probability of an arbitrary region
/// given by a membership predicate.
pub fn haar_probability<F: Fn(&WeylCoord) -> bool>(pred: F, samples: usize, seed: u64) -> f64 {
    let mut rng = Rng::new(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        if pred(&sample_haar_class(&mut rng)) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::coords_of;
    use mirage_gates::haar_2q;

    #[test]
    fn density_vanishes_on_degenerate_points() {
        // Coinciding cosines ⇒ zero density: identity, CNOT-line ends, …
        assert!(haar_density(&WeylCoord::IDENTITY) < 1e-15);
        assert!(haar_density(&WeylCoord::SWAP) < 1e-15);
        // iSWAP has c₁ = c₂: density zero too (boundary class).
        assert!(haar_density(&WeylCoord::ISWAP) < 1e-15);
        // A generic interior point has positive density.
        let w = WeylCoord::canonicalize(0.7, 0.5, 0.2);
        assert!(haar_density(&w) > 1e-6);
    }

    #[test]
    fn direct_sampler_matches_unitary_sampler() {
        // Compare P(a > π/4) between the density sampler and the
        // QR-of-Ginibre route.
        let n = 8000;
        let p_direct = haar_probability(|w| w.a > PI_4, n, 11);
        let mut rng = Rng::new(12);
        let mut hits = 0;
        for _ in 0..n {
            if coords_of(&haar_2q(&mut rng)).a > PI_4 {
                hits += 1;
            }
        }
        let p_unitary = hits as f64 / n as f64;
        assert!(
            (p_direct - p_unitary).abs() < 0.03,
            "direct {p_direct:.3} vs unitary {p_unitary:.3}"
        );
    }

    #[test]
    fn cnot_halves_split_mass() {
        // b > π/8 region mass agrees between the two samplers.
        let n = 8000;
        let p_direct = haar_probability(|w| w.b > PI_4 / 2.0, n, 13);
        let mut rng = Rng::new(14);
        let mut hits = 0;
        for _ in 0..n {
            if coords_of(&haar_2q(&mut rng)).b > PI_4 / 2.0 {
                hits += 1;
            }
        }
        let p_unitary = hits as f64 / n as f64;
        assert!(
            (p_direct - p_unitary).abs() < 0.03,
            "direct {p_direct:.3} vs unitary {p_unitary:.3}"
        );
    }

    #[test]
    fn samples_stay_in_chamber() {
        let mut rng = Rng::new(15);
        for _ in 0..500 {
            let w = sample_haar_class(&mut rng);
            assert!(w.in_chamber(1e-12));
        }
    }

    #[test]
    fn density_bound_holds_empirically() {
        let mut rng = Rng::new(16);
        for _ in 0..20_000 {
            let a = rng.uniform_range(0.0, PI_2);
            let b = rng.uniform_range(0.0, PI_4);
            let c = rng.uniform_range(0.0, PI_4);
            let w = WeylCoord { a, b, c };
            assert!(haar_density(&w) <= DENSITY_BOUND);
        }
    }
}
