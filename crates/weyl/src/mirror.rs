//! The mirror-gate transformation (paper Eq. 1).
//!
//! The *mirror* of a two-qubit gate `U` is `U′ = SWAP · U` — the same
//! physical interaction with its output wires exchanged. In canonical
//! coordinates the transformation is the piecewise-affine map
//!
//! ```text
//! (a′,b′,c′) = (π/4 + c, π/4 − b, π/4 − a)   if a ≤ π/4
//!            = (π/4 − c, π/4 − b, a − π/4)   otherwise
//! ```
//!
//! which exchanges CNOT ↔ iSWAP, fixes the B gate, maps SWAP → identity and
//! maps the CPHASE family onto the parametric-SWAP family (paper Fig. 6).

use crate::coords::{coords_of, WeylCoord};
use mirage_math::{Mat4, PI_4};

/// Apply Eq. 1: the canonical coordinates of `SWAP · U` given those of `U`.
///
/// The result is already canonical (both branches map the chamber into
/// itself), but we run it through [`WeylCoord::canonicalize`] anyway to
/// absorb boundary cases (`c = 0` fold).
pub fn mirror_coord(w: &WeylCoord) -> WeylCoord {
    let (a2, b2, c2) = if w.a <= PI_4 {
        (PI_4 + w.c, PI_4 - w.b, PI_4 - w.a)
    } else {
        (PI_4 - w.c, PI_4 - w.b, w.a - PI_4)
    };
    WeylCoord::canonicalize(a2, b2, c2)
}

/// The mirror gate as a matrix: `SWAP · U`.
pub fn mirror_unitary(u: &Mat4) -> Mat4 {
    Mat4::swap().mul(u)
}

/// Convenience: coordinates of the mirror of a unitary, computed through
/// Eq. 1 (cheap) rather than re-deriving coordinates from the matrix.
pub fn mirror_coord_of(u: &Mat4) -> WeylCoord {
    mirror_coord(&coords_of(u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_gates::{can, cnot, cphase, haar_2q, iswap, iswap_alpha, swap};
    use mirage_math::{Rng, PI_2};

    const TOL: f64 = 1e-6;

    #[test]
    fn mirror_of_cnot_is_iswap() {
        let m = mirror_coord(&WeylCoord::CNOT);
        assert!(m.approx_eq(&WeylCoord::ISWAP, TOL));
    }

    #[test]
    fn mirror_of_iswap_is_cnot() {
        let m = mirror_coord(&WeylCoord::ISWAP);
        assert!(m.approx_eq(&WeylCoord::CNOT, TOL));
    }

    #[test]
    fn mirror_of_swap_is_identity() {
        let m = mirror_coord(&WeylCoord::SWAP);
        assert!(m.approx_eq(&WeylCoord::IDENTITY, TOL));
    }

    #[test]
    fn mirror_of_identity_is_swap() {
        let m = mirror_coord(&WeylCoord::IDENTITY);
        assert!(m.approx_eq(&WeylCoord::SWAP, TOL));
    }

    #[test]
    fn b_gate_is_self_mirror() {
        let m = mirror_coord(&WeylCoord::B_GATE);
        assert!(m.approx_eq(&WeylCoord::B_GATE, TOL));
    }

    #[test]
    fn mirror_is_involutive() {
        let mut rng = Rng::new(21);
        for _ in 0..200 {
            let w = WeylCoord::canonicalize(
                rng.uniform_range(0.0, PI_2),
                rng.uniform_range(0.0, PI_4),
                rng.uniform_range(0.0, PI_4),
            );
            let back = mirror_coord(&mirror_coord(&w));
            assert!(back.approx_eq(&w, 1e-9), "{w} -> {back}");
        }
    }

    #[test]
    fn eq1_matches_matrix_multiplication() {
        // The defining property: coords(SWAP·U) == mirror(coords(U)).
        let mut rng = Rng::new(22);
        for _ in 0..200 {
            let u = haar_2q(&mut rng);
            let lhs = coords_of(&mirror_unitary(&u));
            let rhs = mirror_coord(&coords_of(&u));
            assert!(lhs.approx_eq(&rhs, 1e-6), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn eq1_matches_matrix_for_named_gates() {
        for (name, g) in [
            ("cnot", cnot()),
            ("iswap", iswap()),
            ("swap", swap()),
            ("sqrt_iswap", iswap_alpha(0.5)),
            ("cphase(1.1)", cphase(1.1)),
            ("can", can(0.5, 0.3, 0.2)),
        ] {
            let lhs = coords_of(&mirror_unitary(&g));
            let rhs = mirror_coord(&coords_of(&g));
            assert!(lhs.approx_eq(&rhs, 1e-6), "{name}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn cphase_mirrors_to_pswap_family() {
        // mirror(CPHASE(θ)) = (π/4, π/4, π/4 − θ/4) — the pSWAP family line
        // from SWAP (θ=0) to iSWAP (θ=π).
        for theta in [0.2, 0.8, 1.6, 2.4, std::f64::consts::PI] {
            let m = mirror_coord(&WeylCoord::cphase(theta));
            let expect = WeylCoord::canonicalize(PI_4, PI_4, PI_4 - theta / 4.0);
            assert!(m.approx_eq(&expect, TOL), "θ={theta}: {m} vs {expect}");
        }
    }

    #[test]
    fn iswap_fraction_mirrors() {
        // mirror(iSWAP^α) = (π/4, π/4 − απ/4, π/4 − απ/4): partial iSWAPs
        // mirror onto the CNOT–SWAP edge.
        for alpha in [0.25, 0.5, 0.75] {
            let m = mirror_coord(&WeylCoord::iswap_alpha(alpha));
            let expect = WeylCoord::canonicalize(PI_4, PI_4 - alpha * PI_4, PI_4 - alpha * PI_4);
            assert!(m.approx_eq(&expect, TOL), "α={alpha}: {m} vs {expect}");
        }
    }

    #[test]
    fn mirror_stays_in_chamber() {
        let mut rng = Rng::new(23);
        for _ in 0..300 {
            let w = coords_of(&haar_2q(&mut rng));
            let m = mirror_coord(&w);
            assert!(m.in_chamber(1e-9), "{w} -> {m}");
        }
    }

    #[test]
    fn mirror_unitary_is_swap_times_u() {
        let u = cnot();
        let m = mirror_unitary(&u);
        assert!(m.approx_eq(&Mat4::swap().mul(&u), 1e-12));
    }

    #[test]
    fn mirror_coord_of_agrees() {
        let mut rng = Rng::new(24);
        let u = haar_2q(&mut rng);
        let a = mirror_coord_of(&u);
        let b = coords_of(&mirror_unitary(&u));
        assert!(a.approx_eq(&b, 1e-6));
    }
}
