//! Weyl-chamber machinery: canonical coordinates, the mirror-gate equation,
//! and the KAK decomposition.
//!
//! Every two-qubit unitary `U` is locally equivalent (equal up to
//! single-qubit gates) to a canonical gate `CAN(a,b,c)`; the triple
//! `(a,b,c)`, reduced into a fundamental domain called the **Weyl chamber**,
//! is a complete invariant of the equivalence class. The paper's entire
//! analysis — monodromy coverage polytopes, Haar scores, and the mirror-gate
//! trick — happens in this coordinate system.
//!
//! * [`coords::WeylCoord`] — a canonicalized chamber point, with the paper's
//!   convention: CNOT = (π/4, 0, 0), iSWAP = (π/4, π/4, 0),
//!   SWAP = (π/4, π/4, π/4).
//! * [`coords::coords_of`] — coordinates of an arbitrary 4×4 unitary via the
//!   magic-basis spectrum.
//! * [`mirror::mirror_coord`] — the paper's Eq. 1: coordinates of
//!   `SWAP · U` from coordinates of `U`.
//! * [`kak::kak_decompose`] — full Cartan decomposition
//!   `U = e^{iφ} (K1l⊗K1r) · CAN(a,b,c) · (K2l⊗K2r)`.
//!
//! ```
//! use mirage_weyl::coords::{coords_of, WeylCoord};
//! use mirage_gates::cnot;
//!
//! let c = coords_of(&cnot());
//! assert!(c.approx_eq(&WeylCoord::CNOT, 1e-8));
//! ```
//!
//! ---
//! **Owns:** [`coords::WeylCoord`], [`coords::coords_of`],
//! [`mirror::mirror_coord`], [`kak::kak_decompose`].
//! **Paper:** §II-B/§III — canonical coordinates, the mirror equation
//! (Eq. 1), and the Cartan/KAK decomposition the synthesis layer dresses.

pub mod coords;
pub mod haar_measure;
pub mod kak;
pub mod mirror;

pub use coords::{coords_of, WeylCoord};
pub use kak::{kak_decompose, Kak};
pub use mirror::{mirror_coord, mirror_unitary};
