//! A blocking client for the mirage-serve wire protocol.
//!
//! [`NetClient`] owns one TCP connection and drives the
//! request/response conversation defined in [`proto`](super::proto):
//! ping for liveness, submit-and-follow for jobs. It is deliberately
//! synchronous — one in-flight job per connection — because the server
//! handles connections concurrently; callers that want parallelism open
//! more connections (see the loopback throughput bench).

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use super::frame::{self, FrameError, DEFAULT_MAX_PAYLOAD};
use super::proto::{FailureKind, JobDone, ProtoError, Request, Response, SubmitRequest};
use crate::queue::Lane;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport-level I/O failure (connect, write).
    Io(std::io::ErrorKind),
    /// The byte stream failed frame decoding.
    Frame(FrameError),
    /// A frame arrived but its envelope could not be decoded.
    Proto(ProtoError),
    /// The server refused admission: the lane is at capacity.
    Busy {
        /// The full lane.
        lane: Lane,
        /// Its configured per-lane capacity.
        capacity: u32,
    },
    /// The server rejected the request before queueing it.
    Rejected {
        /// Server-supplied reason.
        message: String,
    },
    /// The job ran (or was dispatched) and failed.
    Failed {
        /// Server-assigned job id.
        job_id: u64,
        /// Typed failure class.
        kind: FailureKind,
        /// Server-supplied detail.
        message: String,
    },
    /// The server reported our envelope as malformed, or answered with a
    /// message that does not fit the conversation at this point.
    Unexpected {
        /// What arrived, or what the server complained about.
        what: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { lane, capacity } => {
                write!(f, "server busy: {lane} lane full ({capacity} jobs queued)")
            }
            ClientError::Rejected { message } => write!(f, "request rejected: {message}"),
            ClientError::Failed {
                job_id,
                kind,
                message,
            } => {
                let kind = match kind {
                    FailureKind::Transpile => "transpile error",
                    FailureKind::DeadlineExceeded => "deadline exceeded",
                };
                write!(f, "job {job_id} failed ({kind}): {message}")
            }
            ClientError::Unexpected { what } => write!(f, "unexpected server message: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e.kind())
    }
}

/// What the server reported about itself in a pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub version: u8,
    /// Worker threads in its pool.
    pub workers: u32,
    /// Its current calibration generation.
    pub generation: u64,
}

/// The full observed lifecycle of one successfully served job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Whether a `Running` status was observed before the terminal
    /// response (false only if the job finished faster than the status
    /// could be streamed — the protocol does not guarantee the edge).
    pub saw_running: bool,
    /// Jobs ahead of this one at accept time.
    pub queued_behind: u32,
    /// The terminal payload.
    pub done: JobDone,
}

/// One blocking connection to a mirage-serve [`NetServer`](super::NetServer).
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_payload: u32,
}

impl NetClient {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect/configure failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(NetClient {
            reader,
            writer,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        frame::write_frame(&mut self.writer, &request.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = frame::read_frame(&mut self.reader, self.max_payload)?;
        Ok(Response::decode(&payload)?)
    }

    /// Liveness/identity probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or [`ClientError::Unexpected`] if the
    /// server answers with anything but a pong.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong {
                version,
                workers,
                generation,
            } => Ok(ServerInfo {
                version,
                workers,
                generation,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Submit one job and block until its terminal response, collecting
    /// the streamed statuses along the way.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] / [`ClientError::Rejected`] when the server
    /// refuses the job, [`ClientError::Failed`] when it runs and fails,
    /// plus the transport/protocol variants.
    pub fn submit(&mut self, request: SubmitRequest) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Submit(request))?;
        // First response: accepted or refused.
        let (job_id, queued_behind) = match self.recv()? {
            Response::Queued {
                job_id, pending, ..
            } => (job_id, pending),
            Response::Busy { lane, capacity } => return Err(ClientError::Busy { lane, capacity }),
            Response::Rejected { message } => return Err(ClientError::Rejected { message }),
            Response::ProtocolError { message } => {
                return Err(ClientError::Unexpected {
                    what: format!("server reported a protocol error: {message}"),
                })
            }
            other => return Err(unexpected(&other)),
        };
        // Then statuses until a terminal message.
        let mut saw_running = false;
        loop {
            match self.recv()? {
                Response::Running { .. } => saw_running = true,
                Response::Done(done) => {
                    return Ok(JobOutcome {
                        job_id,
                        saw_running,
                        queued_behind,
                        done,
                    })
                }
                Response::Failed {
                    job_id,
                    kind,
                    message,
                } => {
                    return Err(ClientError::Failed {
                        job_id,
                        kind,
                        message,
                    })
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Unexpected {
        what: format!("{response:?}"),
    }
}
