//! A blocking, retrying client for the mirage-serve wire protocol.
//!
//! [`NetClient`] owns one connection (lazily re-established through a
//! [`Connector`]) and drives the request/response conversation defined in
//! [`proto`](super::proto): ping for liveness, submit-and-follow for
//! jobs. It is deliberately synchronous — one in-flight job per client —
//! because the server handles connections concurrently; callers that want
//! parallelism open more clients (see the loopback throughput bench).
//!
//! ## Retry semantics
//!
//! With a [`RetryPolicy`], transport faults (I/O errors, frame
//! truncation/corruption, protocol desync) trigger a **reconnect and
//! resubmit** after a seeded-jitter exponential backoff, and a typed
//! [`ClientError::Busy`] retries on the same connection. Resubmission is
//! idempotent by construction: a submission is keyed by its label and
//! fully determined by (qasm, options, seed), so a server running the
//! "same" job twice — a retry after a lost response, or a
//! chaos-duplicated request frame — produces bit-identical results, and
//! it does not matter which copy's answer the client reads. Protocol v2
//! echoes the submission label on `Queued`/`Done`/`Failed`, which lets
//! the client *verify* each answer belongs to its current job and
//! silently skip stale answers from phantom duplicates instead of
//! desyncing.
//!
//! Server-reported terminal answers — [`ClientError::Rejected`] and
//! [`ClientError::Failed`] (including
//! [`FailureKind::WorkerPanicked`]) — are **never retried**: the job
//! deterministically fails; retrying would fail identically.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use super::chaos::{ChaosPlan, ChaosTransport};
use super::frame::{self, FrameError, DEFAULT_MAX_PAYLOAD};
use super::proto::{FailureKind, JobDone, ProtoError, Request, Response, SubmitRequest};
use crate::queue::Lane;
use mirage_math::Rng;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Transport-level I/O failure (connect, write).
    Io(std::io::ErrorKind),
    /// The byte stream failed frame decoding.
    Frame(FrameError),
    /// A frame arrived but its envelope could not be decoded.
    Proto(ProtoError),
    /// The server refused admission: this client's lane budget is full.
    Busy {
        /// The full lane.
        lane: Lane,
        /// The configured per-client, per-lane capacity.
        capacity: u32,
    },
    /// The server rejected the request before queueing it.
    Rejected {
        /// Server-supplied reason.
        message: String,
    },
    /// The job ran (or was dispatched) and failed.
    Failed {
        /// Server-assigned job id.
        job_id: u64,
        /// Typed failure class.
        kind: FailureKind,
        /// Server-supplied detail.
        message: String,
    },
    /// The server reported our envelope as malformed, or answered with a
    /// message that does not fit the conversation at this point.
    Unexpected {
        /// What arrived, or what the server complained about.
        what: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { lane, capacity } => {
                write!(f, "server busy: {lane} lane full ({capacity} jobs queued)")
            }
            ClientError::Rejected { message } => write!(f, "request rejected: {message}"),
            ClientError::Failed {
                job_id,
                kind,
                message,
            } => {
                let kind = match kind {
                    FailureKind::Transpile => "transpile error",
                    FailureKind::DeadlineExceeded => "deadline exceeded",
                    FailureKind::WorkerPanicked => "worker panicked",
                };
                write!(f, "job {job_id} failed ({kind}): {message}")
            }
            ClientError::Unexpected { what } => write!(f, "unexpected server message: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e.kind())
    }
}

/// How a failed attempt should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Recovery {
    /// Tear the connection down and retry on a fresh one.
    Reconnect,
    /// Retry on the same connection (typed backpressure, nothing broke).
    Retry,
    /// A deterministic answer; retrying would reproduce it.
    Terminal,
}

fn recovery(error: &ClientError) -> Recovery {
    match error {
        // Transport and coherence faults: the connection state is suspect.
        ClientError::Io(_)
        | ClientError::Frame(_)
        | ClientError::Proto(_)
        | ClientError::Unexpected { .. } => Recovery::Reconnect,
        // Typed backpressure: the connection is fine, the lane is full.
        ClientError::Busy { .. } => Recovery::Retry,
        // Deterministic server verdicts (including WorkerPanicked).
        ClientError::Rejected { .. } | ClientError::Failed { .. } => Recovery::Terminal,
    }
}

/// A byte transport a [`NetClient`] can speak frames over. Blanket-implemented
/// for every `Read + Write + Send` type (TCP streams, chaos proxies, in-memory
/// test pipes).
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// Produces fresh [`Transport`]s on demand — the client's reconnect hook.
pub trait Connector: Send {
    /// Establish a new transport to the server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] (or wrapper-specific errors) on failure.
    fn connect(&mut self) -> Result<Box<dyn Transport>, ClientError>;
}

/// The standard TCP connector: resolved once, `TCP_NODELAY` set on every
/// connection.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addrs: Vec<SocketAddr>,
}

impl TcpConnector {
    /// Resolve `addr` now (so retries never re-resolve mid-flight).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when resolution fails or yields no address.
    pub fn new<A: ToSocketAddrs>(addr: A) -> Result<TcpConnector, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::ErrorKind::AddrNotAvailable));
        }
        Ok(TcpConnector { addrs })
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>, ClientError> {
        let stream = TcpStream::connect(&self.addrs[..])?;
        stream.set_nodelay(true)?;
        Ok(Box::new(stream))
    }
}

/// A connector that wraps every connection of an inner connector in a
/// [`ChaosTransport`] drawing from one shared [`ChaosPlan`] — so the
/// fault schedule *continues* across reconnects instead of restarting
/// (a schedule that restarted would replay the same first fault forever).
pub struct ChaosConnector<C> {
    inner: C,
    plan: ChaosPlan,
}

impl<C: Connector> ChaosConnector<C> {
    /// Wrap `inner`, injecting faults from `plan`.
    pub fn new(inner: C, plan: ChaosPlan) -> ChaosConnector<C> {
        ChaosConnector { inner, plan }
    }

    /// The shared plan (for stats).
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }
}

impl<C: Connector> Connector for ChaosConnector<C> {
    fn connect(&mut self) -> Result<Box<dyn Transport>, ClientError> {
        let transport = self.inner.connect()?;
        Ok(Box::new(ChaosTransport::new(transport, self.plan.clone())))
    }
}

/// Bounded retry with seeded-jitter exponential backoff.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed for the jitter stream — retries are as deterministic as
    /// everything else in this workspace.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every error surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// Retry up to `max_attempts` total attempts, backing off from 1 ms
    /// toward 50 ms.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0x8E7_124,
        }
    }

    /// Override the initial backoff (builder style).
    #[must_use]
    pub fn with_base_delay(mut self, delay: Duration) -> RetryPolicy {
        self.base_delay = delay;
        self
    }

    /// Override the backoff cap (builder style).
    #[must_use]
    pub fn with_max_delay(mut self, delay: Duration) -> RetryPolicy {
        self.max_delay = delay;
        self
    }

    /// Override the jitter seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Backoff before retry number `retry` (0-based): `base · 2^retry`,
    /// capped, scaled by a jitter factor in `[0.5, 1.0)` drawn from `rng`
    /// so a fleet of retrying clients decorrelates instead of thundering
    /// back in lockstep.
    fn backoff(&self, retry: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry.min(16)))
            .min(self.max_delay);
        exp.mul_f64(0.5 + rng.uniform() / 2.0)
    }
}

/// What the server reported about itself in a pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub version: u8,
    /// Worker threads in its pool.
    pub workers: u32,
    /// Its current calibration generation.
    pub generation: u64,
}

/// The full observed lifecycle of one successfully served job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Whether a `Running` status was observed before the terminal
    /// response (false only if the job finished faster than the status
    /// could be streamed — the protocol does not guarantee the edge).
    pub saw_running: bool,
    /// Jobs ahead of this one at accept time.
    pub queued_behind: u32,
    /// The terminal payload.
    pub done: JobDone,
}

/// One blocking client for a mirage-serve [`NetServer`](super::NetServer):
/// a [`Connector`] to (re)establish transports plus a [`RetryPolicy`].
pub struct NetClient {
    connector: Box<dyn Connector>,
    transport: Option<Box<dyn Transport>>,
    max_payload: u32,
    policy: RetryPolicy,
    jitter: Rng,
    retries: u64,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("connected", &self.transport.is_some())
            .field("policy", &self.policy)
            .field("retries", &self.retries)
            .finish()
    }
}

impl NetClient {
    /// Connect to a server over TCP, with no retries (every fault
    /// surfaces immediately — the PR-7 behavior).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect/configure failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, ClientError> {
        NetClient::connect_with_retry(addr, RetryPolicy::none())
    }

    /// Connect to a server over TCP with a retry policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect/configure failure (the initial
    /// connection is attempted eagerly, once).
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> Result<NetClient, ClientError> {
        NetClient::with_connector(Box::new(TcpConnector::new(addr)?), policy)
    }

    /// Build a client over any [`Connector`] — the seam chaos tests use to
    /// interpose a [`ChaosConnector`]. Connects eagerly once.
    ///
    /// # Errors
    ///
    /// Whatever the connector's first `connect` reports.
    pub fn with_connector(
        mut connector: Box<dyn Connector>,
        policy: RetryPolicy,
    ) -> Result<NetClient, ClientError> {
        let transport = connector.connect()?;
        let jitter = Rng::new(policy.seed);
        Ok(NetClient {
            connector,
            transport: Some(transport),
            max_payload: DEFAULT_MAX_PAYLOAD,
            policy,
            jitter,
            retries: 0,
        })
    }

    /// How many attempts were retried (reconnects + busy backoffs) over
    /// this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn transport(&mut self) -> Result<&mut Box<dyn Transport>, ClientError> {
        if self.transport.is_none() {
            self.transport = Some(self.connector.connect()?);
        }
        Ok(self.transport.as_mut().expect("just connected"))
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let bytes = request.encode();
        let transport = self.transport()?;
        frame::write_frame(transport, &bytes)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let max_payload = self.max_payload;
        let transport = self.transport()?;
        let payload = frame::read_frame(transport, max_payload)?;
        Ok(Response::decode(&payload)?)
    }

    /// Run one attempt-able operation under the retry policy.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut NetClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut retry = 0u32;
        loop {
            match op(self) {
                Ok(value) => return Ok(value),
                Err(error) => {
                    let action = recovery(&error);
                    if action == Recovery::Terminal || retry + 1 >= self.policy.max_attempts {
                        return Err(error);
                    }
                    if action == Recovery::Reconnect {
                        self.transport = None;
                    }
                    let delay = self.policy.backoff(retry, &mut self.jitter);
                    retry += 1;
                    self.retries += 1;
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Liveness/identity probe (retried per the policy).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or [`ClientError::Unexpected`] if the
    /// server answers with anything but a pong.
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        self.with_retry(|client| {
            client.send(&Request::Ping)?;
            loop {
                match client.recv()? {
                    Response::Pong {
                        version,
                        workers,
                        generation,
                    } => {
                        return Ok(ServerInfo {
                            version,
                            workers,
                            generation,
                        })
                    }
                    // Stale job-stream traffic from an earlier attempt
                    // (e.g. a chaos-duplicated submission): skip until the
                    // pong arrives.
                    Response::Queued { .. }
                    | Response::Running { .. }
                    | Response::Done(_)
                    | Response::Failed { .. } => continue,
                    other => return Err(unexpected(&other)),
                }
            }
        })
    }

    /// Submit one job and block until its terminal response, collecting
    /// the streamed statuses along the way. Retried per the policy;
    /// see the [module docs](self) for why resubmission is idempotent.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] / [`ClientError::Rejected`] when the server
    /// refuses the job, [`ClientError::Failed`] when it runs and fails
    /// (none of which are silently retried past the policy), plus the
    /// transport/protocol variants.
    pub fn submit(&mut self, request: SubmitRequest) -> Result<JobOutcome, ClientError> {
        self.with_retry(|client| client.submit_once(&request))
    }

    /// One submit attempt. Label echoes (protocol v2) are verified on
    /// every job-specific response: answers for other labels are stale
    /// phantoms — a duplicated request frame, or the tail of an aborted
    /// earlier attempt on this connection — and are skipped, not trusted.
    fn submit_once(&mut self, request: &SubmitRequest) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Submit(request.clone()))?;
        // Phase 1: our acceptance (or refusal).
        let (job_id, queued_behind) = loop {
            match self.recv()? {
                Response::Queued {
                    job_id,
                    label,
                    pending,
                    ..
                } => {
                    if label == request.label {
                        break (job_id, pending);
                    }
                    // A phantom duplicate's acceptance; its terminal
                    // answer will be skipped by the label check too.
                }
                Response::Busy { lane, capacity } => {
                    return Err(ClientError::Busy { lane, capacity })
                }
                Response::Rejected { message } => return Err(ClientError::Rejected { message }),
                Response::ProtocolError { message } => {
                    return Err(ClientError::Unexpected {
                        what: format!("server reported a protocol error: {message}"),
                    })
                }
                Response::Running { .. } | Response::Done(_) | Response::Failed { .. } => {
                    // Stale stream traffic from before this attempt.
                    continue;
                }
                other => return Err(unexpected(&other)),
            }
        };
        // Phase 2: statuses until our terminal message.
        let mut saw_running = false;
        loop {
            match self.recv()? {
                Response::Running {
                    job_id: running_id, ..
                } => {
                    if running_id == job_id {
                        saw_running = true;
                    }
                }
                Response::Done(done) => {
                    if done.label == request.label {
                        return Ok(JobOutcome {
                            job_id,
                            saw_running,
                            queued_behind,
                            done,
                        });
                    }
                    // A phantom's result: deterministically bit-identical
                    // to ours, but keep waiting for our own id's answer to
                    // stay aligned with the stream.
                }
                Response::Failed {
                    job_id: failed_id,
                    label,
                    kind,
                    message,
                } => {
                    if label == request.label {
                        return Err(ClientError::Failed {
                            job_id: failed_id,
                            kind,
                            message,
                        });
                    }
                }
                Response::Queued { .. } => {
                    // A phantom duplicate accepted after ours; skip.
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::Unexpected {
        what: format!("{response:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let policy = RetryPolicy::new(8)
            .with_base_delay(Duration::from_millis(2))
            .with_max_delay(Duration::from_millis(20))
            .with_seed(5);
        let mut rng = Rng::new(policy.seed);
        let mut prev_cap = Duration::ZERO;
        for retry in 0..8 {
            let delay = policy.backoff(retry, &mut rng);
            let cap = Duration::from_millis(2)
                .saturating_mul(2u32.pow(retry))
                .min(Duration::from_millis(20));
            assert!(delay >= cap.mul_f64(0.5), "jitter floor at retry {retry}");
            assert!(delay < cap, "jitter ceiling at retry {retry}");
            assert!(cap >= prev_cap, "cap is monotone");
            prev_cap = cap;
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::new(4).with_seed(77);
        let run = || {
            let mut rng = Rng::new(policy.seed);
            (0..6)
                .map(|r| policy.backoff(r, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recovery_classification() {
        assert_eq!(
            recovery(&ClientError::Io(std::io::ErrorKind::BrokenPipe)),
            Recovery::Reconnect
        );
        assert_eq!(
            recovery(&ClientError::Frame(FrameError::Closed)),
            Recovery::Reconnect
        );
        assert_eq!(
            recovery(&ClientError::Busy {
                lane: Lane::Batch,
                capacity: 4
            }),
            Recovery::Retry
        );
        assert_eq!(
            recovery(&ClientError::Rejected {
                message: "no".into()
            }),
            Recovery::Terminal
        );
        assert_eq!(
            recovery(&ClientError::Failed {
                job_id: 1,
                kind: FailureKind::WorkerPanicked,
                message: "boom".into()
            }),
            Recovery::Terminal,
            "a panicked worker is a deterministic verdict, never retried"
        );
    }

    #[test]
    fn policy_none_is_single_attempt() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
    }
}
