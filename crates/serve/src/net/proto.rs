//! Wire envelopes: the versioned request/response messages that ride
//! inside [`super::frame`] payloads.
//!
//! Every encoded message starts with one **version byte**
//! ([`PROTO_VERSION`]) followed by a message tag and a fixed field order —
//! a hand-rolled binary format (big-endian integers, IEEE-754 bit
//! patterns for floats, length-prefixed UTF-8 for strings) so the crate
//! stays zero-dep. Decoding is total: every malformed input maps to a
//! typed [`ProtoError`], never a panic, and trailing bytes after a
//! well-formed message are themselves an error (a desynced peer should
//! fail loudly, not silently drift).
//!
//! The conversation shape (enforced by `NetServer`, not the codec):
//!
//! ```text
//! client                                server
//!   ── Request::Ping ──────────────────▶
//!   ◀─────────────────── Response::Pong ──
//!   ── Request::Submit(SubmitRequest) ─▶
//!   ◀─ Response::Queued ─ Response::Running ─ Response::Done/Failed ──
//!        (or Response::Busy / Rejected immediately, no job accepted)
//! ```

use super::frame;
use crate::queue::Lane;
use crate::InjectedFault;
use mirage_core::pipeline::Metrics;
use mirage_core::trials::Metric;
use mirage_core::{RouterKind, TranspileOptions};

/// Protocol version this build speaks. A decoder seeing any other value
/// refuses with [`ProtoError::UnsupportedVersion`] — fields may be
/// reordered or re-typed between versions, so guessing is worse than
/// failing.
///
/// v2 (retries + chaos): submissions may carry an [`InjectedFault`], job
/// responses (`Queued` / `Done` / `Failed`) echo the submission label so a
/// retrying client can verify it is reading answers for *its* job even
/// after duplicated or replayed request frames, and `Failed` can report
/// [`FailureKind::WorkerPanicked`].
pub const PROTO_VERSION: u8 = 2;

/// Why a message could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The leading version byte is not [`PROTO_VERSION`].
    UnsupportedVersion(u8),
    /// A tag or enum discriminant had no defined meaning.
    UnknownTag {
        /// Which field carried the bad tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The message ended before a field was complete.
    Truncated {
        /// The field being decoded when the bytes ran out.
        what: &'static str,
    },
    /// Bytes remained after a complete message — a framing/desync bug.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8 {
        /// Which field held the bad bytes.
        what: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            ProtoError::Truncated { what } => write!(f, "message truncated while decoding {what}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtoError::InvalidUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Primitive reader/writer
// ---------------------------------------------------------------------------

/// Append-only primitive writer; infallible (the message length cap is
/// the frame layer's business).
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            buf: vec![PROTO_VERSION],
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }
    fn str(&mut self, s: &str) {
        assert!(
            u32::try_from(s.len()).is_ok(),
            "string field too long for a u32 length"
        );
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

/// Cursor-based primitive reader; every accessor is total.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Result<Reader<'a>, ProtoError> {
        let mut r = Reader { buf, pos: 0 };
        let version = r.u8("version")?;
        if version != PROTO_VERSION {
            return Err(ProtoError::UnsupportedVersion(version));
        }
        Ok(r)
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Truncated { what })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }
    fn bool(&mut self, what: &'static str) -> Result<bool, ProtoError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtoError::UnknownTag { what, tag }),
        }
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("slice is 4 bytes"),
        ))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("slice is 8 bytes"),
        ))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn str(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::InvalidUtf8 { what })
    }
    fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, ProtoError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            tag => Err(ProtoError::UnknownTag { what, tag }),
        }
    }
    fn finish(self) -> Result<(), ProtoError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra })
        }
    }
}

fn lane_to_wire(lane: Lane) -> u8 {
    lane.index() as u8
}

fn lane_from_wire(r: &mut Reader<'_>) -> Result<Lane, ProtoError> {
    let tag = r.u8("lane")?;
    Lane::from_index(tag).ok_or(ProtoError::UnknownTag { what: "lane", tag })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The transpilation options a request carries over the wire — the
/// serving-relevant subset of [`TranspileOptions`].
///
/// [`WireOptions::to_options`] expands this onto
/// [`TranspileOptions::quick`] for the chosen router, so fields *not*
/// carried (strategy/aggression mixes, VF2 budget, mirror λ) take the
/// same defaults on every server; a request is fully reproducible from
/// its envelope alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOptions {
    /// Router selection.
    pub router: RouterKind,
    /// Post-selection metric; `None` keeps the router's default.
    pub metric: Option<Metric>,
    /// Independent initial layouts.
    pub layout_trials: u32,
    /// Independent routing runs per layout.
    pub routing_trials: u32,
    /// Forward–backward refinement passes per layout.
    pub fwd_bwd_iters: u32,
    /// Try a VF2 embedding first and skip routing when one exists.
    pub use_vf2: bool,
    /// Fan layout trials across threads server-side (bit-identical at
    /// any thread count, so this is purely a latency knob).
    pub parallel: bool,
    /// Worker threads when `parallel` (0 = host parallelism).
    pub threads: u32,
}

impl WireOptions {
    /// The wire image of [`TranspileOptions::quick`] for `router`.
    pub fn quick(router: RouterKind) -> WireOptions {
        WireOptions::from_options(&TranspileOptions::quick(router, 0))
    }

    /// Project full [`TranspileOptions`] onto the wire subset (mixes and
    /// budgets are dropped — see the type docs).
    pub fn from_options(options: &TranspileOptions) -> WireOptions {
        WireOptions {
            router: options.router,
            metric: Some(options.trials.metric),
            layout_trials: options.trials.layout_trials as u32,
            routing_trials: options.trials.routing_trials as u32,
            fwd_bwd_iters: options.trials.fwd_bwd_iters as u32,
            use_vf2: options.use_vf2,
            parallel: options.trials.parallel,
            threads: options.trials.threads as u32,
        }
    }

    /// Expand onto [`TranspileOptions::quick`] with `seed`. This is the
    /// *defining* server-side interpretation: an in-process run with the
    /// returned options and the same seed is bit-identical to the served
    /// result.
    pub fn to_options(&self, seed: u64) -> TranspileOptions {
        let mut options = TranspileOptions::quick(self.router, seed);
        if let Some(metric) = self.metric {
            options = options.with_metric(metric);
        }
        options.trials.layout_trials = self.layout_trials as usize;
        options.trials.routing_trials = self.routing_trials as usize;
        options.trials.fwd_bwd_iters = self.fwd_bwd_iters as usize;
        options.use_vf2 = self.use_vf2;
        options.trials.parallel = self.parallel;
        options.trials.threads = self.threads as usize;
        options
    }

    fn encode(&self, w: &mut Writer) {
        w.u8(router_to_wire(self.router));
        match self.metric {
            None => w.u8(255),
            Some(m) => w.u8(metric_to_wire(m)),
        }
        w.u32(self.layout_trials);
        w.u32(self.routing_trials);
        w.u32(self.fwd_bwd_iters);
        w.bool(self.use_vf2);
        w.bool(self.parallel);
        w.u32(self.threads);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireOptions, ProtoError> {
        Ok(WireOptions {
            router: router_from_wire(r.u8("router")?)?,
            metric: match r.u8("metric")? {
                255 => None,
                tag => Some(metric_from_wire(tag)?),
            },
            layout_trials: r.u32("layout_trials")?,
            routing_trials: r.u32("routing_trials")?,
            fwd_bwd_iters: r.u32("fwd_bwd_iters")?,
            use_vf2: r.bool("use_vf2")?,
            parallel: r.bool("parallel")?,
            threads: r.u32("threads")?,
        })
    }
}

fn router_to_wire(router: RouterKind) -> u8 {
    match router {
        RouterKind::Mirage => 0,
        RouterKind::MirageSwaps => 1,
        RouterKind::Sabre => 2,
    }
}

fn router_from_wire(tag: u8) -> Result<RouterKind, ProtoError> {
    match tag {
        0 => Ok(RouterKind::Mirage),
        1 => Ok(RouterKind::MirageSwaps),
        2 => Ok(RouterKind::Sabre),
        tag => Err(ProtoError::UnknownTag {
            what: "router",
            tag,
        }),
    }
}

fn metric_to_wire(metric: Metric) -> u8 {
    match metric {
        Metric::SwapCount => 0,
        Metric::Depth => 1,
        Metric::EstimatedSuccess => 2,
    }
}

fn metric_from_wire(tag: u8) -> Result<Metric, ProtoError> {
    match tag {
        0 => Ok(Metric::SwapCount),
        1 => Ok(Metric::Depth),
        2 => Ok(Metric::EstimatedSuccess),
        tag => Err(ProtoError::UnknownTag {
            what: "metric",
            tag,
        }),
    }
}

/// A transpile-this request: everything a server needs to produce a
/// deterministic result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Caller label, echoed back untouched.
    pub label: String,
    /// The circuit, as OpenQASM 2 text.
    pub qasm: String,
    /// Trial seed — with the options, the full determinism input.
    pub seed: u64,
    /// Queue lane (interactive jobs dequeue first).
    pub lane: Lane,
    /// Relative deadline in milliseconds from server receipt; a job
    /// still queued past it is rejected at dequeue. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Transpilation options.
    pub options: WireOptions,
    /// Chaos hook: ask the worker to panic instead of transpiling.
    /// Servers not started in chaos mode reject faulted submissions.
    pub fault: Option<InjectedFault>,
}

fn fault_to_wire(fault: Option<InjectedFault>) -> u8 {
    match fault {
        None => 0,
        Some(InjectedFault::Panic) => 1,
        Some(InjectedFault::PanicKill) => 2,
    }
}

fn fault_from_wire(r: &mut Reader<'_>) -> Result<Option<InjectedFault>, ProtoError> {
    match r.u8("fault")? {
        0 => Ok(None),
        1 => Ok(Some(InjectedFault::Panic)),
        2 => Ok(Some(InjectedFault::PanicKill)),
        tag => Err(ProtoError::UnknownTag { what: "fault", tag }),
    }
}

/// What a client can ask of a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / identity probe; answered by [`Response::Pong`].
    Ping,
    /// Submit one job; answered by a status stream (see module docs).
    Submit(SubmitRequest),
}

const REQ_PING: u8 = 0;
const REQ_SUBMIT: u8 = 1;

impl Request {
    /// Serialize (version byte included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ping => w.u8(REQ_PING),
            Request::Submit(req) => {
                w.u8(REQ_SUBMIT);
                w.str(&req.label);
                w.str(&req.qasm);
                w.u64(req.seed);
                w.u8(lane_to_wire(req.lane));
                w.opt_u64(req.deadline_ms);
                req.options.encode(&mut w);
                w.u8(fault_to_wire(req.fault));
            }
        }
        w.buf
    }

    /// Deserialize; checks the version byte first and rejects trailing
    /// bytes.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] variant.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader::new(bytes)?;
        let request = match r.u8("request tag")? {
            REQ_PING => Request::Ping,
            REQ_SUBMIT => Request::Submit(SubmitRequest {
                label: r.str("label")?,
                qasm: r.str("qasm")?,
                seed: r.u64("seed")?,
                lane: lane_from_wire(&mut r)?,
                deadline_ms: r.opt_u64("deadline_ms")?,
                options: WireOptions::decode(&mut r)?,
                fault: fault_from_wire(&mut r)?,
            }),
            tag => {
                return Err(ProtoError::UnknownTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The transpilation metrics a [`Response::Done`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetrics {
    /// Duration-weighted critical path (normalized units).
    pub depth_estimate: f64,
    /// Sum of two-qubit decomposition costs.
    pub total_gate_cost: f64,
    /// Two-qubit gates in the output.
    pub two_qubit_gates: u32,
    /// SWAPs inserted by routing.
    pub swaps: u32,
    /// Mirror gates accepted.
    pub mirrors: u32,
    /// Estimated success probability under the serving calibration.
    pub estimated_success: f64,
}

impl WireMetrics {
    /// Project the pipeline's [`Metrics`] onto the wire subset.
    pub fn from_metrics(m: &Metrics) -> WireMetrics {
        WireMetrics {
            depth_estimate: m.depth_estimate,
            total_gate_cost: m.total_gate_cost,
            two_qubit_gates: m.two_qubit_gates as u32,
            swaps: m.swaps_inserted as u32,
            mirrors: m.mirrors_accepted as u32,
            estimated_success: m.estimated_success,
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.f64(self.depth_estimate);
        w.f64(self.total_gate_cost);
        w.u32(self.two_qubit_gates);
        w.u32(self.swaps);
        w.u32(self.mirrors);
        w.f64(self.estimated_success);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireMetrics, ProtoError> {
        Ok(WireMetrics {
            depth_estimate: r.f64("depth_estimate")?,
            total_gate_cost: r.f64("total_gate_cost")?,
            two_qubit_gates: r.u32("two_qubit_gates")?,
            swaps: r.u32("swaps")?,
            mirrors: r.u32("mirrors")?,
            estimated_success: r.f64("estimated_success")?,
        })
    }
}

/// The payload of a successful job completion.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDone {
    /// Server-assigned job id.
    pub job_id: u64,
    /// The submission label, echoed back so a retrying client can verify
    /// this terminal answer belongs to the job it is waiting on.
    pub label: String,
    /// The routed circuit, as OpenQASM 2 text.
    pub qasm: String,
    /// [`Circuit::fingerprint`](mirage_circuit::Circuit::fingerprint) of
    /// the routed circuit — the bit-identity witness a client can compare
    /// against an in-process run without re-parsing the QASM.
    pub fingerprint: u64,
    /// Calibration generation the job ran under.
    pub generation: u64,
    /// Server-side execution time, microseconds (queue wait excluded).
    pub elapsed_us: u64,
    /// Result metrics.
    pub metrics: WireMetrics,
}

/// Why a dispatched job failed (mirrors
/// [`JobError`](crate::JobError) across the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The transpiler rejected the job.
    Transpile,
    /// The deadline passed while the job was still queued.
    DeadlineExceeded,
    /// The worker panicked while running the job. Terminal and **not
    /// retryable**: the same submission would deterministically panic
    /// again.
    WorkerPanicked,
}

/// What a server sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Protocol version the server speaks.
        version: u8,
        /// Worker threads in the pool.
        workers: u32,
        /// Current calibration generation.
        generation: u64,
    },
    /// The job was accepted and queued.
    Queued {
        /// Server-assigned job id (unique per server lifetime).
        job_id: u64,
        /// The submission label, echoed so a retrying client can match
        /// this acceptance to the request it actually sent.
        label: String,
        /// The lane it was queued into.
        lane: Lane,
        /// Jobs ahead of it across both lanes at accept time.
        pending: u32,
    },
    /// A worker dequeued the job and is running it.
    Running {
        /// The job.
        job_id: u64,
        /// Worker index that claimed it.
        worker: u32,
        /// Calibration generation it runs under.
        generation: u64,
    },
    /// Terminal: the job succeeded.
    Done(JobDone),
    /// Terminal: the job was dispatched but failed.
    Failed {
        /// The job.
        job_id: u64,
        /// The submission label, echoed for client-side correlation.
        label: String,
        /// Typed failure class.
        kind: FailureKind,
        /// Human-readable detail.
        message: String,
    },
    /// Terminal, pre-queue: admission control rejected the submission —
    /// the lane is at capacity. Nothing was queued; retry later.
    Busy {
        /// The full lane.
        lane: Lane,
        /// Its configured per-lane capacity.
        capacity: u32,
    },
    /// Terminal, pre-queue: the request was well-formed but unusable
    /// (unparseable QASM, server shutting down).
    Rejected {
        /// Human-readable reason.
        message: String,
    },
    /// The envelope itself could not be understood (decode error). The
    /// connection stays usable — framing kept the stream in sync.
    ProtocolError {
        /// Human-readable reason.
        message: String,
    },
}

const RESP_PONG: u8 = 0;
const RESP_QUEUED: u8 = 1;
const RESP_RUNNING: u8 = 2;
const RESP_DONE: u8 = 3;
const RESP_FAILED: u8 = 4;
const RESP_BUSY: u8 = 5;
const RESP_REJECTED: u8 = 6;
const RESP_PROTOCOL_ERROR: u8 = 7;

impl Response {
    /// Serialize (version byte included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Pong {
                version,
                workers,
                generation,
            } => {
                w.u8(RESP_PONG);
                w.u8(*version);
                w.u32(*workers);
                w.u64(*generation);
            }
            Response::Queued {
                job_id,
                label,
                lane,
                pending,
            } => {
                w.u8(RESP_QUEUED);
                w.u64(*job_id);
                w.str(label);
                w.u8(lane_to_wire(*lane));
                w.u32(*pending);
            }
            Response::Running {
                job_id,
                worker,
                generation,
            } => {
                w.u8(RESP_RUNNING);
                w.u64(*job_id);
                w.u32(*worker);
                w.u64(*generation);
            }
            Response::Done(done) => {
                w.u8(RESP_DONE);
                w.u64(done.job_id);
                w.str(&done.label);
                w.str(&done.qasm);
                w.u64(done.fingerprint);
                w.u64(done.generation);
                w.u64(done.elapsed_us);
                done.metrics.encode(&mut w);
            }
            Response::Failed {
                job_id,
                label,
                kind,
                message,
            } => {
                w.u8(RESP_FAILED);
                w.u64(*job_id);
                w.str(label);
                w.u8(match kind {
                    FailureKind::Transpile => 0,
                    FailureKind::DeadlineExceeded => 1,
                    FailureKind::WorkerPanicked => 2,
                });
                w.str(message);
            }
            Response::Busy { lane, capacity } => {
                w.u8(RESP_BUSY);
                w.u8(lane_to_wire(*lane));
                w.u32(*capacity);
            }
            Response::Rejected { message } => {
                w.u8(RESP_REJECTED);
                w.str(message);
            }
            Response::ProtocolError { message } => {
                w.u8(RESP_PROTOCOL_ERROR);
                w.str(message);
            }
        }
        w.buf
    }

    /// Deserialize; checks the version byte first and rejects trailing
    /// bytes.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] variant.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(bytes)?;
        let response = match r.u8("response tag")? {
            RESP_PONG => Response::Pong {
                version: r.u8("version")?,
                workers: r.u32("workers")?,
                generation: r.u64("generation")?,
            },
            RESP_QUEUED => Response::Queued {
                job_id: r.u64("job_id")?,
                label: r.str("label")?,
                lane: lane_from_wire(&mut r)?,
                pending: r.u32("pending")?,
            },
            RESP_RUNNING => Response::Running {
                job_id: r.u64("job_id")?,
                worker: r.u32("worker")?,
                generation: r.u64("generation")?,
            },
            RESP_DONE => Response::Done(JobDone {
                job_id: r.u64("job_id")?,
                label: r.str("label")?,
                qasm: r.str("qasm")?,
                fingerprint: r.u64("fingerprint")?,
                generation: r.u64("generation")?,
                elapsed_us: r.u64("elapsed_us")?,
                metrics: WireMetrics::decode(&mut r)?,
            }),
            RESP_FAILED => Response::Failed {
                job_id: r.u64("job_id")?,
                label: r.str("label")?,
                kind: match r.u8("failure kind")? {
                    0 => FailureKind::Transpile,
                    1 => FailureKind::DeadlineExceeded,
                    2 => FailureKind::WorkerPanicked,
                    tag => {
                        return Err(ProtoError::UnknownTag {
                            what: "failure kind",
                            tag,
                        })
                    }
                },
                message: r.str("message")?,
            },
            RESP_BUSY => Response::Busy {
                lane: lane_from_wire(&mut r)?,
                capacity: r.u32("capacity")?,
            },
            RESP_REJECTED => Response::Rejected {
                message: r.str("message")?,
            },
            RESP_PROTOCOL_ERROR => Response::ProtocolError {
                message: r.str("message")?,
            },
            tag => {
                return Err(ProtoError::UnknownTag {
                    what: "response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(response)
    }
}

/// Frame + encode a message in one call (what both ends actually send).
pub fn frame_request(request: &Request) -> Vec<u8> {
    frame::encode_frame(&request.encode())
}

/// Frame + encode a response in one call.
pub fn frame_response(response: &Response) -> Vec<u8> {
    frame::encode_frame(&response.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submit() -> Request {
        Request::Submit(SubmitRequest {
            label: "qft-8 №1".to_owned(),
            qasm: "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n".to_owned(),
            seed: 0xDEADBEEF,
            lane: Lane::Interactive,
            deadline_ms: Some(1500),
            options: WireOptions::quick(RouterKind::Mirage),
            fault: None,
        })
    }

    fn faulted_submit(fault: InjectedFault) -> Request {
        match sample_submit() {
            Request::Submit(mut req) => {
                req.fault = Some(fault);
                Request::Submit(req)
            }
            other => unreachable!("sample_submit is a Submit, got {other:?}"),
        }
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Ping,
            sample_submit(),
            faulted_submit(InjectedFault::Panic),
            faulted_submit(InjectedFault::PanicKill),
        ] {
            let bytes = request.encode();
            assert_eq!(bytes[0], PROTO_VERSION);
            assert_eq!(Request::decode(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn unknown_fault_tag_is_typed() {
        let mut bytes = sample_submit().encode();
        // The fault byte is the last byte of a Submit envelope.
        *bytes.last_mut().unwrap() = 9;
        assert_eq!(
            Request::decode(&bytes),
            Err(ProtoError::UnknownTag {
                what: "fault",
                tag: 9
            })
        );
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Pong {
                version: PROTO_VERSION,
                workers: 4,
                generation: 9,
            },
            Response::Queued {
                job_id: 3,
                label: "qft-8 №1".to_owned(),
                lane: Lane::Batch,
                pending: 17,
            },
            Response::Running {
                job_id: 3,
                worker: 2,
                generation: 9,
            },
            Response::Done(JobDone {
                job_id: 3,
                label: "qft-8 №1".to_owned(),
                qasm: "OPENQASM 2.0;\n".to_owned(),
                fingerprint: 0x0123_4567_89AB_CDEF,
                generation: 9,
                elapsed_us: 1234,
                metrics: WireMetrics {
                    depth_estimate: 12.5,
                    total_gate_cost: 40.25,
                    two_qubit_gates: 31,
                    swaps: 4,
                    mirrors: 7,
                    estimated_success: 0.875,
                },
            }),
            Response::Failed {
                job_id: 4,
                label: "late".to_owned(),
                kind: FailureKind::DeadlineExceeded,
                message: "deadline exceeded".to_owned(),
            },
            Response::Failed {
                job_id: 5,
                label: "boom".to_owned(),
                kind: FailureKind::WorkerPanicked,
                message: "worker panicked: injected fault".to_owned(),
            },
            Response::Busy {
                lane: Lane::Interactive,
                capacity: 64,
            },
            Response::Rejected {
                message: "qasm parse error".to_owned(),
            },
            Response::ProtocolError {
                message: "unknown request tag 9".to_owned(),
            },
        ];
        for response in responses {
            let bytes = response.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = Request::Ping.encode();
        bytes[0] = PROTO_VERSION + 1;
        assert_eq!(
            Request::decode(&bytes),
            Err(ProtoError::UnsupportedVersion(PROTO_VERSION + 1))
        );
    }

    #[test]
    fn wire_options_expand_deterministically() {
        let wire = WireOptions::quick(RouterKind::Sabre);
        let a = wire.to_options(42);
        let b = wire.to_options(42);
        assert_eq!(a.trials.seed, 42);
        assert_eq!(a.router, RouterKind::Sabre);
        assert_eq!(a.trials.layout_trials, b.trials.layout_trials);
        // Round-tripping through the wire is lossless for the carried
        // subset.
        assert_eq!(WireOptions::from_options(&a), wire);
    }
}
