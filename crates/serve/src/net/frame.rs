//! The frame codec: length-prefixed, checksummed byte frames.
//!
//! Everything on a mirage-serve connection travels inside a frame — the
//! one place the protocol touches raw bytes. The layout is fixed and
//! versionless (envelope versioning lives one layer up, in
//! [`proto`](super::proto)):
//!
//! ```text
//! offset  size  field
//!      0     2  magic  b"MF"             (frame sync / protocol check)
//!      2     4  len    u32 big-endian    (payload length in bytes)
//!      6     8  check  u64 big-endian    (FNV-1a 64 of the payload)
//!     14   len  payload
//! ```
//!
//! Decoding is defensive by construction, which is what the
//! fault-injection suite pins down:
//!
//! * the header is validated **before** any payload byte is read or any
//!   buffer is allocated — a hostile `len` can neither over-read the
//!   stream nor allocate unbounded memory ([`FrameError::Oversized`]);
//! * truncation at any byte position is a typed error, never a panic or a
//!   hang on more data than the peer will send;
//! * any corruption that survives the magic/length checks is caught by
//!   the checksum ([`FrameError::ChecksumMismatch`]).
//!
//! The integrity-checked-envelope shape follows the JACS transport-proxy
//! idiom: wrap *any* byte transport, verify at the boundary, hand clean
//! payloads up.

use std::io::{Read, Write};

/// Frame sync marker, the first two bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"MF";

/// Bytes before the payload: magic + length + checksum.
pub const HEADER_LEN: usize = 2 + 4 + 8;

/// Default cap on payload length a reader accepts (16 MiB) — far above
/// any real QASM request, far below an allocation-of-death.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// FNV-1a 64-bit over a byte slice — the frame checksum. Not
/// cryptographic; it catches corruption and desync, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a frame could not be decoded. Every variant is a *typed* failure:
/// the codec never panics on wire input and never reads past the frame it
/// was asked to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`FRAME_MAGIC`] — not a mirage-serve
    /// peer, or the stream lost sync.
    BadMagic([u8; 2]),
    /// The declared payload length exceeds the reader's cap. Detected
    /// from the header alone; no payload bytes were consumed.
    Oversized {
        /// Length the header declared.
        len: u32,
        /// The reader's configured cap.
        max: u32,
    },
    /// The input ended mid-frame.
    Truncated {
        /// Bytes the frame section needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload arrived complete but its checksum disagrees.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum computed over the received payload.
        got: u64,
    },
    /// The stream closed cleanly at a frame boundary (zero bytes read) —
    /// a normal end of conversation, not corruption.
    Closed,
    /// An I/O error other than end-of-stream while reading.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02X?}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: needed {expected} bytes, got {got}")
            }
            FrameError::ChecksumMismatch { expected, got } => write!(
                f,
                "frame checksum mismatch: header says {expected:#018X}, payload hashes to {got:#018X}"
            ),
            FrameError::Closed => write!(f, "stream closed at frame boundary"),
            FrameError::Io(kind) => write!(f, "frame i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one payload into a self-contained frame.
///
/// # Panics
///
/// Panics if `payload` is longer than `u32::MAX` bytes (unrepresentable
/// in the header); real payloads are capped far lower by the reader.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "frame payload too long for a u32 length"
    );
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decode one frame from the front of `buf`. Returns the payload and the
/// number of bytes consumed (so callers can decode back-to-back frames
/// from one buffer).
///
/// # Errors
///
/// Any [`FrameError`] decoding variant; `buf.is_empty()` reports
/// [`FrameError::Closed`] to mirror the streaming reader.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<(Vec<u8>, usize), FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Closed);
    }
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            expected: HEADER_LEN,
            got: buf.len(),
        });
    }
    let (payload, consumed) = decode_after_header(
        [buf[0], buf[1]],
        buf[2..6].try_into().expect("slice is 4 bytes"),
        buf[6..14].try_into().expect("slice is 8 bytes"),
        max_payload,
        |len| {
            let body = &buf[HEADER_LEN..];
            if body.len() < len {
                return Err(FrameError::Truncated {
                    expected: len,
                    got: body.len(),
                });
            }
            Ok(body[..len].to_vec())
        },
    )?;
    Ok((payload, consumed))
}

/// Shared header validation + payload acquisition: `fetch` is only called
/// once the magic and length have passed, so an oversized or foreign
/// frame never causes a payload read or allocation.
fn decode_after_header(
    magic: [u8; 2],
    len_bytes: [u8; 4],
    check_bytes: [u8; 8],
    max_payload: u32,
    fetch: impl FnOnce(usize) -> Result<Vec<u8>, FrameError>,
) -> Result<(Vec<u8>, usize), FrameError> {
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    let expected = u64::from_be_bytes(check_bytes);
    let payload = fetch(len as usize)?;
    let got = fnv1a(&payload);
    if got != expected {
        return Err(FrameError::ChecksumMismatch { expected, got });
    }
    Ok((payload, HEADER_LEN + len as usize))
}

/// Write one frame (header + payload) to `w` and flush.
///
/// # Errors
///
/// Propagates the underlying I/O error.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (see [`encode_frame`]).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Read one frame from `r`, enforcing `max_payload` before the payload is
/// touched.
///
/// A clean end-of-stream *before the first header byte* is
/// [`FrameError::Closed`]; end-of-stream anywhere later is
/// [`FrameError::Truncated`]. The reader consumes exactly one frame's
/// bytes on success and never reads payload bytes of a frame it has
/// already rejected.
///
/// # Errors
///
/// Any [`FrameError`] variant.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_counting(r, &mut header, HEADER_LEN).map_err(|e| match e {
        // Nothing read at all: the peer hung up between frames.
        FrameError::Truncated { got: 0, .. } => FrameError::Closed,
        other => other,
    })?;
    decode_after_header(
        [header[0], header[1]],
        header[2..6].try_into().expect("slice is 4 bytes"),
        header[6..14].try_into().expect("slice is 8 bytes"),
        max_payload,
        |len| {
            let mut payload = vec![0u8; len];
            read_exact_counting(r, &mut payload, len)?;
            Ok(payload)
        },
    )
    .map(|(payload, _)| payload)
}

/// `read_exact` with typed errors: reports how many bytes actually
/// arrived on truncation instead of a bare `UnexpectedEof`.
fn read_exact_counting<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected: usize,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn encode_decode_round_trip() {
        for payload in [&b""[..], b"x", b"hello frame", &[0u8; 4096]] {
            let frame = encode_frame(payload);
            assert_eq!(frame.len(), HEADER_LEN + payload.len());
            let (decoded, consumed) = decode_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(decoded, payload);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn streaming_reader_matches_buffer_decoder() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"first"));
        stream.extend_from_slice(&encode_frame(b""));
        stream.extend_from_slice(&encode_frame(b"third"));
        let mut cursor = Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"third");
        assert_eq!(read_frame(&mut cursor, 64), Err(FrameError::Closed));
    }

    #[test]
    fn oversized_header_is_rejected_before_payload() {
        let frame = encode_frame(&[7u8; 32]);
        assert_eq!(
            decode_frame(&frame, 31),
            Err(FrameError::Oversized { len: 32, max: 31 })
        );
        // The streaming reader rejects from the header alone: even with
        // zero payload bytes available it reports Oversized, not
        // Truncated — proof it never tried to read the payload.
        let mut header_only = Cursor::new(frame[..HEADER_LEN].to_vec());
        assert_eq!(
            read_frame(&mut header_only, 31),
            Err(FrameError::Oversized { len: 32, max: 31 })
        );
    }

    #[test]
    fn corrupted_payload_is_caught_by_checksum() {
        let mut frame = encode_frame(b"payload under test");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&frame, 64),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn foreign_bytes_fail_the_magic_check() {
        assert_eq!(
            decode_frame(b"GET / HTTP/1.1\r\n", 64),
            Err(FrameError::BadMagic(*b"GE"))
        );
    }
}
