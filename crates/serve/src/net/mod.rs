//! The network front: a framed-TCP daemon over [`TranspileService`].
//!
//! Layering, bottom up:
//!
//! * [`frame`] — length-prefixed, checksummed byte frames (the only layer
//!   that touches raw sockets' byte streams);
//! * [`proto`] — versioned request/response envelopes inside frames;
//! * [`NetServer`] — a `std::net::TcpListener` accept loop spawning one
//!   handler thread per connection, each driving the shared worker pool
//!   through [`TranspileService`];
//! * [`NetClient`] — the matching blocking client, with a [`RetryPolicy`]
//!   for reconnect-and-resubmit recovery;
//! * [`chaos`] — a deterministic fault-injection proxy
//!   ([`ChaosTransport`]) the tests and bench wrap around any transport;
//! * [`CalibrationRefresher`] — a file-watching poller hot-swapping the
//!   served [`Target`]'s calibration.
//!
//! A connection carries **pipelined** conversations: the handler thread
//! keeps reading [`Request`]s while a per-job forwarder thread streams
//! each accepted job's `Queued` → `Running` → `Done`/`Failed` responses
//! back through a shared, frame-atomic writer. A client may therefore
//! have many jobs in flight on one socket; protocol v2 echoes the
//! submission label on every job-specific response so the client can
//! correlate them. Every connection feeds the same two-lane queue — the
//! pool, the lanes, the deadlines, and admission control are shared
//! process-wide — and each connection is a distinct *client* to the
//! queue's weighted fair-share scheduler, so one flooding connection
//! cannot starve another's jobs.
//!
//! Fault policy (what `tests/serve_net.rs` injects):
//!
//! * an envelope that fails to decode gets a [`Response::ProtocolError`]
//!   and the connection **stays open** — framing kept the stream in sync;
//! * a frame-level failure (bad magic, checksum mismatch, oversized,
//!   truncation) means the stream can no longer be trusted: the server
//!   sends a best-effort [`Response::ProtocolError`] and closes that
//!   connection — the listener and every other connection are unaffected;
//! * a client that disconnects mid-job kills nothing: the job was already
//!   queued, the pool finishes it, the undeliverable result is discarded;
//! * a job that panics its worker fails alone
//!   ([`FailureKind::WorkerPanicked`] on the wire); the pool respawns the
//!   worker and every other job is untouched;
//! * server shutdown is graceful: accepted jobs drain and their terminal
//!   responses are delivered before connection handlers exit.

pub mod chaos;
pub mod client;
pub mod frame;
pub mod proto;
pub mod refresh;

pub use chaos::{ChaosConfig, ChaosPlan, ChaosStats, ChaosTransport};
pub use client::{
    ChaosConnector, ClientError, Connector, JobOutcome, NetClient, RetryPolicy, ServerInfo,
    TcpConnector, Transport,
};
pub use frame::{FrameError, DEFAULT_MAX_PAYLOAD};
pub use proto::{
    FailureKind, JobDone, ProtoError, Request, Response, SubmitRequest, WireMetrics, WireOptions,
    PROTO_VERSION,
};
pub use refresh::CalibrationRefresher;

use crate::{
    JobError, JobEvent, ServeError, ServiceConfig, ServiceStats, TranspileJob, TranspileService,
};
use mirage_circuit::qasm::{from_qasm, to_qasm};
use mirage_core::Target;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How to run a [`NetServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads in the transpile pool.
    pub workers: usize,
    /// Per-client, per-lane admission bound; `None` = unbounded (see
    /// [`ServiceConfig::queue_capacity`]).
    pub queue_capacity: Option<usize>,
    /// Largest frame payload a connection will accept.
    pub max_payload: u32,
    /// Accept submissions carrying an injected fault
    /// ([`SubmitRequest::fault`]). Off by default: a production server
    /// rejects faulted submissions before queueing them.
    pub chaos: bool,
}

impl ServeConfig {
    /// Defaults: `workers` threads, unbounded queue, 16 MiB frames,
    /// fault injection disabled.
    pub fn new(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            queue_capacity: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            chaos: false,
        }
    }

    /// Bound each queue lane to `capacity` jobs (builder style); overload
    /// then surfaces as [`Response::Busy`].
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Cap accepted frame payloads (builder style).
    #[must_use]
    pub fn with_max_payload(mut self, max_payload: u32) -> ServeConfig {
        self.max_payload = max_payload;
        self
    }

    /// Allow submissions with injected faults (builder style) — the knob
    /// the chaos suite turns; leave off in production.
    #[must_use]
    pub fn with_chaos(mut self) -> ServeConfig {
        self.chaos = true;
        self
    }
}

/// Counters reported by [`NetServer::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server lifetime.
    pub connections: u64,
    /// The wrapped pool's drain stats.
    pub service: ServiceStats,
}

/// Shared between the accept loop, connection handlers, and the owner.
struct Shared {
    service: TranspileService,
    shutdown: AtomicBool,
    connections: AtomicU64,
    closed: AtomicU64,
    max_payload: u32,
    chaos: bool,
}

/// A framed-TCP transpilation daemon. Bind with [`NetServer::bind`],
/// stop with [`NetServer::shutdown`] (graceful: accepted jobs drain and
/// in-flight conversations complete their current job first).
pub struct NetServer {
    shared: Option<Arc<Shared>>,
    accept: Option<std::thread::JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Bind a listener on `addr` (use port 0 for an OS-assigned port,
    /// recoverable via [`NetServer::local_addr`]) and start serving a
    /// fresh worker pool over `target`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configure failures.
    pub fn bind<A: ToSocketAddrs>(
        target: Arc<Target>,
        addr: A,
        config: &ServeConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking so the accept loop can observe the shutdown flag
        // instead of parking in accept(2) forever.
        listener.set_nonblocking(true)?;
        let service_config = ServiceConfig {
            workers: config.workers,
            queue_capacity: config.queue_capacity,
        };
        let shared = Arc::new(Shared {
            service: TranspileService::with_config(target, &service_config),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            max_payload: config.max_payload,
            chaos: config.chaos,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("mirage-net-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("failed to spawn accept thread");
        Ok(NetServer {
            shared: Some(shared),
            accept: Some(accept),
            local_addr,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Jobs accepted but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.shared().service.pending()
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared().connections.load(Ordering::SeqCst)
    }

    /// Connections whose conversation has ended (peer hung up or the
    /// handler dropped it). Scripted runs wait on this rather than
    /// [`NetServer::connections`] so an in-flight session is never cut
    /// off mid-conversation.
    pub fn connections_closed(&self) -> u64 {
        self.shared().closed.load(Ordering::SeqCst)
    }

    /// Current calibration generation of the served target.
    pub fn generation(&self) -> u64 {
        self.shared().service.target().calibration_generation()
    }

    /// The served target (e.g. to attach a [`CalibrationRefresher`]).
    pub fn target(&self) -> Arc<Target> {
        Arc::clone(self.shared().service.target())
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared.as_ref().expect("server already shut down")
    }

    /// Graceful shutdown: stop accepting connections, let every handler
    /// finish its in-flight conversation, drain the job queue, join the
    /// pool, and report counters.
    pub fn shutdown(mut self) -> NetStats {
        self.stop_accepting();
        let shared = self.shared.take().expect("server already shut down");
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("connection threads still hold the server state"));
        let connections = shared.connections.load(Ordering::SeqCst);
        NetStats {
            connections,
            service: shared.service.shutdown(),
        }
    }

    /// Flag the accept loop down and join it (it joins every connection
    /// handler before returning, so afterwards this object holds the only
    /// `Shared` reference).
    fn stop_accepting(&mut self) {
        if let Some(shared) = self.shared.as_ref() {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        if let Some(handle) = self.accept.take() {
            handle.join().expect("accept thread panicked");
        }
    }
}

impl Drop for NetServer {
    /// Dropping without [`NetServer::shutdown`] still stops the listener,
    /// joins the handlers, and drains the pool (via the service's own
    /// `Drop`).
    fn drop(&mut self) {
        self.stop_accepting();
        // `self.shared` (if still held) drops here; the service Drop
        // closes the queue and joins the workers.
    }
}

/// Poll-accept until the shutdown flag rises; joins every connection
/// handler before returning.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let n = shared.connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("mirage-net-conn-{n}"))
                    .spawn(move || {
                        // Client id 0 is reserved for in-process callers
                        // (`TranspileService::submit`); connections are
                        // distinct fair-share clients starting at 1.
                        handle_connection(stream, &conn_shared, n + 1);
                        conn_shared.closed.fetch_add(1, Ordering::SeqCst);
                    })
                    .expect("failed to spawn connection handler");
                handlers.push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (per-connection resets etc.): keep
            // listening.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        // Reap finished handlers as we go so a long-lived server does not
        // accumulate dead join handles.
        let mut live = Vec::with_capacity(handlers.len());
        for handle in handlers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        handlers = live;
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Read-side outcome of waiting for the next request frame.
enum NextFrame {
    /// A complete frame payload.
    Payload(Vec<u8>),
    /// Peer closed / shutdown flagged / stream desynced beyond recovery:
    /// stop serving this connection (after the handler sent any
    /// best-effort error).
    Stop,
    /// Stream-level decode failure with the error to report.
    Broken(FrameError),
}

/// Wait for the next frame, staying responsive to the shutdown flag: the
/// socket blocks at most [`POLL_SLICE`] per read, and between slices the
/// flag is checked. Once the first header byte arrives the frame is read
/// to completion (still in slices, so a stalled peer cannot pin the
/// handler past shutdown *between* frames — mid-frame stalls are bounded
/// by the peer finishing or closing).
const POLL_SLICE: Duration = Duration::from_millis(20);

fn next_frame(stream: &mut TcpStream, shared: &Shared) -> NextFrame {
    // Poll for the first byte so an idle connection notices shutdown.
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return NextFrame::Stop;
        }
        match stream.read(&mut first) {
            Ok(0) => return NextFrame::Stop, // peer closed between frames
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return NextFrame::Stop,
        }
    }
    // First byte in hand: read the rest of the frame through a reader
    // that resumes on timeout slices (the peer has committed to a frame).
    let mut reader = Resumable { inner: stream };
    let mut chained = (&first[..]).chain(&mut reader);
    match frame::read_frame(&mut chained, shared.max_payload) {
        Ok(payload) => NextFrame::Payload(payload),
        Err(FrameError::Closed) => NextFrame::Stop,
        Err(e) => NextFrame::Broken(e),
    }
}

/// Adapter that swallows the read-timeout slices `next_frame` configures
/// on the socket, so `read_frame` sees an ordinary blocking stream.
struct Resumable<'a> {
    inner: &'a mut TcpStream,
}

impl Read for Resumable<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

/// Write one response frame through the connection's shared writer. The
/// lock is held across the whole frame, so forwarder threads and the
/// handler interleave at frame granularity — never mid-frame.
fn send(writer: &Mutex<TcpStream>, response: &Response) -> std::io::Result<()> {
    let mut stream = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    frame::write_frame(&mut *stream, &response.encode())
}

/// One connection's conversation loop. Requests are **pipelined**: this
/// loop keeps reading while per-job forwarder threads stream each
/// accepted job's statuses back through the shared writer — so a client
/// can have many jobs in flight on one socket, and one connection's
/// flood of submissions never has to finish before later requests are
/// even read.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>, client: u64) {
    // Low-latency small writes (status updates), sliced reads for
    // shutdown responsiveness.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let writer = match stream.try_clone() {
        Ok(write_half) => Arc::new(Mutex::new(write_half)),
        Err(_) => return,
    };
    let mut forwarders: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let payload = match next_frame(&mut stream, shared) {
            NextFrame::Payload(payload) => payload,
            NextFrame::Stop => break,
            NextFrame::Broken(e) => {
                // The byte stream lost sync; report if the socket still
                // works, then stop reading (accepted jobs still deliver
                // below — outbound frames remain intact).
                let _ = send(
                    &writer,
                    &Response::ProtocolError {
                        message: format!("frame error: {e}"),
                    },
                );
                break;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame was intact, so the stream is still in sync:
                // answer the error and keep the connection.
                if send(
                    &writer,
                    &Response::ProtocolError {
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Ping => send(
                &writer,
                &Response::Pong {
                    version: PROTO_VERSION,
                    workers: shared.service.workers() as u32,
                    generation: shared.service.target().calibration_generation(),
                },
            )
            .is_ok(),
            Request::Submit(submit) => {
                handle_submit(&writer, shared, client, submit, &mut forwarders)
            }
        };
        // Reap finished forwarders as we go so a long-lived connection
        // does not accumulate dead join handles.
        let mut live = Vec::with_capacity(forwarders.len());
        for handle in forwarders.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        forwarders = live;
        if !keep_going {
            break;
        }
    }
    // Every accepted job still delivers its terminal response (or
    // discovers the peer is gone) before the conversation closes — this
    // is what makes server shutdown graceful from the client's side.
    for handle in forwarders {
        let _ = handle.join();
    }
}

/// Admit one submission; returns false when the connection should close
/// (write failure — any accepted job keeps running in the pool). On
/// acceptance, spawns a forwarder thread that streams the job's statuses
/// so the caller can immediately read the next request.
fn handle_submit(
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Shared,
    client: u64,
    submit: SubmitRequest,
    forwarders: &mut Vec<std::thread::JoinHandle<()>>,
) -> bool {
    let received = Instant::now();
    if submit.fault.is_some() && !shared.chaos {
        return send(
            writer,
            &Response::Rejected {
                message: "fault injection is disabled on this server".to_owned(),
            },
        )
        .is_ok();
    }
    let circuit = match from_qasm(&submit.qasm) {
        Ok(circuit) => circuit,
        Err(e) => {
            return send(
                writer,
                &Response::Rejected {
                    message: format!("qasm parse error: {e}"),
                },
            )
            .is_ok()
        }
    };
    let options = submit.options.to_options(submit.seed);
    let label = submit.label.clone();
    let mut job = TranspileJob::new(submit.label, circuit, options)
        .with_seed(submit.seed)
        .with_lane(submit.lane);
    if let Some(fault) = submit.fault {
        job = job.with_fault(fault);
    }
    if let Some(ms) = submit.deadline_ms {
        job = job.with_deadline(received + Duration::from_millis(ms));
    }
    let pending = shared.service.pending();
    let handle = match shared.service.submit_from(client, job) {
        Ok(handle) => handle,
        Err(ServeError::Busy { lane, capacity }) => {
            return send(
                writer,
                &Response::Busy {
                    lane,
                    capacity: capacity as u32,
                },
            )
            .is_ok()
        }
        Err(ServeError::ShutDown) => {
            return send(
                writer,
                &Response::Rejected {
                    message: "server is shutting down".to_owned(),
                },
            )
            .is_ok()
        }
    };
    if send(
        writer,
        &Response::Queued {
            job_id: handle.job_id,
            label,
            lane: submit.lane,
            pending: pending as u32,
        },
    )
    .is_err()
    {
        // Client gone; drop the handle — the pool still runs the job and
        // discards the undeliverable result.
        return false;
    }
    let forward_writer = Arc::clone(writer);
    let thread = std::thread::Builder::new()
        .name(format!("mirage-net-fwd-{client}-{}", handle.job_id))
        .spawn(move || forward_events(&handle, &forward_writer))
        .expect("failed to spawn forwarder thread");
    forwarders.push(thread);
    true
}

/// Stream one job's events to the connection's shared writer; stops
/// early (discarding the rest) only if the peer is unwritable.
fn forward_events(handle: &crate::JobHandle, writer: &Mutex<TcpStream>) {
    let label = handle.label.clone();
    loop {
        match handle.recv_event() {
            JobEvent::Started {
                job_id,
                worker,
                generation,
                ..
            } => {
                if send(
                    writer,
                    &Response::Running {
                        job_id,
                        worker: worker as u32,
                        generation,
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            JobEvent::Finished(result) => {
                let response = match result.outcome {
                    Ok(out) => Response::Done(JobDone {
                        job_id: result.job_id,
                        label,
                        qasm: to_qasm(&out.circuit),
                        fingerprint: out.circuit.fingerprint(),
                        generation: result.generation,
                        elapsed_us: u64::try_from(result.elapsed.as_micros()).unwrap_or(u64::MAX),
                        metrics: WireMetrics::from_metrics(&out.metrics),
                    }),
                    Err(error) => Response::Failed {
                        job_id: result.job_id,
                        label,
                        kind: match error {
                            JobError::Transpile(_) => FailureKind::Transpile,
                            JobError::DeadlineExceeded { .. } => FailureKind::DeadlineExceeded,
                            JobError::WorkerPanicked { .. } => FailureKind::WorkerPanicked,
                        },
                        message: error.to_string(),
                    },
                };
                let _ = send(writer, &response);
                return;
            }
        }
    }
}
