//! File-watching calibration refresher.
//!
//! A serving daemon outlives its boot-time calibration: device error
//! rates drift, and providers republish calibration data on the order of
//! hours. [`CalibrationRefresher`] closes that loop with zero
//! dependencies — a polling thread stats the watched file and, when its
//! (mtime, length) signature changes, parses it with
//! [`Calibration::from_text`] and hot-swaps it into the shared
//! [`Target`] via [`Target::swap_calibration`]. Jobs already running
//! keep their snapshot (the PR 4 epoch machinery); jobs dequeued after
//! the swap see the new generation, and every served result reports
//! which generation it ran under.
//!
//! Failure policy: a missing, unreadable, or unparseable file is
//! **counted and skipped**, never fatal — the server keeps serving under
//! the last good calibration, and the error counter gives operators a
//! signal. The boot signature is recorded *without* applying the file,
//! so a refresher pointed at the file the target was built from does not
//! spuriously bump the generation at startup.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use mirage_core::{Calibration, Target};

/// The change-detection signature of the watched file: modification time
/// plus length. Content hashing would be stronger but needs a full read
/// per poll; (mtime, len) is the classic cheap tripwire and every writer
/// that publishes calibration updates bumps at least one of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileSignature {
    mtime: Option<SystemTime>,
    len: u64,
}

fn signature_of(path: &std::path::Path) -> Option<FileSignature> {
    let meta = std::fs::metadata(path).ok()?;
    Some(FileSignature {
        mtime: meta.modified().ok(),
        len: meta.len(),
    })
}

/// Shared refresher state, observable while the poll thread runs.
#[derive(Debug, Default)]
struct RefreshStats {
    /// Successful hot-swaps applied.
    swaps: AtomicU64,
    /// Read/parse/validation failures skipped.
    errors: AtomicU64,
    /// Poll passes completed (for tests to know the thread is live).
    polls: AtomicU64,
}

/// A background thread that polls one calibration file and hot-swaps the
/// shared [`Target`] when the file changes. Stop explicitly with
/// [`stop`](CalibrationRefresher::stop) or implicitly on drop.
#[derive(Debug)]
pub struct CalibrationRefresher {
    stop: Arc<AtomicBool>,
    stats: Arc<RefreshStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CalibrationRefresher {
    /// Start watching `path`, polling every `interval`.
    ///
    /// The file's current signature is recorded as the baseline without
    /// being applied — the target's boot calibration stands until the
    /// file actually changes.
    pub fn spawn(target: Arc<Target>, path: PathBuf, interval: Duration) -> CalibrationRefresher {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RefreshStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("mirage-cal-refresh".to_owned())
            .spawn(move || {
                poll_loop(&target, &path, interval, &thread_stop, &thread_stats);
            })
            .expect("failed to spawn calibration refresher thread");
        CalibrationRefresher {
            stop,
            stats,
            handle: Some(handle),
        }
    }

    /// Successful hot-swaps applied so far.
    pub fn swaps(&self) -> u64 {
        self.stats.swaps.load(Ordering::SeqCst)
    }

    /// Read/parse failures skipped so far.
    pub fn errors(&self) -> u64 {
        self.stats.errors.load(Ordering::SeqCst)
    }

    /// Poll passes completed so far.
    pub fn polls(&self) -> u64 {
        self.stats.polls.load(Ordering::SeqCst)
    }

    /// Signal the poll thread and join it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.join().expect("calibration refresher panicked");
        }
    }
}

impl Drop for CalibrationRefresher {
    fn drop(&mut self) {
        self.stop();
    }
}

fn poll_loop(
    target: &Target,
    path: &std::path::Path,
    interval: Duration,
    stop: &AtomicBool,
    stats: &RefreshStats,
) {
    let mut last = signature_of(path);
    // Sleep in short slices so stop() returns promptly even with a long
    // poll interval.
    let slice = interval
        .min(Duration::from_millis(20))
        .max(Duration::from_millis(1));
    let mut since_poll = interval; // poll immediately on the first pass
    while !stop.load(Ordering::SeqCst) {
        if since_poll >= interval {
            since_poll = Duration::ZERO;
            let current = signature_of(path);
            if current != last && current.is_some() {
                match apply(target, path) {
                    Ok(()) => {
                        stats.swaps.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(()) => {
                        stats.errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // Either way, don't re-attempt an unchanged (possibly
                // bad) file every poll; wait for the next edit.
                last = current;
            }
            stats.polls.fetch_add(1, Ordering::SeqCst);
        }
        std::thread::sleep(slice);
        since_poll += slice;
    }
}

fn apply(target: &Target, path: &std::path::Path) -> Result<(), ()> {
    let text = std::fs::read_to_string(path).map_err(|_| ())?;
    let calibration = Calibration::from_text(&text).map_err(|_| ())?;
    target
        .swap_calibration(Arc::new(calibration))
        .map_err(|_| ())?;
    Ok(())
}
