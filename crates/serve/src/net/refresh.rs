//! File-watching calibration refresher.
//!
//! A serving daemon outlives its boot-time calibration: device error
//! rates drift, and providers republish calibration data on the order of
//! hours. [`CalibrationRefresher`] closes that loop with zero
//! dependencies — a polling thread stats the watched file and, when its
//! (mtime, length) signature changes, parses it with
//! [`Calibration::from_text`] and hot-swaps it into the shared
//! [`Target`] via [`Target::swap_calibration`]. Jobs already running
//! keep their snapshot (the PR 4 epoch machinery); jobs dequeued after
//! the swap see the new generation, and every served result reports
//! which generation it ran under.
//!
//! Failure policy: a missing, unreadable, or unparseable file is
//! **counted and skipped**, never fatal — the server keeps serving under
//! the last good calibration, and two counters split the signal for
//! operators: [`io_errors`](CalibrationRefresher::io_errors) (the file
//! could not be read) vs
//! [`corrupt_skipped`](CalibrationRefresher::corrupt_skipped) (it read
//! but failed parse/validation). A failed file is *retried* — a torn
//! write heals on the writer's next flush — but consecutive failures
//! back the poll interval off exponentially (capped at 16× the base
//! interval, with seeded jitter so a fleet of refreshers pointed at the
//! same flaky store decorrelates); one success snaps it back. The boot
//! signature is recorded *without* applying the file, so a refresher
//! pointed at the file the target was built from does not spuriously
//! bump the generation at startup.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use mirage_core::{Calibration, Target};
use mirage_math::Rng;

/// The change-detection signature of the watched file: modification time
/// plus length. Content hashing would be stronger but needs a full read
/// per poll; (mtime, len) is the classic cheap tripwire and every writer
/// that publishes calibration updates bumps at least one of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileSignature {
    mtime: Option<SystemTime>,
    len: u64,
}

fn signature_of(path: &std::path::Path) -> Option<FileSignature> {
    let meta = std::fs::metadata(path).ok()?;
    Some(FileSignature {
        mtime: meta.modified().ok(),
        len: meta.len(),
    })
}

/// Shared refresher state, observable while the poll thread runs.
#[derive(Debug, Default)]
struct RefreshStats {
    /// Successful hot-swaps applied.
    swaps: AtomicU64,
    /// Changed files that could not be read (I/O failures).
    io_errors: AtomicU64,
    /// Changed files that read but failed parse/validation.
    corrupt_skipped: AtomicU64,
    /// Poll passes completed (for tests to know the thread is live).
    polls: AtomicU64,
}

/// Which way an [`apply`] attempt failed (drives the matching counter).
enum ApplyError {
    /// The file could not be read.
    Io,
    /// The file read but failed parse or calibration validation.
    Corrupt,
}

/// A background thread that polls one calibration file and hot-swaps the
/// shared [`Target`] when the file changes. Stop explicitly with
/// [`stop`](CalibrationRefresher::stop) or implicitly on drop.
#[derive(Debug)]
pub struct CalibrationRefresher {
    stop: Arc<AtomicBool>,
    stats: Arc<RefreshStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CalibrationRefresher {
    /// Start watching `path`, polling every `interval`.
    ///
    /// The file's current signature is recorded as the baseline without
    /// being applied — the target's boot calibration stands until the
    /// file actually changes.
    pub fn spawn(target: Arc<Target>, path: PathBuf, interval: Duration) -> CalibrationRefresher {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RefreshStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("mirage-cal-refresh".to_owned())
            .spawn(move || {
                poll_loop(&target, &path, interval, &thread_stop, &thread_stats);
            })
            .expect("failed to spawn calibration refresher thread");
        CalibrationRefresher {
            stop,
            stats,
            handle: Some(handle),
        }
    }

    /// Successful hot-swaps applied so far.
    pub fn swaps(&self) -> u64 {
        self.stats.swaps.load(Ordering::SeqCst)
    }

    /// Total failures skipped so far (I/O + corrupt).
    pub fn errors(&self) -> u64 {
        self.io_errors() + self.corrupt_skipped()
    }

    /// Changed files that could not be read so far.
    pub fn io_errors(&self) -> u64 {
        self.stats.io_errors.load(Ordering::SeqCst)
    }

    /// Changed files skipped as corrupt (parse/validation failure) so far.
    pub fn corrupt_skipped(&self) -> u64 {
        self.stats.corrupt_skipped.load(Ordering::SeqCst)
    }

    /// Poll passes completed so far.
    pub fn polls(&self) -> u64 {
        self.stats.polls.load(Ordering::SeqCst)
    }

    /// One-line operator summary of the counters, as shown by the CLI's
    /// `serve` status output.
    pub fn status_line(&self) -> String {
        format!(
            "{} hot swap(s), {} corrupt skipped, {} io error(s), {} poll(s)",
            self.swaps(),
            self.corrupt_skipped(),
            self.io_errors(),
            self.polls()
        )
    }

    /// Signal the poll thread and join it. Idempotent. A panicked poll
    /// thread (which would be a bug, not an environment failure) is
    /// absorbed: the counters stay readable and the swap simply stops.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CalibrationRefresher {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Poll interval after `failures` consecutive apply failures: doubles per
/// failure up to 16×, scaled by a jitter factor in `[1.0, 1.25)` drawn
/// from the refresher's seeded stream.
fn backed_off(interval: Duration, failures: u32, rng: &mut Rng) -> Duration {
    let scaled = interval.saturating_mul(2u32.saturating_pow(failures.min(4)));
    scaled.mul_f64(1.0 + rng.uniform() * 0.25)
}

fn poll_loop(
    target: &Target,
    path: &std::path::Path,
    interval: Duration,
    stop: &AtomicBool,
    stats: &RefreshStats,
) {
    let mut last = signature_of(path);
    // Jitter seeded from the watched path: deterministic per refresher,
    // decorrelated across a fleet watching different files.
    let mut rng = Rng::new(super::frame::fnv1a(path.to_string_lossy().as_bytes()));
    let mut failures: u32 = 0;
    let mut current_interval = interval;
    // Sleep in short slices so stop() returns promptly even with a long
    // poll interval.
    let slice = interval
        .min(Duration::from_millis(20))
        .max(Duration::from_millis(1));
    let mut since_poll = interval; // poll immediately on the first pass
    while !stop.load(Ordering::SeqCst) {
        if since_poll >= current_interval {
            since_poll = Duration::ZERO;
            let current = signature_of(path);
            if current != last && current.is_some() {
                match apply(target, path) {
                    Ok(()) => {
                        stats.swaps.fetch_add(1, Ordering::SeqCst);
                        failures = 0;
                        // Only a *successful* apply advances the baseline:
                        // a failed file is retried (under backoff) so a
                        // torn write heals once the writer finishes.
                        last = current;
                    }
                    Err(ApplyError::Io) => {
                        stats.io_errors.fetch_add(1, Ordering::SeqCst);
                        failures = failures.saturating_add(1);
                    }
                    Err(ApplyError::Corrupt) => {
                        stats.corrupt_skipped.fetch_add(1, Ordering::SeqCst);
                        failures = failures.saturating_add(1);
                    }
                }
            }
            stats.polls.fetch_add(1, Ordering::SeqCst);
            current_interval = if failures == 0 {
                interval
            } else {
                backed_off(interval, failures, &mut rng)
            };
        }
        std::thread::sleep(slice);
        since_poll += slice;
    }
}

fn apply(target: &Target, path: &std::path::Path) -> Result<(), ApplyError> {
    let text = std::fs::read_to_string(path).map_err(|_| ApplyError::Io)?;
    let calibration = Calibration::from_text(&text).map_err(|_| ApplyError::Corrupt)?;
    target
        .swap_calibration(Arc::new(calibration))
        .map_err(|_| ApplyError::Corrupt)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        let mut rng = Rng::new(1);
        for failures in 0..8u32 {
            let cap_factor = 2u32.pow(failures.min(4));
            let delay = backed_off(base, failures, &mut rng);
            assert!(delay >= base * cap_factor, "floor at {failures} failures");
            assert!(
                delay < base * cap_factor + base * cap_factor / 4 + Duration::from_micros(1),
                "ceiling at {failures} failures"
            );
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_path_seed() {
        let seed = crate::net::frame::fnv1a(b"/tmp/cal.txt");
        let run = || {
            let mut rng = Rng::new(seed);
            (0..5)
                .map(|f| backed_off(Duration::from_millis(3), f, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
