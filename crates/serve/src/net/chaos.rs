//! Deterministic fault injection for the framed transport.
//!
//! [`ChaosTransport`] wraps any `Read + Write` byte stream and mangles
//! traffic **at frame granularity** on a seeded, reproducible schedule:
//! each complete frame passing through (either direction) draws one
//! decision from a [`ChaosPlan`] — deliver, drop, truncate, corrupt,
//! duplicate, or delay. The same seed always produces the same fault
//! schedule, so a failing chaos run can be replayed bit-for-bit with
//! `MIRAGE_CHAOS_SEED=<n>` instead of chased.
//!
//! Faults are designed so the *peer* always detects them promptly and
//! typed-ly, never by deadlock:
//!
//! * **Drop / Truncate** also mark the transport broken — the local side's
//!   next read returns EOF and its next write fails — because a silently
//!   swallowed request would otherwise leave the client awaiting a
//!   response the server never knew to send. This models a connection
//!   reset at the moment of loss, which is how real frame loss on TCP
//!   surfaces.
//! * **Corrupt** flips one bit at a frame offset ≥ 6 — in the checksum or
//!   payload region, never in the magic or length fields — so the
//!   receiver reads a complete frame and fails its checksum/decode
//!   (typed), rather than desyncing on a bogus length and blocking for
//!   bytes that will never arrive.
//! * **Duplicate** delivers the same frame twice: the retry-idempotency
//!   probe. Protocol v2's label echo lets a client detect the phantom
//!   conversation this creates.
//! * **Delay** sleeps a deterministic, bounded duration, then delivers.
//!
//! A plan is shared (`Clone` is shallow) so reconnections — a
//! [`ChaosConnector`](super::client::ChaosConnector) wrapping every fresh
//! transport — *continue* the schedule rather than restart it; otherwise a
//! seed whose first decision is Drop would kill every reconnect forever.
//! With [`ChaosConfig::max_faults`] set, the plan delivers everything
//! cleanly once the budget is spent, guaranteeing a retrying client
//! converges.
//!
//! Bytes that do not start with the frame magic (e.g. raw-garbage test
//! traffic) pass through untouched: chaos targets the protocol, not the
//! test harness.

use super::frame::{FRAME_MAGIC, HEADER_LEN};
use mirage_math::Rng;
use std::io::{ErrorKind, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning for a [`ChaosPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the fault schedule — the only nondeterminism input.
    pub seed: u64,
    /// Probability in `[0, 1]` that a frame draws a fault.
    pub fault_rate: f64,
    /// Upper bound for injected delays (drawn uniformly below this).
    pub max_delay: Duration,
    /// Total faults to inject before the plan goes clean; `None` = never.
    /// A finite budget guarantees a retrying client eventually converges.
    pub max_faults: Option<u64>,
}

impl ChaosConfig {
    /// A plan seeded with `seed`: 25% fault rate, ≤2 ms delays, and a
    /// budget of 8 faults so runs always converge.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            fault_rate: 0.25,
            max_delay: Duration::from_millis(2),
            max_faults: Some(8),
        }
    }

    /// Override the per-frame fault probability (builder style).
    #[must_use]
    pub fn with_fault_rate(mut self, rate: f64) -> ChaosConfig {
        self.fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Override the fault budget (builder style); `None` never goes clean.
    #[must_use]
    pub fn with_max_faults(mut self, max: Option<u64>) -> ChaosConfig {
        self.max_faults = max;
        self
    }

    /// Override the delay bound (builder style).
    #[must_use]
    pub fn with_max_delay(mut self, max: Duration) -> ChaosConfig {
        self.max_delay = max;
        self
    }
}

/// Counters of what a plan has actually done, snapshot via
/// [`ChaosPlan::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames that passed through the decision point (both directions).
    pub frames: u64,
    /// Frames silently discarded (transport then breaks).
    pub drops: u64,
    /// Frames cut short mid-flight (transport then breaks).
    pub truncates: u64,
    /// Frames with one checksum/payload bit flipped.
    pub corrupts: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
    /// Frames delivered after a deterministic sleep.
    pub delays: u64,
}

impl ChaosStats {
    /// Total faults injected so far.
    pub fn faults(&self) -> u64 {
        self.drops + self.truncates + self.corrupts + self.duplicates + self.delays
    }
}

/// One per-frame decision, with every random parameter already drawn so
/// application is pure.
#[derive(Debug, Clone, PartialEq)]
enum ChaosEvent {
    Deliver,
    Drop,
    Truncate { keep: usize },
    Corrupt { offset: usize, bit: u8 },
    Duplicate,
    Delay { by: Duration },
}

struct PlanState {
    rng: Rng,
    config: ChaosConfig,
    stats: ChaosStats,
}

/// The shared, seeded fault schedule. Cloning is shallow: every transport
/// (including ones created by reconnecting) holding a clone draws from the
/// *same* sequence, which is what makes a chaos run a single reproducible
/// schedule rather than per-connection noise.
#[derive(Clone)]
pub struct ChaosPlan {
    state: Arc<Mutex<PlanState>>,
}

impl std::fmt::Debug for ChaosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("chaos plan poisoned");
        f.debug_struct("ChaosPlan")
            .field("seed", &state.config.seed)
            .field("stats", &state.stats)
            .finish()
    }
}

impl ChaosPlan {
    /// A fresh schedule from `config`.
    pub fn new(config: ChaosConfig) -> ChaosPlan {
        ChaosPlan {
            state: Arc::new(Mutex::new(PlanState {
                rng: Rng::new(config.seed ^ 0xC4A0_5CA0_5EED),
                config,
                stats: ChaosStats::default(),
            })),
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().expect("chaos plan poisoned").stats
    }

    /// Decide the fate of one `frame_len`-byte frame, drawing all random
    /// parameters under one lock so concurrent transports still read one
    /// global deterministic sequence.
    fn next_event(&self, frame_len: usize) -> ChaosEvent {
        let mut state = self.state.lock().expect("chaos plan poisoned");
        state.stats.frames += 1;
        let budget_spent = state
            .config
            .max_faults
            .is_some_and(|max| state.stats.faults() >= max);
        if budget_spent || state.rng.uniform() >= state.config.fault_rate {
            return ChaosEvent::Deliver;
        }
        match state.rng.below(5) {
            0 => {
                state.stats.drops += 1;
                ChaosEvent::Drop
            }
            1 => {
                state.stats.truncates += 1;
                // Keep at least one byte, never the whole frame.
                let keep = 1 + state.rng.below(frame_len.max(2) - 1);
                ChaosEvent::Truncate { keep }
            }
            2 => {
                state.stats.corrupts += 1;
                // Only the checksum/payload region (offset ≥ 6): flipping
                // magic or length bytes could desync or deadlock the
                // receiver instead of producing a typed checksum error.
                let offset = 6 + state.rng.below(frame_len.saturating_sub(6).max(1));
                let bit = state.rng.below(8) as u8;
                ChaosEvent::Corrupt {
                    offset: offset.min(frame_len - 1),
                    bit,
                }
            }
            3 => {
                state.stats.duplicates += 1;
                ChaosEvent::Duplicate
            }
            _ => {
                state.stats.delays += 1;
                let micros = state.config.max_delay.as_micros().max(1) as u64;
                let by = Duration::from_micros(state.rng.below(micros as usize) as u64);
                ChaosEvent::Delay { by }
            }
        }
    }
}

/// A fault-injecting proxy around any byte transport. See the
/// [module docs](self) for the fault model.
pub struct ChaosTransport<T> {
    inner: T,
    plan: ChaosPlan,
    /// Outbound bytes not yet assembled into a complete frame.
    wbuf: Vec<u8>,
    /// Inbound bytes already mangled and ready to serve to the caller.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Set by Drop/Truncate: reads return EOF (after any staged bytes),
    /// writes fail with `BrokenPipe`.
    broken: bool,
}

impl<T: Read + Write> ChaosTransport<T> {
    /// Wrap `inner`, drawing fault decisions from `plan`.
    pub fn new(inner: T, plan: ChaosPlan) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            plan,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            rpos: 0,
            broken: false,
        }
    }

    /// The shared plan (for stats).
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Read exactly one frame (or a raw non-frame chunk) from the inner
    /// transport. `Ok(None)` is clean EOF before any byte.
    fn read_raw_frame(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        while got < header.len() {
            match self.inner.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                // Partial header then EOF: hand the fragment through
                // untouched; the frame layer reports it as truncated.
                Ok(0) => return Ok(Some(header[..got].to_vec())),
                Ok(n) => got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if header[..2] != FRAME_MAGIC {
            // Not framed traffic — pass through without chaos.
            return Ok(Some(header.to_vec()));
        }
        let len = u32::from_be_bytes(header[2..6].try_into().expect("4 bytes")) as usize;
        let mut body = vec![0u8; len];
        let mut got = 0;
        while got < len {
            match self.inner.read(&mut body[got..]) {
                Ok(0) => break, // truncated upstream; deliver what exists
                Ok(n) => got += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        body.truncate(got);
        let mut frame = header.to_vec();
        frame.extend_from_slice(&body);
        Ok(Some(frame))
    }

    fn apply_inbound(&mut self, mut frame: Vec<u8>) {
        if frame.len() < HEADER_LEN || frame[..2] != FRAME_MAGIC {
            self.rbuf = frame;
            self.rpos = 0;
            return;
        }
        match self.plan.next_event(frame.len()) {
            ChaosEvent::Deliver => {}
            ChaosEvent::Drop => {
                self.broken = true;
                frame.clear();
            }
            ChaosEvent::Truncate { keep } => {
                self.broken = true;
                frame.truncate(keep.min(frame.len()));
            }
            ChaosEvent::Corrupt { offset, bit } => {
                if let Some(byte) = frame.get_mut(offset) {
                    *byte ^= 1 << bit;
                }
            }
            ChaosEvent::Duplicate => {
                let copy = frame.clone();
                frame.extend_from_slice(&copy);
            }
            ChaosEvent::Delay { by } => std::thread::sleep(by),
        }
        self.rbuf = frame;
        self.rpos = 0;
    }

    /// Process one complete outbound frame through the plan, writing the
    /// (possibly mangled) bytes to the inner transport.
    fn apply_outbound(&mut self, mut frame: Vec<u8>) -> std::io::Result<()> {
        match self.plan.next_event(frame.len()) {
            ChaosEvent::Deliver => {}
            ChaosEvent::Drop => {
                self.broken = true;
                return Ok(());
            }
            ChaosEvent::Truncate { keep } => {
                frame.truncate(keep.min(frame.len()));
                self.inner.write_all(&frame)?;
                self.inner.flush()?;
                self.broken = true;
                return Ok(());
            }
            ChaosEvent::Corrupt { offset, bit } => {
                if let Some(byte) = frame.get_mut(offset) {
                    *byte ^= 1 << bit;
                }
            }
            ChaosEvent::Duplicate => {
                let copy = frame.clone();
                frame.extend_from_slice(&copy);
            }
            ChaosEvent::Delay { by } => std::thread::sleep(by),
        }
        self.inner.write_all(&frame)?;
        Ok(())
    }

    /// Drain the write buffer: forward complete frames through the plan,
    /// pass non-frame bytes straight through, keep incomplete tails.
    fn pump_writes(&mut self) -> std::io::Result<()> {
        loop {
            if self.wbuf.len() < 2 {
                return Ok(());
            }
            if self.wbuf[..2] != FRAME_MAGIC {
                // Unframed traffic: flush it all untouched.
                let raw = std::mem::take(&mut self.wbuf);
                self.inner.write_all(&raw)?;
                return Ok(());
            }
            if self.wbuf.len() < HEADER_LEN {
                return Ok(());
            }
            let len = u32::from_be_bytes(self.wbuf[2..6].try_into().expect("4 bytes")) as usize;
            let total = HEADER_LEN + len;
            if self.wbuf.len() < total {
                return Ok(());
            }
            let rest = self.wbuf.split_off(total);
            let frame = std::mem::replace(&mut self.wbuf, rest);
            self.apply_outbound(frame)?;
            if self.broken {
                return Ok(());
            }
        }
    }
}

impl<T: Read + Write> Read for ChaosTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.rpos < self.rbuf.len() {
                let n = (self.rbuf.len() - self.rpos).min(buf.len());
                buf[..n].copy_from_slice(&self.rbuf[self.rpos..self.rpos + n]);
                self.rpos += n;
                return Ok(n);
            }
            if self.broken {
                return Ok(0); // EOF: the peer sees a clean connection loss
            }
            match self.read_raw_frame()? {
                None => return Ok(0),
                Some(frame) => self.apply_inbound(frame),
            }
            // A Drop leaves rbuf empty with broken set; loop re-checks.
        }
    }
}

impl<T: Read + Write> Write for ChaosTransport<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.broken {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos transport broken by an injected fault",
            ));
        }
        self.wbuf.extend_from_slice(buf);
        self.pump_writes()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.broken {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos transport broken by an injected fault",
            ));
        }
        self.pump_writes()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::super::frame;
    use super::*;
    use std::collections::VecDeque;

    /// An in-memory loopback: everything written becomes readable.
    #[derive(Default)]
    struct Loopback {
        data: VecDeque<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.data.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.data.pop_front().expect("len checked");
            }
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.data.extend(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn clean_plan() -> ChaosPlan {
        ChaosPlan::new(ChaosConfig::new(1).with_fault_rate(0.0))
    }

    #[test]
    fn clean_plan_is_a_transparent_proxy() {
        let mut t = ChaosTransport::new(Loopback::default(), clean_plan());
        for payload in [b"hello".as_slice(), b"", b"world!"] {
            frame::write_frame(&mut t, payload).unwrap();
            let back = frame::read_frame(&mut t, frame::DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(back, payload);
        }
        assert_eq!(t.plan().stats().faults(), 0);
        assert_eq!(t.plan().stats().frames, 6, "3 writes + 3 reads");
    }

    #[test]
    fn unframed_bytes_pass_through_untouched() {
        let mut t = ChaosTransport::new(
            Loopback::default(),
            ChaosPlan::new(ChaosConfig::new(2).with_fault_rate(1.0)),
        );
        t.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        t.flush().unwrap();
        let mut back = vec![0u8; 18];
        t.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(t.plan().stats().frames, 0, "no frames seen, no chaos");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = ChaosPlan::new(ChaosConfig::new(seed).with_max_faults(None));
            let events: Vec<ChaosEvent> = (0..64).map(|_| plan.next_event(100)).collect();
            events
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn fault_budget_caps_injections_then_goes_clean() {
        let plan = ChaosPlan::new(
            ChaosConfig::new(3)
                .with_fault_rate(1.0)
                .with_max_faults(Some(4)),
        );
        for _ in 0..100 {
            plan.next_event(50);
        }
        assert_eq!(plan.stats().faults(), 4, "budget is a hard cap");
        assert_eq!(plan.stats().frames, 100);
    }

    #[test]
    fn dropped_frame_breaks_the_transport_instead_of_hanging() {
        // fault_rate 1.0 with only Drop reachable: force by retrying seeds
        // until the first event is a Drop.
        let mut seed = 0;
        let plan = loop {
            let plan = ChaosPlan::new(ChaosConfig::new(seed).with_fault_rate(1.0));
            if plan.next_event(20) == ChaosEvent::Drop {
                break ChaosPlan::new(ChaosConfig::new(seed).with_fault_rate(1.0));
            }
            seed += 1;
        };
        let mut t = ChaosTransport::new(Loopback::default(), plan);
        // The frame is swallowed and the transport breaks immediately:
        // the trailing flush already fails fast rather than pretending
        // the bytes went out, reads see EOF (typed Closed at the frame
        // layer), and later writes fail fast too.
        match frame::write_frame(&mut t, b"lost") {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe),
            Ok(()) => panic!("expected a broken-pipe write"),
        }
        match frame::read_frame(&mut t, frame::DEFAULT_MAX_PAYLOAD) {
            Err(frame::FrameError::Closed) => {}
            other => panic!("expected Closed after a drop, got {other:?}"),
        }
        assert!(t.write_all(b"MF").is_err(), "writes fail after the break");
    }

    /// A fresh rate-1.0 plan with a one-fault budget whose FIRST event
    /// matches `want` (the fault kind is seed-determined, so probe seeds
    /// until one fits; the fault lands on the first write, and the spent
    /// budget leaves every later frame clean).
    fn plan_opening_with(want: impl Fn(&ChaosEvent) -> bool) -> ChaosPlan {
        let mut seed = 0;
        loop {
            let config = ChaosConfig::new(seed)
                .with_fault_rate(1.0)
                .with_max_faults(Some(1));
            let probe = ChaosPlan::new(config.clone());
            if want(&probe.next_event(32)) {
                return ChaosPlan::new(config);
            }
            seed += 1;
        }
    }

    #[test]
    fn corrupted_frame_fails_its_checksum_typed() {
        let plan = plan_opening_with(|e| matches!(e, ChaosEvent::Corrupt { .. }));
        let mut t = ChaosTransport::new(Loopback::default(), plan);
        // The single budgeted fault corrupts this frame on the way out;
        // the read side (now clean) sees a complete frame whose checksum
        // no longer matches — a typed error, not a desync.
        frame::write_frame(&mut t, b"precious payload").unwrap();
        match frame::read_frame(&mut t, frame::DEFAULT_MAX_PAYLOAD) {
            Err(frame::FrameError::ChecksumMismatch { .. }) => {}
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_frame_is_readable_twice() {
        let plan = plan_opening_with(|e| *e == ChaosEvent::Duplicate);
        let mut t = ChaosTransport::new(Loopback::default(), plan);
        // The write is duplicated on the way out; with the budget spent,
        // both staged copies then read back cleanly.
        frame::write_frame(&mut t, b"echo").unwrap();
        let first = frame::read_frame(&mut t, frame::DEFAULT_MAX_PAYLOAD).unwrap();
        let second = frame::read_frame(&mut t, frame::DEFAULT_MAX_PAYLOAD);
        assert_eq!(first, b"echo");
        assert_eq!(second.unwrap(), b"echo", "the duplicate arrives intact");
    }
}
