//! The job queue: a two-lane priority MPSC queue with per-client
//! fair-share scheduling, close/drain semantics, and bounded per-client
//! admission control, built on `Mutex` + `Condvar` (no external
//! dependencies).
//!
//! Producers ([`TranspileService::submit`](crate::TranspileService::submit))
//! push into one of two [`Lane`]s from any thread, tagged with a client
//! id; each worker pops under the lock, so every job is delivered to
//! exactly one worker. Pops always drain [`Lane::Interactive`] before
//! touching [`Lane::Batch`] — the express lane a latency-sensitive
//! request rides past a deep batch backlog. *Within* a lane, clients are
//! served weighted round-robin: each active client contributes up to its
//! weight (default 1) of consecutive jobs per turn, so one client
//! flooding a lane cannot starve another client's jobs queued behind it.
//! Closing the queue wakes every blocked worker; pops drain the
//! remaining jobs (both lanes, still interactive-first and fair-share)
//! and only then report the end of the stream — the graceful-shutdown
//! contract: **every job accepted before close is processed**.
//!
//! A queue built with [`JobQueue::bounded`] enforces a **per-client,
//! per-lane** capacity at push time: a client whose lane budget is full
//! gets [`PushError::Full`] *instead of blocking*, while other clients'
//! budgets are untouched — the admission-control mode a multi-tenant
//! network front needs: a flooding client bounces off its own bound and
//! everyone else keeps draining.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Which priority lane a job rides.
///
/// The queue is strict-priority: a popper never takes a `Batch` item while
/// an `Interactive` item is waiting. Starvation of the batch lane is
/// bounded by the interactive arrival rate — acceptable here because the
/// interactive lane is reserved for small latency-sensitive requests
/// (admission control caps how many each client can pile up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive requests: always dequeued first.
    Interactive,
    /// Throughput traffic: dequeued when the interactive lane is empty.
    /// The default for [`TranspileJob`](crate::TranspileJob)s.
    Batch,
}

impl Lane {
    /// Both lanes, in dequeue-priority order.
    pub const ALL: [Lane; 2] = [Lane::Interactive, Lane::Batch];

    /// Stable index of the lane (0 = interactive, 1 = batch) — also its
    /// wire encoding in `net::proto`.
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }

    /// The lane for a wire index; `None` for an unknown index.
    pub fn from_index(index: u8) -> Option<Lane> {
        match index {
            0 => Some(Lane::Interactive),
            1 => Some(Lane::Batch),
            _ => None,
        }
    }

    /// Human-readable lane name (`interactive` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a push was refused. The item comes back so the caller can report
/// or retry without cloning every job up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The pushing client's budget in the target lane is at capacity
    /// (bounded queues only). Admission control: the caller should
    /// surface backpressure, not block — and only *this* client is over
    /// budget, other clients' pushes still succeed.
    Full(T),
    /// The queue has been closed; no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A close-aware two-lane priority MPSC queue with per-client weighted
/// round-robin within each lane. `T` is the queued work item.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    /// Per-client, per-lane capacity; `None` = unbounded.
    capacity: Option<usize>,
}

/// One client's FIFO sub-queue within a lane. Entries exist only while
/// non-empty: created on the client's first push, removed when its last
/// item is popped, so the round-robin scan never visits dead clients.
#[derive(Debug)]
struct ClientQueue<T> {
    client: u64,
    items: VecDeque<T>,
}

/// One lane: the active clients in round-robin order plus the scheduler
/// cursor. `cursor` indexes the client currently being served;
/// `served_in_turn` counts how many consecutive items that client has
/// received this turn (compared against its weight).
#[derive(Debug)]
struct LaneState<T> {
    clients: Vec<ClientQueue<T>>,
    cursor: usize,
    served_in_turn: usize,
    len: usize,
}

impl<T> LaneState<T> {
    fn new() -> LaneState<T> {
        LaneState {
            clients: Vec::new(),
            cursor: 0,
            served_in_turn: 0,
            len: 0,
        }
    }

    fn push(&mut self, item: T, client: u64, capacity: Option<usize>) -> Result<(), T> {
        match self.clients.iter_mut().find(|c| c.client == client) {
            Some(entry) => {
                if capacity.is_some_and(|cap| entry.items.len() >= cap) {
                    return Err(item);
                }
                entry.items.push_back(item);
            }
            None => {
                // New clients join at the end of the round-robin order;
                // they get served when the cursor reaches them.
                let mut items = VecDeque::new();
                items.push_back(item);
                self.clients.push(ClientQueue { client, items });
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Pop the next item under weighted round-robin: serve the cursor
    /// client until its weight is exhausted (or its queue empties), then
    /// advance.
    fn pop(&mut self, weights: &HashMap<u64, usize>) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        if self.cursor >= self.clients.len() {
            self.cursor = 0;
            self.served_in_turn = 0;
        }
        let weight = weights
            .get(&self.clients[self.cursor].client)
            .copied()
            .unwrap_or(1)
            .max(1);
        if self.served_in_turn >= weight {
            self.cursor = (self.cursor + 1) % self.clients.len();
            self.served_in_turn = 0;
        }
        let entry = &mut self.clients[self.cursor];
        let item = entry
            .items
            .pop_front()
            .expect("active clients are non-empty");
        self.len -= 1;
        self.served_in_turn += 1;
        if entry.items.is_empty() {
            // The emptied client leaves the rotation; the cursor now
            // points at the next client, which starts a fresh turn.
            self.clients.remove(self.cursor);
            self.served_in_turn = 0;
            if self.cursor >= self.clients.len() {
                self.cursor = 0;
            }
        }
        Some(item)
    }

    fn client_len(&self, client: u64) -> usize {
        self.clients
            .iter()
            .find(|c| c.client == client)
            .map_or(0, |c| c.items.len())
    }
}

#[derive(Debug)]
struct QueueState<T> {
    /// Indexed by [`Lane::index`]: interactive first.
    lanes: [LaneState<T>; 2],
    /// Per-client scheduling weight (items per round-robin turn);
    /// unlisted clients weigh 1.
    weights: HashMap<u64, usize>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open, empty, unbounded queue.
    pub fn new() -> JobQueue<T> {
        JobQueue::with_capacity(None)
    }

    /// An open, empty queue admitting at most `capacity` items *per
    /// client, per lane*; pushes beyond that return [`PushError::Full`].
    /// Per-client (rather than total) bounds keep one flooding client
    /// from locking everyone else out of a lane.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a queue that can never accept work.
    pub fn bounded(capacity: usize) -> JobQueue<T> {
        assert!(capacity > 0, "a bounded queue needs capacity >= 1");
        JobQueue::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: [LaneState::new(), LaneState::new()],
                weights: HashMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The per-client, per-lane admission bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Set a client's round-robin weight: how many consecutive items it
    /// may dequeue per scheduling turn in each lane. The default (and
    /// minimum) is 1; a weight-2 client drains twice as fast as a
    /// weight-1 client while both have work queued.
    pub fn set_weight(&self, client: u64, weight: usize) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.weights.insert(client, weight.max(1));
    }

    /// Enqueue one item into `lane` on behalf of `client`. Never blocks:
    /// a closed queue returns [`PushError::Closed`], a client over its
    /// lane budget gets [`PushError::Full`] — both hand the item back.
    pub fn push(&self, item: T, lane: Lane, client: u64) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if let Err(item) = state.lanes[lane.index()].push(item, client, self.capacity) {
            return Err(PushError::Full(item));
        }
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is open and empty.
    /// The interactive lane always drains before the batch lane; within a
    /// lane, clients are served weighted round-robin and each client's
    /// own items stay FIFO. Returns `None` only when the queue is closed
    /// **and** both lanes are drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            let weights = std::mem::take(&mut state.weights);
            let mut popped = None;
            for lane in 0..state.lanes.len() {
                if let Some(item) = state.lanes[lane].pop(&weights) {
                    popped = Some(item);
                    break;
                }
            }
            state.weights = weights;
            if let Some(item) = popped {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: no further pushes are accepted, every blocked
    /// popper wakes, and remaining items drain normally.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Total jobs waiting across both lanes (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        let state = self.state.lock().expect("queue poisoned");
        state.lanes.iter().map(|l| l.len).sum()
    }

    /// Jobs waiting in one lane (all clients).
    pub fn lane_len(&self, lane: Lane) -> usize {
        self.state.lock().expect("queue poisoned").lanes[lane.index()].len
    }

    /// Jobs one client has waiting in one lane (its budget usage).
    pub fn client_len(&self, lane: Lane, client: u64) -> usize {
        self.state.lock().expect("queue poisoned").lanes[lane.index()].client_len(client)
    }

    /// True when no jobs are waiting in either lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_client() {
        let q = JobQueue::new();
        for i in 0..5 {
            q.push(i, Lane::Batch, 0).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interactive_lane_drains_before_batch() {
        let q = JobQueue::new();
        q.push("b0", Lane::Batch, 0).unwrap();
        q.push("b1", Lane::Batch, 0).unwrap();
        q.push("i0", Lane::Interactive, 0).unwrap();
        q.push("i1", Lane::Interactive, 0).unwrap();
        // The batch items arrived first; the interactive items jump them.
        assert_eq!(q.pop(), Some("i0"));
        // New interactive arrivals keep jumping even mid-drain.
        q.push("i2", Lane::Interactive, 0).unwrap();
        assert_eq!(q.pop(), Some("i1"));
        assert_eq!(q.pop(), Some("i2"));
        assert_eq!(q.pop(), Some("b0"));
        assert_eq!(q.pop(), Some("b1"));
    }

    #[test]
    fn clients_share_a_lane_round_robin() {
        let q = JobQueue::new();
        // Client 1 floods the batch lane, then client 2 queues two jobs
        // behind the flood. Round-robin must interleave them rather than
        // make client 2 wait for the whole flood.
        for i in 0..4 {
            q.push(("flood", i), Lane::Batch, 1).unwrap();
        }
        q.push(("polite", 0), Lane::Batch, 2).unwrap();
        q.push(("polite", 1), Lane::Batch, 2).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).take(6).collect();
        assert_eq!(
            order,
            vec![
                ("flood", 0),
                ("polite", 0),
                ("flood", 1),
                ("polite", 1),
                ("flood", 2),
                ("flood", 3),
            ],
            "lane service must alternate between active clients"
        );
    }

    #[test]
    fn weighted_clients_get_proportional_turns() {
        let q = JobQueue::new();
        q.set_weight(1, 2);
        for i in 0..4 {
            q.push(("heavy", i), Lane::Batch, 1).unwrap();
            q.push(("light", i), Lane::Batch, 2).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).take(8).collect();
        assert_eq!(
            order,
            vec![
                ("heavy", 0),
                ("heavy", 1),
                ("light", 0),
                ("heavy", 2),
                ("heavy", 3),
                ("light", 1),
                ("light", 2),
                ("light", 3),
            ],
            "a weight-2 client takes two consecutive slots per turn"
        );
    }

    #[test]
    fn close_rejects_pushes_but_drains_both_lanes() {
        let q = JobQueue::new();
        q.push(1, Lane::Batch, 0).unwrap();
        q.push(2, Lane::Interactive, 0).unwrap();
        q.close();
        assert_eq!(q.push(3, Lane::Batch, 0), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(2), "interactive first, even while draining");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn bounded_budget_is_per_client_and_per_lane() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), Some(2));
        q.push(0, Lane::Batch, 1).unwrap();
        q.push(1, Lane::Batch, 1).unwrap();
        // Client 1's batch budget is full; its push fails immediately and
        // hands the item back...
        assert_eq!(q.push(2, Lane::Batch, 1), Err(PushError::Full(2)));
        // ...while client 2 still has its own batch budget...
        q.push(20, Lane::Batch, 2).unwrap();
        assert_eq!(q.client_len(Lane::Batch, 1), 2);
        assert_eq!(q.client_len(Lane::Batch, 2), 1);
        // ...and client 1 still has its interactive budget.
        q.push(10, Lane::Interactive, 1).unwrap();
        q.push(11, Lane::Interactive, 1).unwrap();
        assert_eq!(q.push(12, Lane::Interactive, 1), Err(PushError::Full(12)));
        assert_eq!(q.lane_len(Lane::Batch), 3);
        assert_eq!(q.lane_len(Lane::Interactive), 2);
        // Draining frees capacity.
        assert_eq!(q.pop(), Some(10));
        q.push(12, Lane::Interactive, 1).unwrap();
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn push_error_returns_the_item() {
        let q = JobQueue::bounded(1);
        q.push("kept", Lane::Batch, 0).unwrap();
        let err = q.push("bounced", Lane::Batch, 0).unwrap_err();
        assert_eq!(err.into_inner(), "bounced");
        q.close();
        let err = q.push("late", Lane::Interactive, 0).unwrap_err();
        assert_eq!(err.into_inner(), "late");
    }

    #[test]
    fn lane_index_round_trips() {
        for lane in Lane::ALL {
            assert_eq!(Lane::from_index(lane.index() as u8), Some(lane));
        }
        assert_eq!(Lane::from_index(2), None);
        assert_eq!(Lane::Interactive.to_string(), "interactive");
        assert_eq!(Lane::Batch.to_string(), "batch");
    }

    #[test]
    fn blocked_consumers_wake_on_close_and_on_push() {
        let q = Arc::new(JobQueue::<u32>::new());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(v) = q.pop() {
                            seen.push(v);
                        }
                        seen
                    })
                })
                .collect();
            for i in 0..10 {
                let lane = if i % 3 == 0 {
                    Lane::Interactive
                } else {
                    Lane::Batch
                };
                q.push(i, lane, u64::from(i % 2)).unwrap();
            }
            q.close();
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("consumer panicked"))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).collect::<Vec<_>>(), "each job exactly once");
        });
    }
}
