//! The job queue: a two-lane priority MPSC queue with close/drain
//! semantics and optional bounded admission control, built on `Mutex` +
//! `Condvar` (no external dependencies).
//!
//! Producers ([`TranspileService::submit`](crate::TranspileService::submit))
//! push into one of two [`Lane`]s from any thread; each worker pops under
//! the lock, so every job is delivered to exactly one worker. Pops always
//! drain [`Lane::Interactive`] before touching [`Lane::Batch`] — the
//! express lane a latency-sensitive request rides past a deep batch
//! backlog. Closing the queue wakes every blocked worker; pops drain the
//! remaining jobs (both lanes, still interactive-first) and only then
//! report the end of the stream — the graceful-shutdown contract:
//! **every job accepted before close is processed**.
//!
//! A queue built with [`JobQueue::bounded`] enforces a per-lane capacity
//! at push time: a full lane rejects with [`PushError::Full`] *instead of
//! blocking*, which is the admission-control mode a network front needs —
//! overload surfaces as a typed `Busy` response at the door, not as an
//! unbounded backlog or a stalled accept loop.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Which priority lane a job rides.
///
/// The queue is strict-priority: a popper never takes a `Batch` item while
/// an `Interactive` item is waiting. Starvation of the batch lane is
/// bounded by the interactive arrival rate — acceptable here because the
/// interactive lane is reserved for small latency-sensitive requests
/// (admission control caps how many can pile up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive requests: always dequeued first.
    Interactive,
    /// Throughput traffic: dequeued when the interactive lane is empty.
    /// The default for [`TranspileJob`](crate::TranspileJob)s.
    Batch,
}

impl Lane {
    /// Both lanes, in dequeue-priority order.
    pub const ALL: [Lane; 2] = [Lane::Interactive, Lane::Batch];

    /// Stable index of the lane (0 = interactive, 1 = batch) — also its
    /// wire encoding in `net::proto`.
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Batch => 1,
        }
    }

    /// The lane for a wire index; `None` for an unknown index.
    pub fn from_index(index: u8) -> Option<Lane> {
        match index {
            0 => Some(Lane::Interactive),
            1 => Some(Lane::Batch),
            _ => None,
        }
    }

    /// Human-readable lane name (`interactive` / `batch`).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a push was refused. The item comes back so the caller can report
/// or retry without cloning every job up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The target lane is at capacity (bounded queues only). Admission
    /// control: the caller should surface backpressure, not block.
    Full(T),
    /// The queue has been closed; no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A close-aware two-lane priority MPSC queue. `T` is the queued work
/// item.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    /// Per-lane capacity; `None` = unbounded.
    capacity: Option<usize>,
}

#[derive(Debug)]
struct QueueState<T> {
    /// Indexed by [`Lane::index`]: interactive first.
    lanes: [VecDeque<T>; 2],
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open, empty, unbounded queue.
    pub fn new() -> JobQueue<T> {
        JobQueue::with_capacity(None)
    }

    /// An open, empty queue admitting at most `capacity` items *per lane*;
    /// pushes beyond that return [`PushError::Full`]. Per-lane (rather
    /// than total) bounds keep a flooded batch lane from locking
    /// interactive traffic out.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a queue that can never accept work.
    pub fn bounded(capacity: usize) -> JobQueue<T> {
        assert!(capacity > 0, "a bounded queue needs capacity >= 1");
        JobQueue::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The per-lane admission bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Enqueue one item into `lane`. Never blocks: a closed queue returns
    /// [`PushError::Closed`], a full lane returns [`PushError::Full`] —
    /// both hand the item back.
    pub fn push(&self, item: T, lane: Lane) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        let queue = &mut state.lanes[lane.index()];
        if self.capacity.is_some_and(|cap| queue.len() >= cap) {
            return Err(PushError::Full(item));
        }
        queue.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is open and empty.
    /// The interactive lane always drains before the batch lane; within a
    /// lane, FIFO. Returns `None` only when the queue is closed **and**
    /// both lanes are drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            for lane in 0..state.lanes.len() {
                if let Some(item) = state.lanes[lane].pop_front() {
                    return Some(item);
                }
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: no further pushes are accepted, every blocked
    /// popper wakes, and remaining items drain normally.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Total jobs waiting across both lanes (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        let state = self.state.lock().expect("queue poisoned");
        state.lanes.iter().map(VecDeque::len).sum()
    }

    /// Jobs waiting in one lane.
    pub fn lane_len(&self, lane: Lane) -> usize {
        self.state.lock().expect("queue poisoned").lanes[lane.index()].len()
    }

    /// True when no jobs are waiting in either lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_lane() {
        let q = JobQueue::new();
        for i in 0..5 {
            q.push(i, Lane::Batch).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interactive_lane_drains_before_batch() {
        let q = JobQueue::new();
        q.push("b0", Lane::Batch).unwrap();
        q.push("b1", Lane::Batch).unwrap();
        q.push("i0", Lane::Interactive).unwrap();
        q.push("i1", Lane::Interactive).unwrap();
        // The batch items arrived first; the interactive items jump them.
        assert_eq!(q.pop(), Some("i0"));
        // New interactive arrivals keep jumping even mid-drain.
        q.push("i2", Lane::Interactive).unwrap();
        assert_eq!(q.pop(), Some("i1"));
        assert_eq!(q.pop(), Some("i2"));
        assert_eq!(q.pop(), Some("b0"));
        assert_eq!(q.pop(), Some("b1"));
    }

    #[test]
    fn close_rejects_pushes_but_drains_both_lanes() {
        let q = JobQueue::new();
        q.push(1, Lane::Batch).unwrap();
        q.push(2, Lane::Interactive).unwrap();
        q.close();
        assert_eq!(q.push(3, Lane::Batch), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(2), "interactive first, even while draining");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn bounded_lane_rejects_without_blocking() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.capacity(), Some(2));
        q.push(0, Lane::Batch).unwrap();
        q.push(1, Lane::Batch).unwrap();
        // The batch lane is full; the push fails immediately and hands the
        // item back...
        assert_eq!(q.push(2, Lane::Batch), Err(PushError::Full(2)));
        // ...while the interactive lane has its own budget.
        q.push(10, Lane::Interactive).unwrap();
        q.push(11, Lane::Interactive).unwrap();
        assert_eq!(q.push(12, Lane::Interactive), Err(PushError::Full(12)));
        assert_eq!(q.lane_len(Lane::Batch), 2);
        assert_eq!(q.lane_len(Lane::Interactive), 2);
        // Draining frees capacity.
        assert_eq!(q.pop(), Some(10));
        q.push(12, Lane::Interactive).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn push_error_returns_the_item() {
        let q = JobQueue::bounded(1);
        q.push("kept", Lane::Batch).unwrap();
        let err = q.push("bounced", Lane::Batch).unwrap_err();
        assert_eq!(err.into_inner(), "bounced");
        q.close();
        let err = q.push("late", Lane::Interactive).unwrap_err();
        assert_eq!(err.into_inner(), "late");
    }

    #[test]
    fn lane_index_round_trips() {
        for lane in Lane::ALL {
            assert_eq!(Lane::from_index(lane.index() as u8), Some(lane));
        }
        assert_eq!(Lane::from_index(2), None);
        assert_eq!(Lane::Interactive.to_string(), "interactive");
        assert_eq!(Lane::Batch.to_string(), "batch");
    }

    #[test]
    fn blocked_consumers_wake_on_close_and_on_push() {
        let q = Arc::new(JobQueue::<u32>::new());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(v) = q.pop() {
                            seen.push(v);
                        }
                        seen
                    })
                })
                .collect();
            for i in 0..10 {
                let lane = if i % 3 == 0 {
                    Lane::Interactive
                } else {
                    Lane::Batch
                };
                q.push(i, lane).unwrap();
            }
            q.close();
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("consumer panicked"))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).collect::<Vec<_>>(), "each job exactly once");
        });
    }
}
