//! The job queue: a bounded-by-nothing MPSC queue with close/drain
//! semantics, built on `Mutex` + `Condvar` (no external dependencies).
//!
//! Producers ([`TranspileService::submit`](crate::TranspileService::submit))
//! push from any thread; each worker pops under the lock, so every job is
//! delivered to exactly one worker. Closing the queue wakes every blocked
//! worker; pops drain the remaining jobs first and only then report the
//! end of the stream — the graceful-shutdown contract: **every job
//! accepted before close is processed**.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A close-aware MPSC queue. `T` is the queued work item.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open, empty queue.
    pub fn new() -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue one item. Returns the item back when the queue has been
    /// closed (the caller decides how to surface the rejection).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(item);
        }
        state.jobs.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is open and empty.
    /// Returns `None` only when the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.jobs.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: no further pushes are accepted, every blocked
    /// popper wakes, and remaining items drain normally.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs waiting (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_consumer() {
        let q = JobQueue::new();
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = JobQueue::new();
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn blocked_consumers_wake_on_close_and_on_push() {
        let q = Arc::new(JobQueue::<u32>::new());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while let Some(v) = q.pop() {
                            seen.push(v);
                        }
                        seen
                    })
                })
                .collect();
            for i in 0..10 {
                q.push(i).unwrap();
            }
            q.close();
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("consumer panicked"))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).collect::<Vec<_>>(), "each job exactly once");
        });
    }
}
