//! `mirage_serve` — an in-process batch transpilation service.
//!
//! The transpiler below this crate is a pure function: one circuit, one
//! [`Target`], one result. Serving-scale workloads do not arrive that way —
//! they arrive as *batches* of independent jobs against one shared device,
//! on a process that stays up while the device drifts. This crate is that
//! serving shape, with zero external dependencies:
//!
//! * [`TranspileService`] owns one shared [`Arc<Target>`] and a pool of
//!   `std::thread` workers consuming an MPSC [`queue::JobQueue`].
//! * [`TranspileJob`]s (circuit + [`TranspileOptions`] + seed) are
//!   submitted singly or in batches; [`TranspileService::submit_batch`]
//!   returns one [`JobHandle`] per job, in submission order.
//! * Results are **deterministic per job seed**: the trial engine is
//!   bit-identical at every thread count (pre-split seeds, fixed
//!   reduction order — see [`mirage_core::trials::TrialOptions`]), so the
//!   same job produces the same routed circuit whether the pool has 1
//!   worker or 16, whether `trials.parallel` is on or off, and regardless
//!   of completion order. A big job can fan its trials across cores while
//!   small jobs ride the worker pool.
//! * The service is **long-lived**: [`TranspileService::swap_calibration`]
//!   hot-swaps the device calibration on the shared target between jobs —
//!   validation, a generation bump, and cost-cache epoch invalidation are
//!   handled by [`Target::swap_calibration`]; nothing is rebuilt, and each
//!   [`JobResult`] records the generation it was computed under.
//! * Shutdown is graceful: [`TranspileService::shutdown`] (and `Drop`)
//!   closes the queue, lets the workers drain every accepted job, and
//!   joins them.
//!
//! ```
//! use mirage_circuit::generators::ghz;
//! use mirage_core::{RouterKind, Target, TranspileOptions};
//! use mirage_serve::{TranspileJob, TranspileService};
//! use mirage_topology::CouplingMap;
//! use std::sync::Arc;
//!
//! let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(3, 3)));
//! let service = TranspileService::new(target, 2);
//! let jobs = (0..4)
//!     .map(|i| {
//!         TranspileJob::new(
//!             format!("ghz-{i}"),
//!             ghz(4),
//!             TranspileOptions::quick(RouterKind::Mirage, 7),
//!         )
//!         .with_seed(i)
//!     })
//!     .collect();
//! let results = service.run_batch(jobs).expect("service is live");
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.outcome.is_ok()));
//! let stats = service.shutdown();
//! assert_eq!(stats.jobs, 4);
//! ```

pub mod queue;

use mirage_circuit::Circuit;
use mirage_core::calibration::{Calibration, CalibrationError};
use mirage_core::{transpile, Target, TranspileError, TranspileOptions, TranspiledCircuit};
use queue::JobQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One unit of service work: a circuit, how to transpile it, and the seed
/// that makes the result reproducible.
#[derive(Debug, Clone)]
pub struct TranspileJob {
    /// Caller-chosen label, carried through to the [`JobResult`] (a file
    /// name, a request id — the service never interprets it).
    pub label: String,
    /// The circuit to transpile.
    pub circuit: Circuit,
    /// Full transpilation options. The trial seed inside is overridden by
    /// [`TranspileJob::seed`]; `trials.parallel` is honored as-is — the
    /// trial engine is thread-count-invariant, so in-job parallelism never
    /// changes the result (see [`TranspileService`]).
    pub options: TranspileOptions,
    /// The seed this job runs under — the *only* nondeterminism input, so
    /// equal (circuit, options, seed, calibration) means equal output.
    pub seed: u64,
}

impl TranspileJob {
    /// A job seeded by whatever `options` already carries.
    pub fn new(label: impl Into<String>, circuit: Circuit, options: TranspileOptions) -> Self {
        let seed = options.trials.seed;
        TranspileJob {
            label: label.into(),
            circuit,
            options,
            seed,
        }
    }

    /// Override the job seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The completed outcome of one [`TranspileJob`].
#[derive(Debug)]
pub struct JobResult {
    /// Service-assigned id: the submission index, starting at 0.
    pub job_id: u64,
    /// The label the job was submitted with.
    pub label: String,
    /// The transpilation outcome (errors are per-job data, not service
    /// failures: one malformed job never poisons the batch).
    pub outcome: Result<TranspiledCircuit, TranspileError>,
    /// [`Target::calibration_generation`] observed when the job started —
    /// which calibration this result was computed under.
    pub generation: u64,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// Wall-clock time the job spent executing (queue wait excluded).
    pub elapsed: Duration,
}

/// A claim on one submitted job's future [`JobResult`].
#[derive(Debug)]
pub struct JobHandle {
    /// The id the result will carry.
    pub job_id: u64,
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Block until the job completes. Jobs accepted by the service always
    /// complete — graceful shutdown drains the queue first.
    ///
    /// # Panics
    ///
    /// Panics if the owning worker died without delivering a result (a
    /// worker panic — indicates a transpiler bug, not a service state).
    pub fn wait(self) -> JobResult {
        self.rx
            .recv()
            .expect("worker dropped a job without a result")
    }

    /// Non-blocking poll: the result if the job has finished, `None` while
    /// it is still pending.
    ///
    /// # Panics
    ///
    /// Panics — like [`JobHandle::wait`] — if the owning worker died
    /// without delivering a result; a poll loop must surface that rather
    /// than spin on `None` forever.
    pub fn try_wait(&self) -> Option<JobResult> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("worker dropped a job without a result")
            }
        }
    }
}

/// Why the service refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service has been shut down; no further jobs are accepted.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "transpile service is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate counters reported by [`TranspileService::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total jobs processed over the service lifetime.
    pub jobs: u64,
    /// Jobs processed by each worker (index = worker id). Sums to `jobs`.
    pub per_worker: Vec<u64>,
}

/// What travels through the queue: the job plus its delivery channel.
struct QueuedJob {
    id: u64,
    job: TranspileJob,
    tx: mpsc::Sender<JobResult>,
}

/// The batch transpilation service. See the [crate docs](self) for the
/// design; construct with [`TranspileService::new`].
pub struct TranspileService {
    target: Arc<Target>,
    queue: Arc<JobQueue<QueuedJob>>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    next_id: AtomicU64,
    completed: Arc<AtomicU64>,
}

impl std::fmt::Debug for TranspileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranspileService")
            .field("target", &self.target.name())
            .field("workers", &self.workers.len())
            .field("pending", &self.queue.len())
            .field("completed", &self.completed())
            .finish()
    }
}

impl TranspileService {
    /// Start a service with `workers` threads over one shared target.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(target: Arc<Target>, workers: usize) -> TranspileService {
        assert!(workers > 0, "a service needs at least one worker");
        let queue = Arc::new(JobQueue::new());
        let completed = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|worker| {
                let target = Arc::clone(&target);
                let queue = Arc::clone(&queue);
                let completed = Arc::clone(&completed);
                std::thread::Builder::new()
                    .name(format!("mirage-serve-{worker}"))
                    .spawn(move || worker_loop(worker, &target, &queue, &completed))
                    .expect("spawn worker thread")
            })
            .collect();
        TranspileService {
            target,
            queue,
            workers: handles,
            next_id: AtomicU64::new(0),
            completed,
        }
    }

    /// The shared target the workers transpile onto.
    pub fn target(&self) -> &Arc<Target> {
        &self.target
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Jobs completed since the service started.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Hot-swap the calibration of the shared target (see
    /// [`Target::swap_calibration`]). Jobs started after the swap are
    /// scored under the new calibration — with no service restart, no
    /// coverage-set rebuild, and no stale cached per-edge costs.
    ///
    /// # Errors
    ///
    /// Rejects calibrations that do not cover the target's topology; the
    /// running calibration stays in effect.
    pub fn swap_calibration(&self, calibration: Arc<Calibration>) -> Result<u64, CalibrationError> {
        self.target.swap_calibration(calibration)
    }

    /// Submit one job; returns a handle to its future result.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] once [`TranspileService::shutdown`] has
    /// begun.
    pub fn submit(&self, job: TranspileJob) -> Result<JobHandle, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        self.queue
            .push(QueuedJob { id, job, tx })
            .map_err(|_| ServeError::ShutDown)?;
        Ok(JobHandle { job_id: id, rx })
    }

    /// Submit a batch; handles come back in submission order, so waiting on
    /// them in order yields results independent of completion order.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] — jobs already accepted from this batch
    /// still run to completion.
    pub fn submit_batch(&self, jobs: Vec<TranspileJob>) -> Result<Vec<JobHandle>, ServeError> {
        jobs.into_iter().map(|job| self.submit(job)).collect()
    }

    /// Submit a batch and block until every job has finished; results come
    /// back in submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] if the service stopped accepting before the
    /// whole batch was queued.
    pub fn run_batch(&self, jobs: Vec<TranspileJob>) -> Result<Vec<JobResult>, ServeError> {
        let handles = self.submit_batch(jobs)?;
        Ok(handles.into_iter().map(JobHandle::wait).collect())
    }

    /// Graceful shutdown: stop accepting jobs, let the workers drain
    /// everything already accepted, join them, and report per-worker
    /// counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.queue.close();
        let per_worker: Vec<u64> = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        ServiceStats {
            jobs: per_worker.iter().sum(),
            per_worker,
        }
    }
}

impl Drop for TranspileService {
    /// Dropping without [`TranspileService::shutdown`] still drains and
    /// joins (results for unclaimed handles are discarded by their dead
    /// receivers).
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: pop until the queue terminates, run each job under its own
/// seed, deliver the result. Returns the number of jobs processed. The
/// job's `trials.parallel` setting is honored: determinism comes from the
/// trial engine's seed pre-split and fixed reduction order, not from
/// forcing jobs single-threaded.
fn worker_loop(
    worker: usize,
    target: &Arc<Target>,
    queue: &JobQueue<QueuedJob>,
    completed: &AtomicU64,
) -> u64 {
    let mut processed = 0u64;
    while let Some(QueuedJob { id, job, tx }) = queue.pop() {
        let generation = target.calibration_generation();
        let mut options = job.options;
        options.trials.seed = job.seed;
        let start = Instant::now();
        let outcome = transpile(&job.circuit, target, &options);
        let result = JobResult {
            job_id: id,
            label: job.label,
            outcome,
            generation,
            worker,
            elapsed: start.elapsed(),
        };
        processed += 1;
        // Count before delivering, so a caller that has already observed
        // the result never reads a counter that excludes it.
        completed.fetch_add(1, Ordering::SeqCst);
        // A dropped handle (caller gave up) is not a worker error.
        let _ = tx.send(result);
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::{ghz, qft, two_local_full};
    use mirage_core::calibration::EdgeCalibration;
    use mirage_core::trials::Metric;
    use mirage_core::verify::verify_routed;
    use mirage_core::RouterKind;
    use mirage_math::Rng;
    use mirage_topology::CouplingMap;

    fn quick_job(label: &str, circuit: Circuit, seed: u64) -> TranspileJob {
        let mut options = TranspileOptions::quick(RouterKind::Mirage, seed);
        options.trials.layout_trials = 2;
        options.trials.routing_trials = 2;
        TranspileJob::new(label, circuit, options)
    }

    fn test_batch() -> Vec<TranspileJob> {
        vec![
            quick_job("qft-4", qft(4, false), 11),
            quick_job("twolocal-4", two_local_full(4, 1, 7), 12),
            quick_job("ghz-5", ghz(5), 13),
            quick_job("twolocal-5", two_local_full(5, 1, 9), 14),
        ]
    }

    #[test]
    fn batch_results_arrive_in_submission_order_and_verify() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(2, 3)));
        let service = TranspileService::new(Arc::clone(&target), 2);
        let results = service.run_batch(test_batch()).unwrap();
        assert_eq!(results.len(), 4);
        for (i, (result, job)) in results.iter().zip(test_batch()).enumerate() {
            assert_eq!(result.job_id, i as u64);
            assert_eq!(result.label, job.label);
            assert_eq!(result.generation, 0);
            let out = result.outcome.as_ref().expect("job succeeds");
            assert!(verify_routed(
                &consolidate(&job.circuit),
                &out.as_routed(),
                &target
            ));
        }
        let stats = service.shutdown();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.per_worker.len(), 2);
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 4);
    }

    #[test]
    fn results_are_bit_identical_across_pool_sizes() {
        // Sweep both axes of concurrency: worker-pool size AND in-job
        // trial parallelism. Every combination must produce the same
        // batch, bit for bit.
        let run = |workers: usize, in_job_parallel: bool| {
            let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(2, 3)));
            let service = TranspileService::new(target, workers);
            let jobs = test_batch()
                .into_iter()
                .map(|mut job| {
                    job.options.trials.parallel = in_job_parallel;
                    job
                })
                .collect();
            let results = service.run_batch(jobs).unwrap();
            results
                .into_iter()
                .map(|r| r.outcome.expect("job succeeds").circuit)
                .collect::<Vec<_>>()
        };
        let reference = run(1, false);
        for workers in [1, 4] {
            for in_job_parallel in [false, true] {
                assert_eq!(
                    reference,
                    run(workers, in_job_parallel),
                    "{workers} workers (in-job parallel: {in_job_parallel}) \
                     must not change results"
                );
            }
        }
    }

    #[test]
    fn big_job_parallel_trials_match_serial_fingerprint() {
        // One big job — QFT-64 on an 8×8 grid — with in-job trial
        // parallelism on must reproduce the serial run's fingerprint
        // exactly. This is the case the old worker-level
        // `trials.parallel = false` override existed to protect; the
        // trial engine now guarantees it at any thread count.
        let run = |parallel: bool, threads: usize| {
            let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(8, 8)));
            let service = TranspileService::new(target, 1);
            let mut options = TranspileOptions::quick(RouterKind::Mirage, 0x64);
            options.use_vf2 = false;
            options.trials.layout_trials = 2;
            options.trials.routing_trials = 1;
            options.trials.fwd_bwd_iters = 1;
            options.trials.parallel = parallel;
            options.trials.threads = threads;
            let job = TranspileJob::new("qft-64", qft(64, false), options);
            let results = service.run_batch(vec![job]).unwrap();
            let out = results
                .into_iter()
                .next()
                .unwrap()
                .outcome
                .expect("qft-64 routes");
            out.circuit.fingerprint()
        };
        let serial = run(false, 0);
        assert_eq!(
            serial,
            run(true, 2),
            "2-thread in-job parallelism must match the serial fingerprint"
        );
    }

    #[test]
    fn job_seed_overrides_option_seed() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(4)));
        let service = TranspileService::new(target, 1);
        let base = quick_job("a", two_local_full(4, 1, 7), 1);
        // Same options object, different job seeds: both must behave as if
        // the options carried that seed.
        let reseeded = base.clone().with_seed(99);
        let direct = quick_job("b", two_local_full(4, 1, 7), 99);
        let results = service
            .run_batch(vec![reseeded, direct])
            .unwrap()
            .into_iter()
            .map(|r| r.outcome.unwrap().circuit)
            .collect::<Vec<_>>();
        assert_eq!(results[0], results[1]);
        service.shutdown();
    }

    #[test]
    fn per_job_errors_do_not_poison_the_batch() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 2);
        let jobs = vec![
            quick_job("too-wide", ghz(5), 1),
            quick_job("fine", ghz(3), 2),
        ];
        let results = service.run_batch(jobs).unwrap();
        assert!(matches!(
            results[0].outcome,
            Err(TranspileError::CircuitTooLarge { .. })
        ));
        assert!(results[1].outcome.is_ok());
        assert_eq!(service.completed(), 2);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(Arc::clone(&target), 1);
        let handle = service.submit(quick_job("early", ghz(3), 3)).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.jobs, 1, "shutdown drains accepted jobs");
        assert!(handle.wait().outcome.is_ok());
        let service2 = TranspileService::new(target, 1);
        let stats2 = service2.shutdown();
        assert_eq!(stats2.jobs, 0);
    }

    #[test]
    fn rejection_surfaces_as_shut_down_error() {
        // A closed queue inside a still-borrowed service: reach in via a
        // second service sharing the target is not possible, so exercise
        // the path through Drop ordering instead — submit to a service
        // whose queue we close manually.
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        service.queue.close();
        let err = service.submit(quick_job("late", ghz(3), 4)).unwrap_err();
        assert_eq!(err, ServeError::ShutDown);
        assert_eq!(err.to_string(), "transpile service is shut down");
    }

    #[test]
    fn calibration_swap_applies_to_subsequent_jobs() {
        let topo = CouplingMap::line(4);
        let target = Arc::new(Target::sqrt_iswap(topo.clone()));
        let service = TranspileService::new(Arc::clone(&target), 2);
        let mut options =
            TranspileOptions::quick(RouterKind::Mirage, 5).with_metric(Metric::EstimatedSuccess);
        options.trials.layout_trials = 2;
        options.trials.routing_trials = 2;
        let job = |label: &str| TranspileJob::new(label, two_local_full(4, 1, 7), options.clone());

        let before = service.run_batch(vec![job("before")]).unwrap();
        let before = &before[0];
        assert_eq!(before.generation, 0);
        let out = before.outcome.as_ref().unwrap();
        assert_eq!(out.metrics.estimated_success, 1.0, "uniform device");

        let noisy = Arc::new(Calibration::synthetic(&topo, &mut Rng::new(0xD21F7)));
        assert_eq!(service.swap_calibration(Arc::clone(&noisy)).unwrap(), 1);

        let after = service.run_batch(vec![job("after")]).unwrap();
        let after = &after[0];
        assert_eq!(after.generation, 1);
        let out = after.outcome.as_ref().unwrap();
        assert!(
            out.metrics.estimated_success > 0.0 && out.metrics.estimated_success < 1.0,
            "post-swap jobs must be scored under the noisy calibration"
        );

        // And the swap is equivalent to having built the target that way:
        // a fresh target with the same calibration produces the identical
        // result for the identical job.
        let fresh = Arc::new(
            Target::sqrt_iswap(topo)
                .with_calibration((*noisy).clone())
                .unwrap(),
        );
        let fresh_service = TranspileService::new(fresh, 1);
        let expected = fresh_service.run_batch(vec![job("fresh")]).unwrap();
        assert_eq!(
            after.outcome.as_ref().unwrap().circuit,
            expected[0].outcome.as_ref().unwrap().circuit,
            "hot-swap must be indistinguishable from a rebuild"
        );
    }

    #[test]
    fn swap_rejects_non_covering_calibration() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(4)));
        let service = TranspileService::new(target, 1);
        let partial = Calibration::from_edges(4, &[(0, 1, EdgeCalibration::default())]).unwrap();
        assert!(service.swap_calibration(Arc::new(partial)).is_err());
        assert_eq!(service.target().calibration_generation(), 0);
    }

    #[test]
    fn handles_support_polling() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        let handle = service.submit(quick_job("poll", ghz(3), 6)).unwrap();
        // Eventually the poll succeeds; don't assert on intermediate None
        // (the worker may already be done).
        let mut result = handle.try_wait();
        while result.is_none() {
            std::thread::yield_now();
            result = handle.try_wait();
        }
        assert!(result.unwrap().outcome.is_ok());
    }
}
