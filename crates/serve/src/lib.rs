//! `mirage_serve` — the batch transpilation service and its network front.
//!
//! The transpiler below this crate is a pure function: one circuit, one
//! [`Target`], one result. Serving-scale workloads do not arrive that way —
//! they arrive as *streams* of independent jobs against one shared device,
//! on a process that stays up while the device drifts. This crate is that
//! serving shape, with zero external dependencies:
//!
//! * [`TranspileService`] owns one shared [`Arc<Target>`] and a supervised
//!   pool of `std::thread` workers consuming a two-lane priority
//!   [`queue::JobQueue`]: [`Lane::Interactive`] jobs always dequeue before
//!   [`Lane::Batch`] jobs, clients share each lane weighted round-robin,
//!   and a service built with a [`ServiceConfig::queue_capacity`] bound
//!   rejects a client over its per-lane budget with a typed
//!   [`ServeError::Busy`] instead of queueing without limit.
//! * [`TranspileJob`]s (circuit + [`TranspileOptions`] + seed, plus a lane
//!   and an optional deadline) are submitted singly or in batches;
//!   [`TranspileService::submit_batch`] returns one [`JobHandle`] per job,
//!   in submission order. A job whose deadline has already passed when a
//!   worker dequeues it is rejected with [`JobError::DeadlineExceeded`]
//!   without being run — stale interactive requests don't burn pool time.
//! * Each handle streams [`JobEvent`]s — `Started` when a worker picks the
//!   job up, then `Finished` with the [`JobResult`] — which is what the
//!   [`net`] front forwards over the wire as queued → running → done.
//! * **Workers are supervised.** Per-job execution runs under
//!   `catch_unwind`: a panicking transpile delivers a terminal
//!   [`JobError::WorkerPanicked`] for *that job only* and the worker keeps
//!   serving. If a worker thread dies outright, a delivery guard still
//!   hands the in-flight job a `WorkerPanicked` result (a [`JobHandle`]
//!   can never hang) and the pool respawns the worker in the same slot
//!   with fresh scratch — [`ServiceStats::respawns`] counts these.
//! * Results are **deterministic per job seed**: the trial engine is
//!   bit-identical at every thread count (pre-split seeds, fixed
//!   reduction order — see [`mirage_core::trials::TrialOptions`]), so the
//!   same job produces the same routed circuit whether the pool has 1
//!   worker or 16, whether `trials.parallel` is on or off, and regardless
//!   of completion order, which lane it rode, or how many other jobs
//!   panicked around it.
//! * The service is **long-lived**: [`TranspileService::swap_calibration`]
//!   hot-swaps the device calibration on the shared target between jobs —
//!   validation, a generation bump, and cost-cache epoch invalidation are
//!   handled by [`Target::swap_calibration`]; nothing is rebuilt, and each
//!   [`JobResult`] records the generation it was computed under. The
//!   [`net::CalibrationRefresher`] drives this from a watched file.
//! * Shutdown is graceful: [`TranspileService::shutdown`] (and `Drop`)
//!   closes the queue, lets the workers drain every accepted job, and
//!   joins them.
//!
//! The [`net`] module wraps all of this in a framed-TCP wire protocol:
//! a length-prefixed checksummed frame codec, versioned request/response
//! envelopes, a [`net::NetServer`] daemon and a retrying
//! [`net::NetClient`], plus a deterministic [`net::ChaosTransport`] fault
//! injector for testing the whole stack under fire.
//!
//! ```
//! use mirage_circuit::generators::ghz;
//! use mirage_core::{RouterKind, Target, TranspileOptions};
//! use mirage_serve::{TranspileJob, TranspileService};
//! use mirage_topology::CouplingMap;
//! use std::sync::Arc;
//!
//! let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(3, 3)));
//! let service = TranspileService::new(target, 2);
//! let jobs = (0..4)
//!     .map(|i| {
//!         TranspileJob::new(
//!             format!("ghz-{i}"),
//!             ghz(4),
//!             TranspileOptions::quick(RouterKind::Mirage, 7),
//!         )
//!         .with_seed(i)
//!     })
//!     .collect();
//! let results = service.run_batch(jobs).expect("service is live");
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.outcome.is_ok()));
//! let stats = service.shutdown();
//! assert_eq!(stats.jobs, 4);
//! ```

pub mod net;
pub mod queue;

use mirage_circuit::Circuit;
use mirage_core::calibration::{Calibration, CalibrationError};
use mirage_core::{transpile, Target, TranspileError, TranspileOptions, TranspiledCircuit};
use queue::{JobQueue, PushError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

pub use queue::Lane;

/// A deterministic fault a job can carry to exercise the service's
/// supervision machinery. Test/chaos tooling only — a production server
/// rejects faulted submissions unless chaos mode is enabled (see
/// [`net::ServeConfig::with_chaos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic *inside* the supervised per-job region: the panic is caught,
    /// the job fails with [`JobError::WorkerPanicked`], and the worker
    /// thread survives to serve the next job.
    Panic,
    /// Panic *outside* the supervised region, killing the worker thread:
    /// the delivery guard still fails the job with
    /// [`JobError::WorkerPanicked`], and the pool respawns the worker
    /// (observable via [`ServiceStats::respawns`]).
    PanicKill,
}

impl InjectedFault {
    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            InjectedFault::Panic => "panic",
            InjectedFault::PanicKill => "panic-kill",
        }
    }
}

/// One unit of service work: a circuit, how to transpile it, the seed
/// that makes the result reproducible, and how it should be scheduled.
#[derive(Debug, Clone)]
pub struct TranspileJob {
    /// Caller-chosen label, carried through to the [`JobResult`] (a file
    /// name, a request id — the service never interprets it).
    pub label: String,
    /// The circuit to transpile.
    pub circuit: Circuit,
    /// Full transpilation options. The trial seed inside is overridden by
    /// [`TranspileJob::seed`]; `trials.parallel` is honored as-is — the
    /// trial engine is thread-count-invariant, so in-job parallelism never
    /// changes the result (see [`TranspileService`]).
    pub options: TranspileOptions,
    /// The seed this job runs under — the *only* nondeterminism input, so
    /// equal (circuit, options, seed, calibration) means equal output.
    pub seed: u64,
    /// Which queue lane the job rides ([`Lane::Batch`] by default;
    /// [`Lane::Interactive`] jobs dequeue first). Scheduling only — the
    /// lane never affects the result.
    pub lane: Lane,
    /// Drop-dead time: a job still queued past this instant is rejected at
    /// dequeue with [`JobError::DeadlineExceeded`] instead of being run.
    pub deadline: Option<Instant>,
    /// Chaos hook: make the worker panic while running this job instead of
    /// transpiling it. `None` (the default) for every real job.
    pub fault: Option<InjectedFault>,
}

impl TranspileJob {
    /// A job seeded by whatever `options` already carries, riding the
    /// batch lane with no deadline.
    pub fn new(label: impl Into<String>, circuit: Circuit, options: TranspileOptions) -> Self {
        let seed = options.trials.seed;
        TranspileJob {
            label: label.into(),
            circuit,
            options,
            seed,
            lane: Lane::Batch,
            deadline: None,
            fault: None,
        }
    }

    /// Override the job seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the queue lane (builder style).
    #[must_use]
    pub fn with_lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// Set an absolute deadline (builder style). Enforced when a worker
    /// *dequeues* the job: an expired job is never run.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arm a deterministic fault (builder style; chaos testing only).
    #[must_use]
    pub fn with_fault(mut self, fault: InjectedFault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Why a dispatched job did not produce a circuit. Per-job data, not a
/// service failure: one failed job never poisons the batch.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The transpiler rejected the job (bad circuit, invalid options, …).
    Transpile(TranspileError),
    /// The job's deadline had already passed when a worker dequeued it;
    /// the job was not run. `late_by` is how far past the deadline the
    /// dequeue happened.
    DeadlineExceeded {
        /// How long after the deadline the job reached the front of its
        /// lane.
        late_by: Duration,
    },
    /// The worker panicked while running this job. Terminal and **not
    /// retryable**: rerunning the same (circuit, options, seed) would
    /// deterministically panic again. Other jobs are unaffected — the
    /// panic was either caught in place or the worker was respawned.
    WorkerPanicked {
        /// The panic payload (or a placeholder for non-string payloads).
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Transpile(e) => write!(f, "{e}"),
            JobError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded ({late_by:?} before dequeue)")
            }
            JobError::WorkerPanicked { message } => {
                write!(f, "worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Transpile(e) => Some(e),
            JobError::DeadlineExceeded { .. } | JobError::WorkerPanicked { .. } => None,
        }
    }
}

/// The completed outcome of one [`TranspileJob`].
#[derive(Debug)]
pub struct JobResult {
    /// Service-assigned id: the submission index, starting at 0.
    pub job_id: u64,
    /// The label the job was submitted with.
    pub label: String,
    /// The transpilation outcome (errors are per-job data, not service
    /// failures: one malformed job never poisons the batch).
    pub outcome: Result<TranspiledCircuit, JobError>,
    /// [`Target::calibration_generation`] observed when the job started —
    /// which calibration this result was computed under.
    pub generation: u64,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// Pool-wide dequeue order (0 = first job any worker picked up).
    /// Observability for lane scheduling: every interactive job's sequence
    /// is lower than any batch job queued behind it at the time.
    pub sequence: u64,
    /// Wall-clock time the job spent executing (queue wait excluded).
    pub elapsed: Duration,
}

/// What a running job reports back through its [`JobHandle`], in order.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // moved exactly once through an mpsc channel; boxing would cost an allocation per job
pub enum JobEvent {
    /// A worker dequeued the job and is about to run it (or reject it on
    /// an expired deadline). This is the "running" edge the network front
    /// streams to clients.
    Started {
        /// The id the final result will carry.
        job_id: u64,
        /// Worker that claimed the job.
        worker: usize,
        /// Calibration generation the job will run under.
        generation: u64,
        /// Pool-wide dequeue sequence number.
        sequence: u64,
    },
    /// The job finished; terminal.
    Finished(JobResult),
}

/// A claim on one submitted job's future [`JobResult`].
///
/// Handles can never hang: a worker that dies mid-job still delivers a
/// [`JobError::WorkerPanicked`] result through its delivery guard, and —
/// as a last-resort backstop — a handle whose channel disconnects without
/// a result synthesizes the same terminal error instead of panicking.
#[derive(Debug)]
pub struct JobHandle {
    /// The id the result will carry.
    pub job_id: u64,
    /// The label the job was submitted with (echoed in the backstop
    /// result if the worker vanishes).
    pub label: String,
    rx: mpsc::Receiver<JobEvent>,
}

impl JobHandle {
    /// The terminal result synthesized when the delivery channel
    /// disconnects without a [`JobEvent::Finished`] — a severed worker.
    /// Scheduling metadata (worker, sequence, generation) is unknowable at
    /// that point and reported as zero.
    fn orphaned(&self) -> JobResult {
        JobResult {
            job_id: self.job_id,
            label: self.label.clone(),
            outcome: Err(JobError::WorkerPanicked {
                message: "worker disconnected without delivering a result".to_string(),
            }),
            generation: 0,
            worker: 0,
            sequence: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Block until the job completes, discarding intermediate
    /// [`JobEvent::Started`] notifications. Jobs accepted by the service
    /// always complete — graceful shutdown drains the queue first, and a
    /// worker lost mid-job yields a [`JobError::WorkerPanicked`] result
    /// rather than a hang or a panic.
    pub fn wait(self) -> JobResult {
        loop {
            match self.rx.recv() {
                Ok(JobEvent::Started { .. }) => continue,
                Ok(JobEvent::Finished(result)) => return result,
                Err(mpsc::RecvError) => return self.orphaned(),
            }
        }
    }

    /// Block until the next [`JobEvent`] — `Started` when a worker claims
    /// the job, then `Finished`. The network front uses this to stream
    /// status updates; callers that only want the result use
    /// [`JobHandle::wait`]. A severed delivery channel yields a terminal
    /// `Finished` carrying [`JobError::WorkerPanicked`].
    pub fn recv_event(&self) -> JobEvent {
        match self.rx.recv() {
            Ok(event) => event,
            Err(mpsc::RecvError) => JobEvent::Finished(self.orphaned()),
        }
    }

    /// Non-blocking poll: the result if the job has finished, `None` while
    /// it is still pending. Intermediate `Started` events are consumed
    /// silently; a severed delivery channel yields a terminal
    /// [`JobError::WorkerPanicked`] result — a poll loop never spins on
    /// `None` forever.
    pub fn try_wait(&self) -> Option<JobResult> {
        loop {
            match self.rx.try_recv() {
                Ok(JobEvent::Started { .. }) => continue,
                Ok(JobEvent::Finished(result)) => return Some(result),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => return Some(self.orphaned()),
            }
        }
    }
}

/// Why the service refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service has been shut down; no further jobs are accepted.
    ShutDown,
    /// Admission control: the submitting client already has `capacity`
    /// jobs queued in this lane (see [`ServiceConfig::queue_capacity`]).
    /// The submission was rejected immediately — nothing blocked, nothing
    /// was queued, and other clients' budgets are unaffected.
    Busy {
        /// The lane that was full for this client.
        lane: Lane,
        /// The configured per-client, per-lane capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "transpile service is shut down"),
            ServeError::Busy { lane, capacity } => {
                write!(f, "{lane} lane is full ({capacity} jobs queued)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// How to build a [`TranspileService`] beyond the worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the pool (must be ≥ 1).
    pub workers: usize,
    /// Per-client, per-lane admission bound: `Some(n)` rejects a client's
    /// submission to a lane where it already holds `n` queued jobs with
    /// [`ServeError::Busy`]; `None` queues without limit (the in-process
    /// default — callers that own their batch can't overload themselves).
    /// One flooding client bounces off its own budget while everyone else
    /// keeps draining.
    pub queue_capacity: Option<usize>,
}

impl ServiceConfig {
    /// An unbounded-queue config with `workers` threads.
    pub fn new(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_capacity: None,
        }
    }

    /// Bound each client's per-lane backlog to `capacity` queued jobs
    /// (builder style).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = Some(capacity);
        self
    }
}

/// Aggregate counters reported by [`TranspileService::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total jobs processed over the service lifetime (including jobs
    /// terminated by a worker panic — every accepted job is counted
    /// exactly once).
    pub jobs: u64,
    /// Jobs processed by each worker slot (index = worker id; a respawned
    /// worker keeps accumulating in its slot). Sums to `jobs`.
    pub per_worker: Vec<u64>,
    /// How many times the supervisor replaced a dead worker thread.
    pub respawns: u64,
}

/// What travels through the queue: the job plus its delivery channel.
struct QueuedJob {
    id: u64,
    job: TranspileJob,
    tx: mpsc::Sender<JobEvent>,
}

/// Everything a worker thread (and its supervisor respawn path) needs,
/// bundled so a dying worker can hand the whole context to its successor.
#[derive(Clone)]
struct WorkerContext {
    target: Arc<Target>,
    queue: Arc<JobQueue<QueuedJob>>,
    completed: Arc<AtomicU64>,
    sequence: Arc<AtomicU64>,
    per_worker: Arc<Vec<AtomicU64>>,
    respawns: Arc<AtomicU64>,
    /// One slot per worker index; holds the JoinHandle of the thread
    /// currently serving that slot (replaced on respawn).
    slots: Arc<Mutex<Vec<Option<std::thread::JoinHandle<()>>>>>,
}

/// The batch transpilation service. See the [crate docs](self) for the
/// design; construct with [`TranspileService::new`] or — for bounded
/// admission control — [`TranspileService::with_config`].
pub struct TranspileService {
    target: Arc<Target>,
    queue: Arc<JobQueue<QueuedJob>>,
    ctx: WorkerContext,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TranspileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranspileService")
            .field("target", &self.target.name())
            .field("workers", &self.workers())
            .field("pending", &self.queue.len())
            .field("completed", &self.completed())
            .field("respawns", &self.respawns())
            .finish()
    }
}

impl TranspileService {
    /// Start a service with `workers` threads over one shared target and
    /// an unbounded queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(target: Arc<Target>, workers: usize) -> TranspileService {
        TranspileService::with_config(target, &ServiceConfig::new(workers))
    }

    /// Start a service from a full [`ServiceConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.queue_capacity` is
    /// `Some(0)`.
    pub fn with_config(target: Arc<Target>, config: &ServiceConfig) -> TranspileService {
        assert!(config.workers > 0, "a service needs at least one worker");
        let queue = Arc::new(match config.queue_capacity {
            Some(capacity) => JobQueue::bounded(capacity),
            None => JobQueue::new(),
        });
        let ctx = WorkerContext {
            target: Arc::clone(&target),
            queue: Arc::clone(&queue),
            completed: Arc::new(AtomicU64::new(0)),
            sequence: Arc::new(AtomicU64::new(0)),
            per_worker: Arc::new((0..config.workers).map(|_| AtomicU64::new(0)).collect()),
            respawns: Arc::new(AtomicU64::new(0)),
            slots: Arc::new(Mutex::new((0..config.workers).map(|_| None).collect())),
        };
        for worker in 0..config.workers {
            spawn_worker(worker, ctx.clone());
        }
        TranspileService {
            target,
            queue,
            ctx,
            next_id: AtomicU64::new(0),
        }
    }

    /// The shared target the workers transpile onto.
    pub fn target(&self) -> &Arc<Target> {
        &self.target
    }

    /// Number of worker slots (each kept filled by the supervisor).
    pub fn workers(&self) -> usize {
        self.ctx.per_worker.len()
    }

    /// Jobs accepted but not yet claimed by a worker (both lanes).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Jobs waiting in one lane.
    pub fn pending_in(&self, lane: Lane) -> usize {
        self.queue.lane_len(lane)
    }

    /// The per-client, per-lane admission bound, if the service was built
    /// with one.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue.capacity()
    }

    /// Jobs completed since the service started.
    pub fn completed(&self) -> u64 {
        self.ctx.completed.load(Ordering::SeqCst)
    }

    /// How many dead workers the supervisor has replaced so far.
    pub fn respawns(&self) -> u64 {
        self.ctx.respawns.load(Ordering::SeqCst)
    }

    /// Set a client's weighted-round-robin share of each lane (see
    /// [`queue::JobQueue::set_weight`]); the default weight is 1.
    pub fn set_client_weight(&self, client: u64, weight: usize) {
        self.queue.set_weight(client, weight);
    }

    /// Hot-swap the calibration of the shared target (see
    /// [`Target::swap_calibration`]). Jobs started after the swap are
    /// scored under the new calibration — with no service restart, no
    /// coverage-set rebuild, and no stale cached per-edge costs.
    ///
    /// # Errors
    ///
    /// Rejects calibrations that do not cover the target's topology; the
    /// running calibration stays in effect.
    pub fn swap_calibration(&self, calibration: Arc<Calibration>) -> Result<u64, CalibrationError> {
        self.target.swap_calibration(calibration)
    }

    /// Submit one job on behalf of the in-process caller (client 0);
    /// returns a handle to its future result.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] once [`TranspileService::shutdown`] has
    /// begun, [`ServeError::Busy`] when this client's lane budget is at
    /// its configured capacity (never blocks).
    pub fn submit(&self, job: TranspileJob) -> Result<JobHandle, ServeError> {
        self.submit_from(0, job)
    }

    /// Submit one job on behalf of a specific client. The client id is a
    /// scheduling identity only (the network front uses one per
    /// connection): it selects which fair-share sub-queue the job joins
    /// and whose admission budget it spends — it never affects results.
    ///
    /// # Errors
    ///
    /// Same as [`TranspileService::submit`].
    pub fn submit_from(&self, client: u64, job: TranspileJob) -> Result<JobHandle, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        let lane = job.lane;
        let label = job.label.clone();
        self.queue
            .push(QueuedJob { id, job, tx }, lane, client)
            .map_err(|e| match e {
                PushError::Closed(_) => ServeError::ShutDown,
                PushError::Full(_) => ServeError::Busy {
                    lane,
                    capacity: self.queue.capacity().expect("Full implies bounded"),
                },
            })?;
        Ok(JobHandle {
            job_id: id,
            label,
            rx,
        })
    }

    /// Submit a batch; handles come back in submission order, so waiting on
    /// them in order yields results independent of completion order.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] / [`ServeError::Busy`] — jobs already
    /// accepted from this batch still run to completion.
    pub fn submit_batch(&self, jobs: Vec<TranspileJob>) -> Result<Vec<JobHandle>, ServeError> {
        jobs.into_iter().map(|job| self.submit(job)).collect()
    }

    /// Submit a batch and block until every job has finished; results come
    /// back in submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShutDown`] / [`ServeError::Busy`] if the service
    /// stopped accepting before the whole batch was queued.
    pub fn run_batch(&self, jobs: Vec<TranspileJob>) -> Result<Vec<JobResult>, ServeError> {
        let handles = self.submit_batch(jobs)?;
        Ok(handles.into_iter().map(JobHandle::wait).collect())
    }

    /// Graceful shutdown: stop accepting jobs, let the workers drain
    /// everything already accepted, join them, and report per-worker
    /// counters. A worker that died (and was respawned) along the way is
    /// reflected in [`ServiceStats::respawns`], never a panic here.
    pub fn shutdown(self) -> ServiceStats {
        self.queue.close();
        join_workers(&self.ctx.slots);
        let per_worker: Vec<u64> = self
            .ctx
            .per_worker
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect();
        ServiceStats {
            jobs: per_worker.iter().sum(),
            per_worker,
            respawns: self.ctx.respawns.load(Ordering::SeqCst),
        }
    }
}

impl Drop for TranspileService {
    /// Dropping without [`TranspileService::shutdown`] still drains and
    /// joins (results for unclaimed handles are discarded by their dead
    /// receivers).
    fn drop(&mut self) {
        self.queue.close();
        join_workers(&self.ctx.slots);
    }
}

/// Join every live worker thread. Loops because a dying worker may store
/// its successor's handle *after* a round of joins began: joining the dead
/// thread guarantees its successor (if any) is already in the slot table,
/// so one more sweep sees it. Terminates because the queue is closed —
/// successors drain and exit instead of spawning further generations.
fn join_workers(slots: &Arc<Mutex<Vec<Option<std::thread::JoinHandle<()>>>>>) {
    loop {
        let taken: Vec<_> = {
            let mut guard = slots.lock().expect("worker slot table poisoned");
            guard.iter_mut().filter_map(Option::take).collect()
        };
        if taken.is_empty() {
            return;
        }
        for handle in taken {
            // The thread body is wrapped in catch_unwind; join errors are
            // impossible in practice, and never worth dying over here.
            let _ = handle.join();
        }
    }
}

/// Spawn (or respawn) the thread serving worker slot `worker`. The thread
/// runs [`worker_loop`] under `catch_unwind`; if the loop dies — a panic
/// escaping the per-job supervision, e.g. an injected
/// [`InjectedFault::PanicKill`] — the dying thread spawns its own
/// successor into the same slot with fresh (empty) scratch state, and the
/// in-flight job's delivery guard has already reported
/// [`JobError::WorkerPanicked`] to its handle.
fn spawn_worker(worker: usize, ctx: WorkerContext) {
    let slots = Arc::clone(&ctx.slots);
    let handle = std::thread::Builder::new()
        .name(format!("mirage-serve-{worker}"))
        .spawn(move || {
            let respawn_ctx = ctx.clone();
            let died = catch_unwind(AssertUnwindSafe(|| worker_loop(worker, &ctx))).is_err();
            if died {
                respawn_ctx.respawns.fetch_add(1, Ordering::SeqCst);
                spawn_worker(worker, respawn_ctx);
            }
        })
        .expect("spawn transpile worker thread");
    let mut guard = slots.lock().expect("worker slot table poisoned");
    // On respawn this replaces the dying thread's own handle; that thread
    // is past its last observable effect, so dropping (detaching) it is
    // sound and join_workers still joins the successor stored here.
    guard[worker] = Some(handle);
}

/// Delivery guard for one claimed job: exactly one terminal
/// [`JobEvent::Finished`] reaches the handle, even if the worker dies
/// between dequeue and delivery. Normal completion calls
/// [`Delivery::deliver`]; an unwind drops the guard, which reports
/// [`JobError::WorkerPanicked`] instead. Both paths count the job.
struct Delivery<'a> {
    tx: mpsc::Sender<JobEvent>,
    job_id: u64,
    label: String,
    generation: u64,
    worker: usize,
    sequence: u64,
    start: Instant,
    completed: &'a AtomicU64,
    processed: &'a AtomicU64,
    delivered: bool,
}

impl Delivery<'_> {
    fn deliver(mut self, outcome: Result<TranspiledCircuit, JobError>) {
        self.delivered = true;
        let label = std::mem::take(&mut self.label);
        self.send(label, outcome);
    }

    fn send(&self, label: String, outcome: Result<TranspiledCircuit, JobError>) {
        let result = JobResult {
            job_id: self.job_id,
            label,
            outcome,
            generation: self.generation,
            worker: self.worker,
            sequence: self.sequence,
            elapsed: self.start.elapsed(),
        };
        self.processed.fetch_add(1, Ordering::SeqCst);
        // Count before delivering, so a caller that has already observed
        // the result never reads a counter that excludes it. A dropped
        // handle (caller gave up) is not a worker error.
        self.completed.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(JobEvent::Finished(result));
    }
}

impl Drop for Delivery<'_> {
    fn drop(&mut self) {
        if self.delivered {
            return;
        }
        let label = std::mem::take(&mut self.label);
        let worker = self.worker;
        self.send(
            label,
            Err(JobError::WorkerPanicked {
                message: format!("worker {worker} died while running this job"),
            }),
        );
    }
}

/// Render a caught panic payload for [`JobError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker: pop until the queue terminates, announce each dequeue,
/// enforce the job's deadline, run it under its own seed (inside
/// `catch_unwind`, so a panicking transpile fails only its own job), and
/// deliver exactly one terminal result per job via [`Delivery`]. The
/// job's `trials.parallel` setting is honored: determinism comes from the
/// trial engine's seed pre-split and fixed reduction order, not from
/// forcing jobs single-threaded.
fn worker_loop(worker: usize, ctx: &WorkerContext) {
    while let Some(QueuedJob { id, job, tx }) = ctx.queue.pop() {
        let seq = ctx.sequence.fetch_add(1, Ordering::SeqCst);
        let generation = ctx.target.calibration_generation();
        // A dropped handle (caller gave up) is not a worker error, here or
        // for the final result below.
        let _ = tx.send(JobEvent::Started {
            job_id: id,
            worker,
            generation,
            sequence: seq,
        });
        let start = Instant::now();
        let delivery = Delivery {
            tx,
            job_id: id,
            label: job.label.clone(),
            generation,
            worker,
            sequence: seq,
            start,
            completed: &ctx.completed,
            processed: &ctx.per_worker[worker],
            delivered: false,
        };
        // An injected worker-kill panics *outside* the per-job
        // catch_unwind: the unwind drops `delivery` (which reports
        // WorkerPanicked to the handle) and escapes worker_loop, so the
        // supervisor in spawn_worker exercises the real respawn path.
        if job.fault == Some(InjectedFault::PanicKill) {
            panic!("injected fault: killing worker {worker} during job {id}");
        }
        // Deadline enforcement happens at dequeue: a job that sat in its
        // lane past its drop-dead time is rejected without burning pool
        // time on an answer nobody is waiting for.
        let expired = job.deadline.and_then(|d| start.checked_duration_since(d));
        let outcome = match expired {
            Some(late_by) => Err(JobError::DeadlineExceeded { late_by }),
            None => {
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if job.fault == Some(InjectedFault::Panic) {
                        panic!("injected fault: panic during job {id}");
                    }
                    let mut options = job.options.clone();
                    options.trials.seed = job.seed;
                    transpile(&job.circuit, &ctx.target, &options)
                }));
                match run {
                    Ok(transpiled) => transpiled.map_err(JobError::Transpile),
                    Err(payload) => Err(JobError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    }),
                }
            }
        };
        delivery.deliver(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::{ghz, qft, two_local_full};
    use mirage_core::calibration::EdgeCalibration;
    use mirage_core::trials::Metric;
    use mirage_core::verify::verify_routed;
    use mirage_core::RouterKind;
    use mirage_math::Rng;
    use mirage_topology::CouplingMap;

    fn quick_job(label: &str, circuit: Circuit, seed: u64) -> TranspileJob {
        let mut options = TranspileOptions::quick(RouterKind::Mirage, seed);
        options.trials.layout_trials = 2;
        options.trials.routing_trials = 2;
        TranspileJob::new(label, circuit, options)
    }

    fn test_batch() -> Vec<TranspileJob> {
        vec![
            quick_job("qft-4", qft(4, false), 11),
            quick_job("twolocal-4", two_local_full(4, 1, 7), 12),
            quick_job("ghz-5", ghz(5), 13),
            quick_job("twolocal-5", two_local_full(5, 1, 9), 14),
        ]
    }

    #[test]
    fn batch_results_arrive_in_submission_order_and_verify() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(2, 3)));
        let service = TranspileService::new(Arc::clone(&target), 2);
        let results = service.run_batch(test_batch()).unwrap();
        assert_eq!(results.len(), 4);
        for (i, (result, job)) in results.iter().zip(test_batch()).enumerate() {
            assert_eq!(result.job_id, i as u64);
            assert_eq!(result.label, job.label);
            assert_eq!(result.generation, 0);
            let out = result.outcome.as_ref().expect("job succeeds");
            assert!(verify_routed(
                &consolidate(&job.circuit),
                &out.as_routed(),
                &target
            ));
        }
        let stats = service.shutdown();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.per_worker.len(), 2);
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 4);
        assert_eq!(stats.respawns, 0);
    }

    #[test]
    fn results_are_bit_identical_across_pool_sizes() {
        // Sweep both axes of concurrency: worker-pool size AND in-job
        // trial parallelism. Every combination must produce the same
        // batch, bit for bit.
        let run = |workers: usize, in_job_parallel: bool| {
            let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(2, 3)));
            let service = TranspileService::new(target, workers);
            let jobs = test_batch()
                .into_iter()
                .map(|mut job| {
                    job.options.trials.parallel = in_job_parallel;
                    job
                })
                .collect();
            let results = service.run_batch(jobs).unwrap();
            results
                .into_iter()
                .map(|r| r.outcome.expect("job succeeds").circuit)
                .collect::<Vec<_>>()
        };
        let reference = run(1, false);
        for workers in [1, 4] {
            for in_job_parallel in [false, true] {
                assert_eq!(
                    reference,
                    run(workers, in_job_parallel),
                    "{workers} workers (in-job parallel: {in_job_parallel}) \
                     must not change results"
                );
            }
        }
    }

    #[test]
    fn big_job_parallel_trials_match_serial_fingerprint() {
        // One big job — QFT-64 on an 8×8 grid — with in-job trial
        // parallelism on must reproduce the serial run's fingerprint
        // exactly. This is the case the old worker-level
        // `trials.parallel = false` override existed to protect; the
        // trial engine now guarantees it at any thread count.
        let run = |parallel: bool, threads: usize| {
            let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(8, 8)));
            let service = TranspileService::new(target, 1);
            let mut options = TranspileOptions::quick(RouterKind::Mirage, 0x64);
            options.use_vf2 = false;
            options.trials.layout_trials = 2;
            options.trials.routing_trials = 1;
            options.trials.fwd_bwd_iters = 1;
            options.trials.parallel = parallel;
            options.trials.threads = threads;
            let job = TranspileJob::new("qft-64", qft(64, false), options);
            let results = service.run_batch(vec![job]).unwrap();
            let out = results
                .into_iter()
                .next()
                .unwrap()
                .outcome
                .expect("qft-64 routes");
            out.circuit.fingerprint()
        };
        let serial = run(false, 0);
        assert_eq!(
            serial,
            run(true, 2),
            "2-thread in-job parallelism must match the serial fingerprint"
        );
    }

    #[test]
    fn job_seed_overrides_option_seed() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(4)));
        let service = TranspileService::new(target, 1);
        let base = quick_job("a", two_local_full(4, 1, 7), 1);
        // Same options object, different job seeds: both must behave as if
        // the options carried that seed.
        let reseeded = base.clone().with_seed(99);
        let direct = quick_job("b", two_local_full(4, 1, 7), 99);
        let results = service
            .run_batch(vec![reseeded, direct])
            .unwrap()
            .into_iter()
            .map(|r| r.outcome.unwrap().circuit)
            .collect::<Vec<_>>();
        assert_eq!(results[0], results[1]);
        service.shutdown();
    }

    #[test]
    fn per_job_errors_do_not_poison_the_batch() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 2);
        let jobs = vec![
            quick_job("too-wide", ghz(5), 1),
            quick_job("fine", ghz(3), 2),
        ];
        let results = service.run_batch(jobs).unwrap();
        assert!(matches!(
            results[0].outcome,
            Err(JobError::Transpile(TranspileError::CircuitTooLarge { .. }))
        ));
        assert!(results[1].outcome.is_ok());
        assert_eq!(service.completed(), 2);
    }

    #[test]
    fn injected_panic_fails_only_its_own_job() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        let jobs = vec![
            quick_job("before", ghz(3), 1),
            quick_job("boom", ghz(3), 2).with_fault(InjectedFault::Panic),
            quick_job("after", ghz(3), 3),
        ];
        let results = service.run_batch(jobs).unwrap();
        assert!(results[0].outcome.is_ok());
        match &results[1].outcome {
            Err(JobError::WorkerPanicked { message }) => {
                assert!(message.contains("injected fault"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(results[2].outcome.is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.jobs, 3, "the panicked job still counts");
        assert_eq!(stats.respawns, 0, "a caught panic keeps the worker alive");
    }

    #[test]
    fn killed_worker_is_respawned_and_handle_never_hangs() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        let kill = service
            .submit(quick_job("kill", ghz(3), 1).with_fault(InjectedFault::PanicKill))
            .unwrap();
        match kill.wait().outcome {
            Err(JobError::WorkerPanicked { message }) => {
                assert!(message.contains("died"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The pool must keep serving from the same (sole) worker slot.
        let after = service.submit(quick_job("after", ghz(3), 2)).unwrap();
        assert!(after.wait().outcome.is_ok());
        let stats = service.shutdown();
        assert!(stats.respawns >= 1, "the dead worker must be respawned");
        assert_eq!(stats.jobs, 2);
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue_without_running() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        // A deadline already in the past: the worker must reject the job
        // the moment it dequeues it, near-instantly (ghz(3) itself would
        // succeed — the outcome proves it never ran).
        let job =
            quick_job("stale", ghz(3), 1).with_deadline(Instant::now() - Duration::from_millis(10));
        let result = service.submit(job).unwrap().wait();
        match &result.outcome {
            Err(JobError::DeadlineExceeded { late_by }) => {
                assert!(*late_by >= Duration::from_millis(10));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A future deadline leaves the job untouched.
        let job =
            quick_job("fresh", ghz(3), 1).with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(service.submit(job).unwrap().wait().outcome.is_ok());
    }

    #[test]
    fn bounded_service_rejects_with_busy_not_blocking() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::grid(2, 3)));
        let service =
            TranspileService::with_config(target, &ServiceConfig::new(1).with_queue_capacity(1));
        assert_eq!(service.queue_capacity(), Some(1));
        // Occupy the worker long enough to observe the queue: the first
        // job is dequeued (freeing its lane slot), the second fills the
        // submitting client's lane budget, the third must bounce.
        let blocker = service
            .submit(quick_job("blocker", qft(6, false), 1))
            .unwrap();
        // Wait until the worker has *dequeued* the blocker, so the lane
        // slot count is deterministic.
        match blocker.recv_event() {
            JobEvent::Started { job_id, .. } => assert_eq!(job_id, 0),
            JobEvent::Finished(_) => panic!("blocker finished before Started was observed"),
        }
        let queued = service.submit(quick_job("queued", ghz(3), 2)).unwrap();
        let err = service.submit(quick_job("bounced", ghz(3), 3)).unwrap_err();
        assert_eq!(
            err,
            ServeError::Busy {
                lane: Lane::Batch,
                capacity: 1
            }
        );
        assert!(err.to_string().contains("batch lane is full"));
        // The budget is per client: another client still gets in.
        let other = service
            .submit_from(7, quick_job("other-client", ghz(3), 5))
            .unwrap();
        // The interactive lane has its own budget — not affected by the
        // batch lane being full.
        let express = service
            .submit(quick_job("express", ghz(3), 4).with_lane(Lane::Interactive))
            .unwrap();
        assert!(blocker.wait().outcome.is_ok());
        assert!(queued.wait().outcome.is_ok());
        assert!(other.wait().outcome.is_ok());
        assert!(express.wait().outcome.is_ok());
    }

    #[test]
    fn interactive_lane_dequeues_before_batch() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        // Occupy the single worker, then queue batch jobs *before*
        // interactive ones; the dequeue sequence must still run every
        // interactive job first.
        let blocker = service
            .submit(quick_job("blocker", qft(6, false), 1))
            .unwrap();
        match blocker.recv_event() {
            JobEvent::Started { .. } => {}
            JobEvent::Finished(_) => panic!("blocker finished before Started was observed"),
        }
        let batch: Vec<_> = (0..3)
            .map(|i| {
                service
                    .submit(quick_job(&format!("batch-{i}"), ghz(3), 10 + i))
                    .unwrap()
            })
            .collect();
        let interactive: Vec<_> = (0..3)
            .map(|i| {
                service
                    .submit(
                        quick_job(&format!("inter-{i}"), ghz(3), 20 + i)
                            .with_lane(Lane::Interactive),
                    )
                    .unwrap()
            })
            .collect();
        blocker.wait();
        let batch_seqs: Vec<u64> = batch.into_iter().map(|h| h.wait().sequence).collect();
        let inter_seqs: Vec<u64> = interactive.into_iter().map(|h| h.wait().sequence).collect();
        let max_inter = *inter_seqs.iter().max().unwrap();
        let min_batch = *batch_seqs.iter().min().unwrap();
        assert!(
            max_inter < min_batch,
            "every interactive job (sequences {inter_seqs:?}) must dequeue before \
             any batch job (sequences {batch_seqs:?})"
        );
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(Arc::clone(&target), 1);
        let handle = service.submit(quick_job("early", ghz(3), 3)).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.jobs, 1, "shutdown drains accepted jobs");
        assert!(handle.wait().outcome.is_ok());
        let service2 = TranspileService::new(target, 1);
        let stats2 = service2.shutdown();
        assert_eq!(stats2.jobs, 0);
    }

    #[test]
    fn rejection_surfaces_as_shut_down_error() {
        // A closed queue inside a still-borrowed service: reach in via a
        // second service sharing the target is not possible, so exercise
        // the path through Drop ordering instead — submit to a service
        // whose queue we close manually.
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        service.queue.close();
        let err = service.submit(quick_job("late", ghz(3), 4)).unwrap_err();
        assert_eq!(err, ServeError::ShutDown);
        assert_eq!(err.to_string(), "transpile service is shut down");
    }

    #[test]
    fn calibration_swap_applies_to_subsequent_jobs() {
        let topo = CouplingMap::line(4);
        let target = Arc::new(Target::sqrt_iswap(topo.clone()));
        let service = TranspileService::new(Arc::clone(&target), 2);
        let mut options =
            TranspileOptions::quick(RouterKind::Mirage, 5).with_metric(Metric::EstimatedSuccess);
        options.trials.layout_trials = 2;
        options.trials.routing_trials = 2;
        let job = |label: &str| TranspileJob::new(label, two_local_full(4, 1, 7), options.clone());

        let before = service.run_batch(vec![job("before")]).unwrap();
        let before = &before[0];
        assert_eq!(before.generation, 0);
        let out = before.outcome.as_ref().unwrap();
        assert_eq!(out.metrics.estimated_success, 1.0, "uniform device");

        let noisy = Arc::new(Calibration::synthetic(&topo, &mut Rng::new(0xD21F7)));
        assert_eq!(service.swap_calibration(Arc::clone(&noisy)).unwrap(), 1);

        let after = service.run_batch(vec![job("after")]).unwrap();
        let after = &after[0];
        assert_eq!(after.generation, 1);
        let out = after.outcome.as_ref().unwrap();
        assert!(
            out.metrics.estimated_success > 0.0 && out.metrics.estimated_success < 1.0,
            "post-swap jobs must be scored under the noisy calibration"
        );

        // And the swap is equivalent to having built the target that way:
        // a fresh target with the same calibration produces the identical
        // result for the identical job.
        let fresh = Arc::new(
            Target::sqrt_iswap(topo)
                .with_calibration((*noisy).clone())
                .unwrap(),
        );
        let fresh_service = TranspileService::new(fresh, 1);
        let expected = fresh_service.run_batch(vec![job("fresh")]).unwrap();
        assert_eq!(
            after.outcome.as_ref().unwrap().circuit,
            expected[0].outcome.as_ref().unwrap().circuit,
            "hot-swap must be indistinguishable from a rebuild"
        );
    }

    #[test]
    fn swap_rejects_non_covering_calibration() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(4)));
        let service = TranspileService::new(target, 1);
        let partial = Calibration::from_edges(4, &[(0, 1, EdgeCalibration::default())]).unwrap();
        assert!(service.swap_calibration(Arc::new(partial)).is_err());
        assert_eq!(service.target().calibration_generation(), 0);
    }

    #[test]
    fn handles_support_polling() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        let handle = service.submit(quick_job("poll", ghz(3), 6)).unwrap();
        // Eventually the poll succeeds; don't assert on intermediate None
        // (the worker may already be done).
        let mut result = handle.try_wait();
        while result.is_none() {
            std::thread::yield_now();
            result = handle.try_wait();
        }
        assert!(result.unwrap().outcome.is_ok());
    }

    #[test]
    fn handles_stream_started_then_finished() {
        let target = Arc::new(Target::sqrt_iswap(CouplingMap::line(3)));
        let service = TranspileService::new(target, 1);
        let handle = service.submit(quick_job("events", ghz(3), 6)).unwrap();
        match handle.recv_event() {
            JobEvent::Started {
                job_id,
                worker,
                generation,
                ..
            } => {
                assert_eq!(job_id, 0);
                assert_eq!(worker, 0);
                assert_eq!(generation, 0);
            }
            JobEvent::Finished(_) => panic!("Finished must come after Started"),
        }
        match handle.recv_event() {
            JobEvent::Finished(result) => assert!(result.outcome.is_ok()),
            JobEvent::Started { .. } => panic!("only one Started per job"),
        }
    }
}
