//! Two-qubit gate matrices: the iSWAP family, canonical gates, and the
//! magic-basis transformation underlying the Weyl-chamber machinery.
//!
//! Canonical convention: `CAN(a,b,c) = exp(i(a·XX + b·YY + c·ZZ))`, giving
//! the coordinates used throughout the paper:
//!
//! | gate | coordinates |
//! |------|-------------|
//! | identity | (0, 0, 0) |
//! | CNOT / CZ / CPHASE(π) | (π/4, 0, 0) |
//! | iSWAP / CNS | (π/4, π/4, 0) |
//! | SWAP | (π/4, π/4, π/4) |
//! | iSWAP^α | (απ/4, απ/4, 0) |
//! | B gate | (π/4, π/8, 0) |

use mirage_math::{Complex64, Mat4};

/// CNOT with the **high** qubit (`q1`) as control.
pub fn cnot() -> Mat4 {
    let mut m = Mat4::zero();
    m.e[0][0] = Complex64::ONE;
    m.e[1][1] = Complex64::ONE;
    m.e[2][3] = Complex64::ONE;
    m.e[3][2] = Complex64::ONE;
    m
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz() -> Mat4 {
    Mat4::diag([
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ONE,
        Complex64::real(-1.0),
    ])
}

/// Controlled-phase `diag(1,1,1,e^{iθ})`.
pub fn cphase(theta: f64) -> Mat4 {
    Mat4::diag([
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ONE,
        Complex64::cis(theta),
    ])
}

/// SWAP.
pub fn swap() -> Mat4 {
    Mat4::swap()
}

/// iSWAP: swaps `|01⟩ ↔ |10⟩` with a phase of `i`.
pub fn iswap() -> Mat4 {
    let mut m = Mat4::zero();
    m.e[0][0] = Complex64::ONE;
    m.e[1][2] = Complex64::I;
    m.e[2][1] = Complex64::I;
    m.e[3][3] = Complex64::ONE;
    m
}

/// The fractional iSWAP family: `iSWAP^α = CAN(απ/4, απ/4, 0)` exactly
/// (α = 1 is iSWAP, α = 1/2 is √iSWAP, and so on).
pub fn iswap_alpha(alpha: f64) -> Mat4 {
    let t = alpha * std::f64::consts::FRAC_PI_4;
    can(t, t, 0.0)
}

/// √iSWAP.
pub fn sqrt_iswap() -> Mat4 {
    iswap_alpha(0.5)
}

/// CNS = CNOT followed by SWAP (`SWAP · CNOT` as a matrix); locally
/// equivalent to iSWAP — the paper's flagship mirror gate.
pub fn cns() -> Mat4 {
    swap().mul(&cnot())
}

/// Parametric SWAP family: `pSWAP(θ) = SWAP · CPHASE(θ)`, the mirror of the
/// CPHASE family (paper Fig. 6). `pSWAP(π) = iSWAP` up to local gates;
/// `pSWAP(0) = SWAP`.
pub fn pswap(theta: f64) -> Mat4 {
    swap().mul(&cphase(theta))
}

/// `RXX(θ) = exp(−iθ/2·XX)`.
pub fn rxx(theta: f64) -> Mat4 {
    can(-theta / 2.0, 0.0, 0.0)
}

/// `RYY(θ) = exp(−iθ/2·YY)`.
pub fn ryy(theta: f64) -> Mat4 {
    can(0.0, -theta / 2.0, 0.0)
}

/// `RZZ(θ) = exp(−iθ/2·ZZ)`.
pub fn rzz(theta: f64) -> Mat4 {
    can(0.0, 0.0, -theta / 2.0)
}

/// The magic (Bell) basis transformation `B`: columns are the magic states.
/// Conjugating a local gate `A⊗B` by `B` yields a real orthogonal matrix —
/// the foundation of the KAK decomposition and the Weyl coordinates.
///
/// This is the standard choice (as used by Cirq/Qiskit):
/// `B = 1/√2 · [[1,0,0,i], [0,i,1,0], [0,i,−1,0], [1,0,0,−i]]`.
pub fn magic_basis() -> Mat4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let o = Complex64::real(s);
    let i = Complex64::new(0.0, s);
    let zero = Complex64::ZERO;
    Mat4::from_rows([
        [o, zero, zero, i],
        [zero, i, o, zero],
        [zero, i, -o, zero],
        [o, zero, zero, -i],
    ])
}

/// The four eigenphases of `CAN(a,b,c)` on the magic-basis states, in the
/// column order of [`magic_basis`]: the diagonal of `B† · CAN · B`.
pub fn xx_yy_zz_phases(a: f64, b: f64, c: f64) -> [f64; 4] {
    // Magic columns are (in order): Φ+ ~ (|00⟩+|11⟩), i(|01⟩+|10⟩),
    // (|01⟩−|10⟩), i(|00⟩−|11⟩) — eigenvectors of XX,YY,ZZ with signs
    // (+,−,+), (+,+,−), (−,−,−), (−,+,+).
    [a - b + c, a + b - c, -a - b - c, -a + b + c]
}

/// The canonical two-qubit gate `CAN(a,b,c) = exp(i(a·XX + b·YY + c·ZZ))`,
/// built in closed form through the magic basis (no matrix exponential
/// needed: the generator is diagonal there).
pub fn can(a: f64, b: f64, c: f64) -> Mat4 {
    let phases = xx_yy_zz_phases(a, b, c);
    let d = Mat4::diag([
        Complex64::cis(phases[0]),
        Complex64::cis(phases[1]),
        Complex64::cis(phases[2]),
        Complex64::cis(phases[3]),
    ]);
    let bm = magic_basis();
    bm.mul(&d).mul(&bm.adjoint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneq;
    use mirage_math::Rng;

    const TOL: f64 = 1e-10;

    #[test]
    fn all_gates_unitary() {
        let gates = [
            cnot(),
            cz(),
            swap(),
            iswap(),
            sqrt_iswap(),
            iswap_alpha(1.0 / 3.0),
            iswap_alpha(0.25),
            cns(),
            cphase(0.7),
            pswap(1.3),
            rxx(0.5),
            ryy(-1.1),
            rzz(2.2),
            can(0.3, 0.2, 0.1),
            magic_basis(),
        ];
        for (i, g) in gates.iter().enumerate() {
            assert!(g.is_unitary(TOL), "gate {i} not unitary");
        }
    }

    #[test]
    fn cnot_squared_is_identity() {
        assert!(cnot().mul(&cnot()).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn iswap_alpha_composes() {
        let half = sqrt_iswap();
        assert!(half.mul(&half).approx_eq_up_to_phase(&iswap(), TOL));
        let quarter = iswap_alpha(0.25);
        let q4 = quarter.mul(&quarter).mul(&quarter).mul(&quarter);
        assert!(q4.approx_eq_up_to_phase(&iswap(), TOL));
    }

    #[test]
    fn iswap_matches_canonical() {
        let from_can = iswap_alpha(1.0);
        assert!(from_can.approx_eq_up_to_phase(&iswap(), TOL));
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(cphase(std::f64::consts::PI).approx_eq(&cz(), TOL));
    }

    #[test]
    fn pswap_zero_is_swap() {
        assert!(pswap(0.0).approx_eq(&swap(), TOL));
    }

    #[test]
    fn cns_is_swap_times_cnot() {
        // |10⟩ → CNOT → |11⟩ → SWAP → |11⟩; |01⟩ → |01⟩ → |10⟩.
        let m = cns();
        assert!(m.e[3][2].approx_eq(Complex64::ONE, TOL));
        assert!(m.e[2][1].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn magic_basis_is_unitary_and_realifies_locals() {
        let bm = magic_basis();
        assert!(bm.is_unitary(TOL));
        let mut rng = Rng::new(77);
        for _ in 0..20 {
            let a = crate::haar::haar_1q(&mut rng);
            let b = crate::haar::haar_1q(&mut rng);
            // Normalize to SU(2) so the conjugated matrix is exactly real
            // (U(2) global phases would leave a complex scalar behind).
            let a = a.scale(a.det().sqrt().inv());
            let b = b.scale(b.det().sqrt().inv());
            let local = Mat4::kron(&a, &b);
            let conj = local.conjugate_by(&bm);
            for row in &conj.e {
                for v in row {
                    assert!(v.im.abs() < 1e-9, "imag part {} too large", v.im);
                }
            }
        }
    }

    #[test]
    fn can_is_diagonal_in_magic_basis() {
        let g = can(0.4, 0.25, 0.1);
        let bm = magic_basis();
        let d = g.conjugate_by(&bm);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(d.e[i][j].abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn can_pi4_xx_is_cnot_class() {
        // CAN(π/4,0,0) should be locally equivalent to CNOT: the spectra of
        // G = (B†UB)ᵀ(B†UB) (with U normalized into SU(4)) agree as
        // multisets — this is the complete local invariant underlying the
        // Weyl coordinates.
        fn magic_spectrum(u: &Mat4) -> Vec<f64> {
            let bm = magic_basis();
            let m = u.to_special().conjugate_by(&bm);
            let g = m.transpose().mul(&m);
            let mut phases: Vec<f64> = mirage_math::eig::eigvals4(&g)
                .iter()
                .map(|z| z.arg())
                .collect();
            phases.sort_by(f64::total_cmp);
            phases
        }
        let a = magic_spectrum(&can(std::f64::consts::FRAC_PI_4, 0.0, 0.0));
        let b = magic_spectrum(&cnot());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn rzz_is_diagonal() {
        let g = rzz(0.9);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(g.e[i][j].abs() < TOL);
                }
            }
        }
    }

    #[test]
    fn rxx_hermitian_generator_symmetry() {
        // RXX(θ)† = RXX(−θ)
        assert!(rxx(0.8).adjoint().approx_eq(&rxx(-0.8), TOL));
    }

    #[test]
    fn cnot_action_on_basis() {
        // control = high qubit: |10⟩ → |11⟩.
        let m = cnot();
        assert!(m.e[3][2].approx_eq(Complex64::ONE, TOL));
        assert!(m.e[2][3].approx_eq(Complex64::ONE, TOL));
        assert!(m.e[0][0].approx_eq(Complex64::ONE, TOL));
        assert!(m.e[1][1].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn local_kron_helpers() {
        let u = Mat4::kron(&oneq::h(), &oneq::h());
        assert!(u.is_unitary(TOL));
    }
}
