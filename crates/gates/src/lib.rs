//! Quantum gate library for the MIRAGE reproduction.
//!
//! Provides the concrete matrices for every gate the paper manipulates:
//!
//! * [`oneq`] — single-qubit rotations, Cliffords, ZYZ Euler synthesis and
//!   extraction.
//! * [`twoq`] — two-qubit gates: CNOT, CZ, SWAP, the **iSWAP family**
//!   `iSWAP^α` (√iSWAP, ∛iSWAP, ∜iSWAP), CPHASE/pSWAP families, the
//!   CNS (= CNOT+SWAP) mirror gate, canonical gates `CAN(a,b,c)` and the
//!   magic-basis transformation.
//! * [`haar`] — Haar-random SU(2) and U(4) sampling (Ginibre + QR recipe).
//!
//! The two-qubit convention is little-endian `|q1 q0⟩`; controlled gates take
//! the **high** qubit (`q1`) as control. All of the Weyl-chamber machinery is
//! insensitive to this choice (canonical coordinates are invariant under
//! qubit reversal combined with local gates), but circuit simulation is not,
//! so the convention is fixed here once.
//!
//! ```
//! use mirage_gates::{cnot, cns, swap};
//! // CNS is by definition CNOT followed by SWAP.
//! let expect = swap().mul(&cnot());
//! assert!(cns().approx_eq(&expect, 1e-12));
//! ```
//!
//! ---
//! **Owns:** [`oneq`] (rotations, Cliffords, ZYZ), [`twoq`] (CNOT/CZ/SWAP,
//! the iSWAP family, CNS, `CAN(a,b,c)`), [`haar`] sampling.
//! **Paper:** §II background — the gate vocabulary and the CNS/mirror
//! gates of Fig. 1.

pub mod haar;
pub mod oneq;
pub mod twoq;

pub use haar::{haar_1q, haar_2q};
pub use oneq::{euler_zyz, h, rx, ry, rz, u_zyz};
pub use twoq::{
    can, cnot, cns, cphase, cz, iswap, iswap_alpha, magic_basis, pswap, rxx, ryy, rzz, sqrt_iswap,
    swap,
};
