//! Single-qubit gate matrices and Euler-angle synthesis.
//!
//! Conventions follow OpenQASM/Qiskit:
//! `RZ(θ) = exp(−iθZ/2)`, `RY(θ) = exp(−iθY/2)`, `RX(θ) = exp(−iθX/2)`, and
//! `U(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ)` up to global phase.

use mirage_math::{Complex64, Mat2};

/// Pauli X.
pub fn x() -> Mat2 {
    Mat2::from_real(0.0, 1.0, 1.0, 0.0)
}

/// Pauli Y.
pub fn y() -> Mat2 {
    Mat2::new(
        Complex64::ZERO,
        -Complex64::I,
        Complex64::I,
        Complex64::ZERO,
    )
}

/// Pauli Z.
pub fn z() -> Mat2 {
    Mat2::from_real(1.0, 0.0, 0.0, -1.0)
}

/// Hadamard.
pub fn h() -> Mat2 {
    Mat2::hadamard_like()
}

/// Phase gate S = diag(1, i).
pub fn s() -> Mat2 {
    Mat2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::I,
    )
}

/// S†.
pub fn sdg() -> Mat2 {
    s().adjoint()
}

/// T = diag(1, e^{iπ/4}).
pub fn t() -> Mat2 {
    phase(std::f64::consts::FRAC_PI_4)
}

/// T†.
pub fn tdg() -> Mat2 {
    t().adjoint()
}

/// Phase gate diag(1, e^{iλ}).
pub fn phase(lambda: f64) -> Mat2 {
    Mat2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(lambda),
    )
}

/// `RX(θ) = exp(−iθX/2)`.
pub fn rx(theta: f64) -> Mat2 {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    Mat2::new(c, s, s, c)
}

/// `RY(θ) = exp(−iθY/2)`.
pub fn ry(theta: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::from_real(c, -s, s, c)
}

/// `RZ(θ) = exp(−iθZ/2) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> Mat2 {
    Mat2::new(
        Complex64::cis(-theta / 2.0),
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(theta / 2.0),
    )
}

/// General single-qubit unitary from ZYZ Euler angles:
/// `U(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ)` (determinant 1; SU(2)).
pub fn u_zyz(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    rz(phi).mul(&ry(theta)).mul(&rz(lambda))
}

/// Extract ZYZ Euler angles and a global phase from an arbitrary 2×2
/// unitary: returns `(θ, φ, λ, α)` with
/// `U = e^{iα} · RZ(φ) · RY(θ) · RZ(λ)`.
///
/// The decomposition is exact for any unitary input (not only SU(2)).
///
/// # Panics
///
/// Does not panic; for non-unitary input the reconstruction simply will not
/// match.
pub fn euler_zyz(u: &Mat2) -> (f64, f64, f64, f64) {
    // Normalize into SU(2): divide by sqrt(det).
    let det = u.det();
    let det_sqrt = det.sqrt();
    let su = u.scale(det_sqrt.inv());
    let alpha0 = det_sqrt.arg();

    // SU(2) form: [[cos(θ/2)e^{-i(φ+λ)/2}, -sin(θ/2)e^{-i(φ-λ)/2}],
    //              [sin(θ/2)e^{ i(φ-λ)/2},  cos(θ/2)e^{ i(φ+λ)/2}]]
    let c = su.e[0][0].abs().clamp(0.0, 1.0);
    let theta = 2.0 * c.acos();

    let (phi, lam) = if su.e[0][0].abs() > su.e[1][0].abs() {
        // cos branch dominant
        let sum = 2.0 * su.e[1][1].arg(); // φ+λ
        if su.e[1][0].abs() < 1e-12 {
            // Diagonal: only φ+λ defined; put everything in λ.
            (0.0, sum)
        } else {
            let diff = 2.0 * su.e[1][0].arg(); // φ-λ
            ((sum + diff) / 2.0, (sum - diff) / 2.0)
        }
    } else {
        // sin branch dominant
        let diff = 2.0 * su.e[1][0].arg();
        if su.e[1][1].abs() < 1e-12 {
            // Anti-diagonal: only φ−λ defined.
            (diff, 0.0)
        } else {
            let sum = 2.0 * su.e[1][1].arg();
            ((sum + diff) / 2.0, (sum - diff) / 2.0)
        }
    };

    (theta, phi, lam, alpha0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::Rng;

    const TOL: f64 = 1e-10;

    #[test]
    fn rotations_are_unitary() {
        for theta in [-2.0, -0.5, 0.0, 0.3, 1.7, 3.2] {
            assert!(rx(theta).is_unitary(TOL));
            assert!(ry(theta).is_unitary(TOL));
            assert!(rz(theta).is_unitary(TOL));
        }
    }

    #[test]
    fn rotation_composition() {
        let a = rz(0.4).mul(&rz(0.6));
        assert!(a.approx_eq(&rz(1.0), TOL));
        let b = ry(-0.7).mul(&ry(0.7));
        assert!(b.approx_eq(&Mat2::identity(), TOL));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(rx(std::f64::consts::PI).approx_eq_up_to_phase(&x(), TOL));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let lhs = h().mul(&x()).mul(&h());
        assert!(lhs.approx_eq(&z(), TOL));
    }

    #[test]
    fn s_squared_is_z() {
        assert!(s().mul(&s()).approx_eq(&z(), TOL));
    }

    #[test]
    fn t_squared_is_s() {
        assert!(t().mul(&t()).approx_eq(&s(), TOL));
    }

    #[test]
    fn euler_roundtrip_special_cases() {
        let cases = [
            Mat2::identity(),
            x(),
            y(),
            z(),
            h(),
            s(),
            t(),
            rx(1.1),
            ry(-2.2),
            rz(0.123),
            phase(2.5),
        ];
        for (i, u) in cases.iter().enumerate() {
            let (theta, phi, lam, alpha) = euler_zyz(u);
            let rec = u_zyz(theta, phi, lam).scale(Complex64::cis(alpha));
            assert!(rec.approx_eq(u, 1e-9), "case {i} failed:\n{u}\nvs\n{rec}");
        }
    }

    #[test]
    fn euler_roundtrip_random() {
        let mut rng = Rng::new(1234);
        for _ in 0..200 {
            let u = crate::haar::haar_1q(&mut rng);
            let (theta, phi, lam, alpha) = euler_zyz(&u);
            let rec = u_zyz(theta, phi, lam).scale(Complex64::cis(alpha));
            assert!(rec.approx_eq(&u, 1e-9));
        }
    }

    #[test]
    fn u_zyz_det_is_one() {
        let u = u_zyz(0.3, 1.2, -0.8);
        assert!(u.det().approx_eq(Complex64::ONE, TOL));
    }
}
