//! Haar-random unitary sampling.
//!
//! Used for the paper's Haar-score computations (Tables I and II, Fig. 5)
//! and for randomized property tests. The 4×4 sampler follows Mezzadri's
//! recipe: draw a Ginibre matrix (i.i.d. complex Gaussians), QR-factorize,
//! and fix the phases with `diag(R)` so the result is exactly Haar.

use mirage_math::qr::{haar_fix, qr4};
use mirage_math::{Complex64, Mat2, Mat4, Rng};

/// Haar-random 2×2 unitary in SU(2), via the unit-quaternion parametrization
/// (four Gaussians normalized to the 3-sphere).
pub fn haar_1q(rng: &mut Rng) -> Mat2 {
    loop {
        let (a, b, c, d) = (
            rng.gaussian(),
            rng.gaussian(),
            rng.gaussian(),
            rng.gaussian(),
        );
        let n = (a * a + b * b + c * c + d * d).sqrt();
        if n < 1e-12 {
            continue;
        }
        let (a, b, c, d) = (a / n, b / n, c / n, d / n);
        // SU(2) ≅ unit quaternions: [[a+bi, c+di], [−c+di, a−bi]].
        return Mat2::new(
            Complex64::new(a, b),
            Complex64::new(c, d),
            Complex64::new(-c, d),
            Complex64::new(a, -b),
        );
    }
}

/// Haar-random 4×4 unitary (Ginibre + QR with phase fix).
pub fn haar_2q(rng: &mut Rng) -> Mat4 {
    loop {
        let mut g = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                g.e[i][j] = Complex64::new(rng.gaussian(), rng.gaussian());
            }
        }
        if let Some((q, r)) = qr4(&g) {
            return haar_fix(&q, &r);
        }
        // Singular Ginibre sample has probability zero; resample.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_1q_unitary_and_special() {
        let mut rng = Rng::new(101);
        for _ in 0..100 {
            let u = haar_1q(&mut rng);
            assert!(u.is_unitary(1e-12));
            assert!(u.det().approx_eq(Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn haar_2q_unitary() {
        let mut rng = Rng::new(202);
        for _ in 0..100 {
            let u = haar_2q(&mut rng);
            assert!(u.is_unitary(1e-9));
        }
    }

    #[test]
    fn haar_2q_trace_statistics() {
        // For Haar-distributed U(N), E[|Tr U|²] = 1.
        let mut rng = Rng::new(303);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| haar_2q(&mut rng).trace().norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "E[|tr|²] = {mean}");
    }

    #[test]
    fn haar_1q_column_isotropy() {
        // First column should be uniform on the 3-sphere: E[|u00|²] = 1/2.
        let mut rng = Rng::new(404);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| haar_1q(&mut rng).e[0][0].norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "E[|u00|²] = {mean}");
    }

    #[test]
    fn haar_2q_entry_isotropy() {
        // For Haar U(4): E[|u_ij|²] = 1/4 for every entry.
        let mut rng = Rng::new(505);
        let n = 20_000;
        let mut acc = [[0.0f64; 4]; 4];
        for _ in 0..n {
            let u = haar_2q(&mut rng);
            for i in 0..4 {
                for j in 0..4 {
                    acc[i][j] += u.e[i][j].norm_sqr();
                }
            }
        }
        for row in &acc {
            for &v in row {
                let mean = v / n as f64;
                assert!((mean - 0.25).abs() < 0.02, "E[|u|²] = {mean}");
            }
        }
    }
}
