//! Serialized coverage atlases: checked-in binary tables of prebuilt
//! [`CoverageSet`]s for the stock bases, so `Target` construction loads
//! geometry instead of re-running sampling + quickhull.
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   b"MIRATLAS"                      8 bytes
//! version u32 = 1
//! header  basis name (u32 len + utf-8), duration, coord (a, b, c),
//!         unitary fingerprint (FNV-1a over the 32 f64 bit patterns),
//!         build options (max_k, samples_per_k, inflation, mirrors, seed)
//! set     mirrors u8, tol f64, level count u32, then per level:
//!         k u32, cost f64, full u8, region count u32, then per region:
//!         rank u32, vertices (u32 count + 3×f64 each),
//!         halfspaces (u32 count + n[3] f64, d f64, equality u8 each)
//! footer  FNV-1a 64 checksum over all preceding bytes
//! ```
//!
//! Every `f64` is stored via [`f64::to_bits`], so a decoded set is
//! bit-identical to the encoded one; the derived [`PolytopeBank`] is then
//! identical too (bank construction is deterministic in the levels).
//! [`decode`] verifies the magic, version, checksum, *and* that the header
//! matches the caller's requested basis + options — any mismatch returns
//! `None` and the caller falls back to a fresh [`CoverageSet::build`], so
//! a stale or corrupt atlas can never change results, only cost time.
//!
//! Atlases for the stock bases live in `crates/coverage/atlases/` and are
//! embedded with `include_bytes!`; regenerate them after any change to the
//! hull or sampling code with `cargo run --release -p mirage-bench --bin
//! coverage_runtime -- --regen-atlases` (the pinned-fingerprint test in
//! `tests/coverage_geometry.rs` fails until the files and pins agree).
//!
//! [`PolytopeBank`]: crate::geom::PolytopeBank

use crate::geom::{ConvexPolytope, Halfspace};
use crate::set::{BasisGate, CoverageLevel, CoverageOptions, CoverageSet};

const MAGIC: &[u8; 8] = b"MIRATLAS";
const VERSION: u32 = 1;

/// FNV-1a 64-bit hash of a byte string (the checksum and fingerprint hash
/// used throughout the repo's golden files).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a fingerprint of a basis gate's unitary (bit patterns of all 32
/// matrix components in row-major re/im order).
fn unitary_fingerprint(basis: &BasisGate) -> u64 {
    let mut bytes = Vec::with_capacity(32 * 8);
    for row in &basis.unitary.e {
        for z in row {
            bytes.extend_from_slice(&z.re.to_bits().to_le_bytes());
            bytes.extend_from_slice(&z.im.to_bits().to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Serialize a coverage set together with the options it was built under.
pub fn encode(set: &CoverageSet, opts: &CoverageOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 16);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    // Basis identity.
    put_u32(&mut out, set.basis.name.len() as u32);
    out.extend_from_slice(set.basis.name.as_bytes());
    put_f64(&mut out, set.basis.duration);
    put_f64(&mut out, set.basis.coord.a);
    put_f64(&mut out, set.basis.coord.b);
    put_f64(&mut out, set.basis.coord.c);
    put_u64(&mut out, unitary_fingerprint(&set.basis));
    // Build options.
    put_u32(&mut out, opts.max_k as u32);
    put_u32(&mut out, opts.samples_per_k as u32);
    put_f64(&mut out, opts.inflation);
    out.push(u8::from(opts.mirrors));
    put_u64(&mut out, opts.seed);
    // The set itself.
    out.push(u8::from(set.mirrors));
    put_f64(&mut out, set.tol);
    put_u32(&mut out, set.levels.len() as u32);
    for level in &set.levels {
        put_u32(&mut out, level.k as u32);
        put_f64(&mut out, level.cost);
        out.push(u8::from(level.full));
        put_u32(&mut out, level.regions.len() as u32);
        for region in &level.regions {
            put_u32(&mut out, region.rank as u32);
            put_u32(&mut out, region.vertices.len() as u32);
            for v in &region.vertices {
                for &x in v {
                    put_f64(&mut out, x);
                }
            }
            put_u32(&mut out, region.halfspaces.len() as u32);
            for h in &region.halfspaces {
                for &x in &h.n {
                    put_f64(&mut out, x);
                }
                put_f64(&mut out, h.d);
                out.push(u8::from(h.equality));
            }
        }
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Byte-stream cursor; every read is bounds-checked so truncated or
/// corrupt atlases fail decoding instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
}

/// Sanity cap on decoded collection lengths; real atlases hold a handful
/// of levels with tens of halfspaces each.
const MAX_LEN: u32 = 1 << 20;

/// Decode an atlas, verifying integrity and that it describes exactly the
/// requested basis and build options. Returns `None` on any mismatch —
/// callers fall back to building fresh.
pub fn decode(bytes: &[u8], basis: &BasisGate, opts: &CoverageOptions) -> Option<CoverageSet> {
    if bytes.len() < MAGIC.len() + 12 {
        return None;
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(footer.try_into().ok()?) {
        return None;
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    if c.take(8)? != MAGIC || c.u32()? != VERSION {
        return None;
    }
    // Basis identity must match the caller's gate bit-for-bit.
    let name_len = c.u32()?;
    if name_len > MAX_LEN {
        return None;
    }
    let name = std::str::from_utf8(c.take(name_len as usize)?).ok()?;
    let same_basis = name == basis.name
        && c.f64()?.to_bits() == basis.duration.to_bits()
        && c.f64()?.to_bits() == basis.coord.a.to_bits()
        && c.f64()?.to_bits() == basis.coord.b.to_bits()
        && c.f64()?.to_bits() == basis.coord.c.to_bits()
        && c.u64()? == unitary_fingerprint(basis);
    let same_opts = c.u32()? as usize == opts.max_k
        && c.u32()? as usize == opts.samples_per_k
        && c.f64()?.to_bits() == opts.inflation.to_bits()
        && c.u8()? == u8::from(opts.mirrors)
        && c.u64()? == opts.seed;
    if !same_basis || !same_opts {
        return None;
    }
    let mirrors = c.u8()? != 0;
    let tol = c.f64()?;
    let n_levels = c.u32()?;
    if n_levels > MAX_LEN {
        return None;
    }
    let mut levels = Vec::with_capacity(n_levels as usize);
    for _ in 0..n_levels {
        let k = c.u32()? as usize;
        let cost = c.f64()?;
        let full = c.u8()? != 0;
        let n_regions = c.u32()?;
        if n_regions > MAX_LEN {
            return None;
        }
        let mut regions = Vec::with_capacity(n_regions as usize);
        for _ in 0..n_regions {
            let rank = c.u32()? as usize;
            let nv = c.u32()?;
            if nv > MAX_LEN {
                return None;
            }
            let mut vertices = Vec::with_capacity(nv as usize);
            for _ in 0..nv {
                vertices.push([c.f64()?, c.f64()?, c.f64()?]);
            }
            let nh = c.u32()?;
            if nh > MAX_LEN {
                return None;
            }
            let mut halfspaces = Vec::with_capacity(nh as usize);
            for _ in 0..nh {
                let n = [c.f64()?, c.f64()?, c.f64()?];
                let d = c.f64()?;
                let equality = c.u8()? != 0;
                halfspaces.push(Halfspace { n, d, equality });
            }
            regions.push(ConvexPolytope {
                vertices,
                halfspaces,
                rank,
            });
        }
        levels.push(CoverageLevel {
            k,
            regions,
            cost,
            full,
        });
    }
    if c.pos != body.len() || levels.is_empty() {
        return None;
    }
    Some(CoverageSet::from_parts(basis.clone(), levels, mirrors, tol))
}

/// The stock `(basis, build options)` pairs whose coverage sets ship as
/// checked-in atlases — the sets behind `Target::sqrt_iswap`,
/// `Target::cnot`, and `Target::cz` (paper-default construction
/// parameters; seeds match `mirage-core`'s shared statics), plus the
/// mirror-inclusive `iSWAP^(1/3)` set (paper §III-B): a dense union-of-
/// polytopes geometry whose bank is large enough to exercise the grid
/// classifier query path.
pub fn stock_specs() -> [(BasisGate, CoverageOptions); 4] {
    let opts = |seed: u64| CoverageOptions {
        max_k: 3,
        samples_per_k: 1200,
        inflation: 0.012,
        mirrors: false,
        seed,
    };
    [
        (BasisGate::iswap_root(2), opts(0xC0FFEE)),
        (BasisGate::cnot(), opts(0xC407)),
        (BasisGate::cz(), opts(0xC2)),
        (
            BasisGate::iswap_root(3),
            CoverageOptions {
                max_k: 5,
                samples_per_k: 1200,
                inflation: 0.012,
                mirrors: true,
                seed: 0xC133,
            },
        ),
    ]
}

/// Embedded atlas bytes for a stock basis name, if one ships in-crate.
pub fn stock_atlas_bytes(name: &str) -> Option<&'static [u8]> {
    match name {
        "sqrt_iswap" => Some(include_bytes!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/atlases/sqrt_iswap.atlas"
        ))),
        "cnot" => Some(include_bytes!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/atlases/cnot.atlas"
        ))),
        "cz" => Some(include_bytes!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/atlases/cz.atlas"
        ))),
        "iswap_1_3" => Some(include_bytes!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/atlases/iswap_1_3.atlas"
        ))),
        _ => None,
    }
}

/// Load the embedded atlas for `basis` if one exists and matches the
/// requested options; `None` means "build fresh".
pub fn load_stock(basis: &BasisGate, opts: &CoverageOptions) -> Option<CoverageSet> {
    decode(stock_atlas_bytes(&basis.name)?, basis, opts)
}

/// The coverage set for a stock basis name: atlas-loaded when the embedded
/// atlas matches the stock spec, freshly built otherwise.
///
/// # Panics
///
/// Panics when `name` is not one of the stock bases (see
/// [`stock_specs`]).
pub fn stock_set(name: &str) -> CoverageSet {
    let (basis, opts) = stock_specs()
        .into_iter()
        .find(|(b, _)| b.name == name)
        .unwrap_or_else(|| panic!("unknown stock basis {name:?}"));
    load_stock(&basis, &opts).unwrap_or_else(|| CoverageSet::build(basis, &opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> (CoverageSet, CoverageOptions) {
        let opts = CoverageOptions {
            max_k: 2,
            samples_per_k: 300,
            inflation: 0.01,
            mirrors: false,
            seed: 3,
        };
        (CoverageSet::build(BasisGate::iswap_root(2), &opts), opts)
    }

    #[test]
    fn round_trip_is_identical() {
        let (set, opts) = small_set();
        let bytes = encode(&set, &opts);
        let loaded = decode(&bytes, &set.basis, &opts).expect("decodes");
        assert_eq!(loaded.levels, set.levels);
        assert_eq!(loaded.mirrors, set.mirrors);
        assert!(loaded.tol.to_bits() == set.tol.to_bits());
        assert_eq!(loaded.bank(), set.bank(), "derived banks must match");
    }

    #[test]
    fn corruption_is_rejected() {
        let (set, opts) = small_set();
        let bytes = encode(&set, &opts);
        // Flip one byte anywhere — checksum catches it.
        for pos in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad, &set.basis, &opts).is_none(), "pos {pos}");
        }
        // Truncation.
        assert!(decode(&bytes[..bytes.len() - 9], &set.basis, &opts).is_none());
        assert!(decode(&[], &set.basis, &opts).is_none());
    }

    #[test]
    fn mismatched_basis_or_opts_rejected() {
        let (set, opts) = small_set();
        let bytes = encode(&set, &opts);
        let other_basis = BasisGate::cnot();
        assert!(decode(&bytes, &other_basis, &opts).is_none());
        let mut other_opts = opts.clone();
        other_opts.seed ^= 1;
        assert!(decode(&bytes, &set.basis, &other_opts).is_none());
        let mut other_inflation = opts.clone();
        other_inflation.inflation += 1e-9;
        assert!(decode(&bytes, &set.basis, &other_inflation).is_none());
    }

    #[test]
    fn stock_specs_cover_target_bases_plus_dense_grid_config() {
        let names: Vec<String> = stock_specs().iter().map(|(b, _)| b.name.clone()).collect();
        assert_eq!(names, ["sqrt_iswap", "cnot", "cz", "iswap_1_3"]);
        for (basis, opts) in stock_specs() {
            assert_eq!(opts.samples_per_k, 1200);
            if basis.name == "iswap_1_3" {
                // The dense atlas: mirror-inclusive and deep enough to
                // cross the grid-classifier row threshold.
                assert!(opts.mirrors);
                assert_eq!(opts.max_k, 5);
            } else {
                // The three `Target`-backed stock sets.
                assert!(!opts.mirrors);
                assert_eq!(opts.max_k, 3);
            }
        }
    }
}
