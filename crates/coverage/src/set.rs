//! Coverage sets: per-depth reachable regions of the Weyl chamber for a
//! given basis gate, in standard and mirror-inclusive flavors.
//!
//! The region reachable by `k` applications of a basis gate `B` interleaved
//! with arbitrary single-qubit gates is a convex polytope in canonical
//! coordinates (the monodromy polytope). We construct it by *sampling* the
//! ansatz — random interleaved local gates plus a systematic enumeration of
//! Pauli interleavings (which land on the polytope's extreme points) — and
//! hulling the resulting coordinates. A small outward inflation compensates
//! the residual inward bias of a finite sample.
//!
//! The **mirror-inclusive** variant (paper §III-B) additionally contains the
//! mirror image of every reachable point: `P ∪ mirror(P)`. The mirror map
//! (Eq. 1) is piecewise affine, so the image splits into at most two convex
//! pieces, which we keep as separate polytopes — the union is generally
//! *not* convex.
//!
//! # Coordinate representation
//!
//! Internally, regions live in the *alcove* representation
//! `(x, y, z)` with `π/4 ≥ x ≥ y ≥ |z|` (`z` signed), related to the
//! paper-chamber point `(a, b, c)` by `x = a, z = c` when `a ≤ π/4` and
//! `x = π/2 − a, z = −c` otherwise. Reachable sets are convex there;
//! in the paper chamber the base-plane fold (`(a,b,0) ≡ (π/2−a,b,0)`)
//! tears near-identity regions into two far-apart lobes, which a single
//! convex hull would spuriously bridge. Because every reachable set is
//! closed under complex conjugation (`z → −z`), regions are built
//! z-symmetrically, which also absorbs the `x = π/4` boundary seam.

use crate::geom::{ConvexPolytope, PolytopeBank};
use mirage_gates::{haar_1q, iswap_alpha, oneq};
use mirage_math::{Mat4, Rng, PI_2, PI_4};
use mirage_weyl::coords::{coords_of, WeylCoord};
#[cfg(test)]
use mirage_weyl::mirror::mirror_coord;

/// Volume of the full Weyl chamber tetrahedron, `π³/192`.
pub const CHAMBER_VOLUME: f64 = {
    let pi = std::f64::consts::PI;
    pi * pi * pi / 192.0
};

/// Convert a canonical paper-chamber point into the alcove representation
/// `(x, y, z)` with `π/4 ≥ x ≥ y ≥ |z|` (see the module docs).
#[inline(always)]
pub fn alcove_rep(w: &WeylCoord) -> [f64; 3] {
    // Select form: the fold test `a > π/4` is a coin flip on Haar inputs,
    // so both arms are computed and picked per component (LLVM emits a
    // conditional move, not a branch) — bit-identical to the branchy fold.
    let flip = w.a > PI_4;
    let x = if flip { PI_2 - w.a } else { w.a };
    let z = if flip { -w.c } else { w.c };
    [x, w.b, z]
}

/// A basis gate with its normalized time cost.
///
/// The paper normalizes `iSWAP` to unit duration with 99% fidelity;
/// fractional `iSWAP^α` gates have duration `α`.
#[derive(Debug, Clone)]
pub struct BasisGate {
    /// Human-readable name, e.g. `"sqrt_iswap"`.
    pub name: String,
    /// The gate matrix.
    pub unitary: Mat4,
    /// Normalized duration of one application (iSWAP = 1.0).
    pub duration: f64,
    /// Canonical coordinates of the gate.
    pub coord: WeylCoord,
}

impl BasisGate {
    /// The `iSWAP^(1/n)` basis gate (duration `1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn iswap_root(n: u32) -> BasisGate {
        assert!(n > 0, "iswap_root requires n ≥ 1");
        let alpha = 1.0 / f64::from(n);
        let u = iswap_alpha(alpha);
        BasisGate {
            name: match n {
                1 => "iswap".to_owned(),
                2 => "sqrt_iswap".to_owned(),
                _ => format!("iswap_1_{n}"),
            },
            unitary: u,
            duration: alpha,
            coord: WeylCoord::iswap_alpha(alpha),
        }
    }

    /// The CNOT basis gate (unit duration).
    pub fn cnot() -> BasisGate {
        BasisGate {
            name: "cnot".to_owned(),
            unitary: mirage_gates::cnot(),
            duration: 1.0,
            coord: WeylCoord::CNOT,
        }
    }

    /// The CZ basis gate (unit duration; same canonical class as CNOT).
    pub fn cz() -> BasisGate {
        BasisGate {
            name: "cz".to_owned(),
            unitary: mirage_gates::cz(),
            duration: 1.0,
            coord: WeylCoord::CNOT,
        }
    }
}

/// The coverage region for a fixed number of basis-gate applications.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageLevel {
    /// Number of basis-gate applications.
    pub k: usize,
    /// Union of convex pieces forming the reachable region.
    pub regions: Vec<ConvexPolytope>,
    /// Circuit cost of this level: `k × basis duration`.
    pub cost: f64,
    /// True when this level covers the entire chamber.
    pub full: bool,
}

impl CoverageLevel {
    /// Membership query with tolerance.
    pub fn contains(&self, w: &WeylCoord, tol: f64) -> bool {
        if self.full {
            return true;
        }
        let p = alcove_rep(w);
        self.regions.iter().any(|r| r.contains(p, tol))
    }

    /// Euclidean distance from the point to the region (0 when inside).
    pub fn distance(&self, w: &WeylCoord) -> f64 {
        if self.full {
            return 0.0;
        }
        let p = alcove_rep(w);
        self.regions
            .iter()
            .map(|r| r.distance(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Options controlling coverage-set construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageOptions {
    /// Maximum ansatz depth to build.
    pub max_k: usize,
    /// Random interleaved-local samples per depth.
    pub samples_per_k: usize,
    /// Outward inflation applied to each hull (radians).
    pub inflation: f64,
    /// Include mirror images (paper §III-B).
    pub mirrors: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            max_k: 4,
            samples_per_k: 4000,
            inflation: 0.01,
            mirrors: false,
            seed: 0x5EED,
        }
    }
}

/// Per-depth coverage regions for a basis gate.
///
/// Membership and cost queries (`min_k`, `min_cost`, `cost_or_max`,
/// `haar_coverage`, `level_distance`) run on a packed [`PolytopeBank`]:
/// the per-level polytopes' halfspaces flattened into contiguous
/// structure-of-arrays rows with a loose bounding-box/dominant-row tier in
/// front, and the `alcove_rep` conversion computed once per lookup. The
/// `levels` field remains the authoritative geometry (the bank is derived
/// from it at construction and after atlas loading) and doubles as the
/// reference implementation behind the `*_legacy_geom` query twins; treat
/// it as read-only — mutating a level's polytopes would desynchronize the
/// bank.
#[derive(Debug, Clone)]
pub struct CoverageSet {
    /// The basis gate this set describes.
    pub basis: BasisGate,
    /// Levels in ascending `k`, starting at `k = 1`.
    pub levels: Vec<CoverageLevel>,
    /// Whether mirror images were included.
    pub mirrors: bool,
    /// Membership tolerance used by cost queries.
    pub tol: f64,
    /// Packed query-path geometry derived from `levels`.
    bank: PolytopeBank,
    /// Per-level query plan derived from `levels` and `bank`.
    plan: Vec<LevelPlan>,
    /// Precomputed `min_k` grid classifier derived from `levels`. Only
    /// built for dense sets (bank rows > [`GRID_MIN_ROWS`]): the stock
    /// mirror-free sets are a dozen rows total, where a flat monotone walk
    /// over the SoA bank is already at the hardware floor and any extra
    /// indirection — including a grid lookup — is pure loss.
    grid: Option<MinKGrid>,
}

/// Everything the `min_k` walk touches for one level, packed so the hot
/// loop never dereferences the full [`CoverageLevel`]s: the `k` answer,
/// the full-chamber flag, the bank polytope-id range, and the union of the
/// member polytopes' loose bounding boxes (a conservative whole-level
/// reject for `tol ≤` the loose cap; infinite — never rejecting — when the
/// set tolerance exceeds it).
#[derive(Debug, Clone)]
struct LevelPlan {
    k: u32,
    full: bool,
    s: u32,
    e: u32,
    lo: [f64; 3],
    hi: [f64; 3],
}

/// Cells per axis of the precomputed `min_k` grid classifier. Sized so
/// the whole cell array (`GRID_N³` bytes) stays L1-resident — a coarser
/// grid with a fast load beats a finer one that spills to L2.
const GRID_N: usize = 16;
/// Total cell count.
const GRID_CELLS: usize = GRID_N * GRID_N * GRID_N;
/// Base of the boundary-cell encoding: value `CELL_WALK_FROM + (li << 3) +
/// fb` means "the cell straddles the boundary of exactly one level, index
/// `li`; every earlier level is provably outside the whole cell; and `fb`
/// pre-resolves what happens when the point misses level `li` too":
/// `fb = 0` → `None`, `fb = 1..=6` → `Some(fb)` (the first deeper level
/// containing the whole cell, everything between provably outside),
/// `fb = 7` → not pre-resolvable, fall back to the banked walk from `li`.
/// So a boundary query costs one region membership test plus a constant —
/// never a full level walk — except in the rare `fb = 7` cells.
const CELL_WALK_FROM: u8 = 200;
/// `fb` nibble meaning "walk, not pre-resolved".
const FB_WALK: u8 = 7;
/// Highest level index encodable in a boundary cell; deeper straddles
/// clamp down to this with `fb = FB_WALK` (walking from an earlier level
/// is always correct, merely slower).
const MAX_ENC_LI: u8 = 5;
/// Sentinel cell value: every point in the cell is outside all built
/// levels (`min_k` = `None`).
const CELL_NONE: u8 = 254;
/// Safety margin (on the halfspace-excess scale) separating grid-cell
/// decisions from the membership tolerance: a cell is only decided when it
/// clears the tolerance by this much on every row, so the rounding of a
/// per-query excess evaluation (~1e-16 here) can never disagree with a
/// decided cell.
const GRID_MARGIN: f64 = 1e-12;
/// Bank-row threshold above which the grid classifier pays for itself.
/// Below it (all stock mirror-free sets) the flat walk wins outright.
const GRID_MIN_ROWS: usize = 24;

/// Precomputed uniform grid over the alcove box `[0, π/4]² × [−π/4, π/4]`:
/// each cell stores the `min_k` answer shared by *every* point of the cell,
/// or a [`CELL_WALK_FROM`]-encoded partial decision when the cell straddles
/// a boundary. Decisions use interval bounds of the halfspace excess over
/// the closed cell (exact for linear functions, extrema at box corners)
/// plus [`GRID_MARGIN`], so a decided cell is provably uniform — the grid
/// changes query cost, never query answers. Boundary cells are a vanishing
/// fraction (surface × cell width), so almost every lookup is one quantize
/// + one byte load.
#[derive(Debug, Clone)]
struct MinKGrid {
    lo: [f64; 3],
    hi: [f64; 3],
    inv_w: [f64; 3],
    cells: Box<[u8; GRID_CELLS]>,
}

impl MinKGrid {
    fn build(levels: &[CoverageLevel], tol: f64) -> MinKGrid {
        let lo = [0.0, 0.0, -PI_4];
        let hi = [PI_4, PI_4, PI_4];
        let w = [
            (hi[0] - lo[0]) / GRID_N as f64,
            (hi[1] - lo[1]) / GRID_N as f64,
            (hi[2] - lo[2]) / GRID_N as f64,
        ];
        let mut cells = Box::new([CELL_WALK_FROM; GRID_CELLS]);
        for ix in 0..GRID_N {
            for iy in 0..GRID_N {
                for iz in 0..GRID_N {
                    let clo = [
                        lo[0] + ix as f64 * w[0],
                        lo[1] + iy as f64 * w[1],
                        lo[2] + iz as f64 * w[2],
                    ];
                    let chi = [clo[0] + w[0], clo[1] + w[1], clo[2] + w[2]];
                    cells[(ix * GRID_N + iy) * GRID_N + iz] =
                        Self::classify_cell(levels, tol, clo, chi);
                }
            }
        }
        MinKGrid {
            lo,
            hi,
            inv_w: [1.0 / w[0], 1.0 / w[1], 1.0 / w[2]],
            cells,
        }
    }

    /// The shared `min_k` answer for the closed cell `[clo, chi]`, or a
    /// [`CELL_WALK_FROM`] boundary encoding when a level's boundary crosses
    /// it (see the constant's docs for the `(li, fb)` layout).
    fn classify_cell(levels: &[CoverageLevel], tol: f64, clo: [f64; 3], chi: [f64; 3]) -> u8 {
        // Interval verdict per level: Inside (whole cell provably in some
        // region), Outside (provably in none), Straddle.
        #[derive(PartialEq)]
        enum V {
            Inside,
            Outside,
            Straddle,
        }
        let verdict = |level: &CoverageLevel| {
            if level.full {
                return V::Inside;
            }
            let mut all_outside = true;
            for region in &level.regions {
                let mut cell_inside = true;
                let mut cell_outside = false;
                for h in &region.halfspaces {
                    let (mn, mx) = Self::excess_interval(h.n, h.d, clo, chi);
                    if mx > tol - GRID_MARGIN {
                        cell_inside = false;
                    }
                    if mn > tol + GRID_MARGIN {
                        cell_outside = true;
                        break;
                    }
                }
                if cell_inside {
                    return V::Inside;
                }
                if !cell_outside {
                    all_outside = false;
                }
            }
            if all_outside {
                V::Outside
            } else {
                V::Straddle
            }
        };

        let mut straddle: Option<usize> = None;
        for (li, level) in levels.iter().enumerate() {
            debug_assert!(
                level.k < CELL_WALK_FROM as usize,
                "depth overflows grid cell"
            );
            match (verdict(level), straddle) {
                (V::Inside, None) => return level.k as u8,
                (V::Inside, Some(s)) => {
                    // One straddling level, then a whole-cell hit: a point
                    // missing level `s` is answered by this level's k.
                    let fb = if level.k <= 6 { level.k as u8 } else { FB_WALK };
                    return Self::encode_boundary(s, fb);
                }
                (V::Outside, _) => {}
                (V::Straddle, None) => straddle = Some(li),
                (V::Straddle, Some(s)) => return Self::encode_boundary(s, FB_WALK),
            }
        }
        match straddle {
            // All levels past the straddle are provably outside: a miss of
            // level `s` is a miss of everything.
            Some(s) => Self::encode_boundary(s, 0),
            None => CELL_NONE,
        }
    }

    /// Pack a `(straddling level, fallback)` boundary verdict into a cell
    /// byte, clamping un-encodable level indices down to a safe walk.
    fn encode_boundary(li: usize, fb: u8) -> u8 {
        if li > MAX_ENC_LI as usize {
            return CELL_WALK_FROM + (MAX_ENC_LI << 3) + FB_WALK;
        }
        let v = CELL_WALK_FROM + ((li as u8) << 3) + fb;
        debug_assert!(v < CELL_NONE);
        v
    }

    /// Exact `[min, max]` of the linear excess `n·x − d` over the box —
    /// extrema of a linear function sit at box corners, one axis at a time.
    fn excess_interval(n: [f64; 3], d: f64, lo: [f64; 3], hi: [f64; 3]) -> (f64, f64) {
        let mut mn = -d;
        let mut mx = -d;
        for a in 0..3 {
            if n[a] >= 0.0 {
                mn += n[a] * lo[a];
                mx += n[a] * hi[a];
            } else {
                mn += n[a] * hi[a];
                mx += n[a] * lo[a];
            }
        }
        (mn, mx)
    }

    /// The cell value at an alcove point. Alcove coordinates are always
    /// inside the grid domain (chamber invariants: `π/4 ≥ x ≥ y ≥ |z|`),
    /// so no range check is needed: the saturating float→int casts clamp
    /// below and the `min` clamps above, which also folds `p == hi` into
    /// the last (closed) cell.
    #[inline(always)]
    fn lookup(&self, p: [f64; 3]) -> u8 {
        debug_assert!((0..3).all(|a| p[a] >= self.lo[a] - 1e-12 && p[a] <= self.hi[a] + 1e-12));
        let ix = (((p[0] - self.lo[0]) * self.inv_w[0]) as usize).min(GRID_N - 1);
        let iy = (((p[1] - self.lo[1]) * self.inv_w[1]) as usize).min(GRID_N - 1);
        let iz = (((p[2] - self.lo[2]) * self.inv_w[2]) as usize).min(GRID_N - 1);
        self.cells[(ix * GRID_N + iy) * GRID_N + iz]
    }
}

impl CoverageSet {
    /// Build the coverage set for `basis` under the given options.
    pub fn build(basis: BasisGate, opts: &CoverageOptions) -> CoverageSet {
        let mut rng = Rng::new(opts.seed);
        let mut levels = Vec::with_capacity(opts.max_k);
        let probes = chamber_probes();
        for k in 1..=opts.max_k {
            let pts = sample_ansatz_coords(&basis.unitary, k, opts.samples_per_k, &mut rng);
            let regions = build_regions(&pts, opts.inflation, opts.mirrors);
            let level_tmp = CoverageLevel {
                k,
                regions,
                cost: k as f64 * basis.duration,
                full: false,
            };
            let full = probes.iter().all(|w| level_tmp.contains(w, 1e-9));
            let mut level = level_tmp;
            level.full = full;
            let is_full = level.full;
            levels.push(level);
            if is_full {
                break;
            }
        }
        Self::from_parts(basis, levels, opts.mirrors, 1e-9)
    }

    /// Assemble a set from prebuilt levels (used by [`build`](Self::build)
    /// and by atlas loading), deriving the packed bank.
    pub(crate) fn from_parts(
        basis: BasisGate,
        levels: Vec<CoverageLevel>,
        mirrors: bool,
        tol: f64,
    ) -> CoverageSet {
        let mut bank = PolytopeBank::new();
        let mut plan = Vec::with_capacity(levels.len());
        for level in &levels {
            let start = bank.poly_count();
            if !level.full {
                for region in &level.regions {
                    bank.push(region);
                }
            }
            let end = bank.poly_count();
            // Union of the member polytopes' loose boxes. Only valid as a
            // reject filter for tolerances up to the loose cap; a looser
            // set tolerance disables it (infinite box).
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for id in start..end {
                let (plo, phi) = bank.poly_box(id);
                for a in 0..3 {
                    lo[a] = lo[a].min(plo[a]);
                    hi[a] = hi[a].max(phi[a]);
                }
            }
            if level.full || tol > crate::geom::LOOSE_TOL_CAP {
                lo = [f64::NEG_INFINITY; 3];
                hi = [f64::INFINITY; 3];
            }
            plan.push(LevelPlan {
                k: level.k as u32,
                full: level.full,
                s: start,
                e: end,
                lo,
                hi,
            });
        }
        let grid = (bank.row_count() > GRID_MIN_ROWS).then(|| MinKGrid::build(&levels, tol));
        CoverageSet {
            basis,
            levels,
            mirrors,
            tol,
            bank,
            plan,
            grid,
        }
    }

    /// The packed query-path geometry (for benches and equivalence tests).
    pub fn bank(&self) -> &PolytopeBank {
        &self.bank
    }

    /// Banked membership for level index `li` at an alcove point.
    #[inline]
    fn level_contains_banked(&self, li: usize, p: [f64; 3], tol: f64) -> bool {
        let plan = &self.plan[li];
        if plan.full {
            return true;
        }
        (plan.s..plan.e).any(|id| self.bank.contains(id, p, tol))
    }

    /// Minimum number of applications whose region contains `w`, or `None`
    /// if no built level reaches it.
    #[inline]
    pub fn min_k(&self, w: &WeylCoord) -> Option<usize> {
        // One alcove conversion per lookup. Small sets (no grid) take the
        // flat monotone walk over the SoA bank; dense sets consult the
        // grid classifier, where almost every query resolves with a
        // quantize + one byte load and boundary-straddling cells fall back
        // to a single-level test or the banked walk. This is the router's
        // innermost cost query.
        let p = alcove_rep(w);
        let Some(grid) = &self.grid else {
            return self.min_k_walk_flat(p);
        };
        let cell = grid.lookup(p);
        if cell < CELL_WALK_FROM {
            return Some(cell as usize);
        }
        if cell == CELL_NONE {
            return None;
        }
        self.min_k_boundary(cell, p)
    }

    /// Flat monotone walk for small banks: no grid, no per-level box
    /// filter — on a dozen rows the membership scan itself is cheaper
    /// than any filtering in front of it.
    #[inline(always)]
    fn min_k_walk_flat(&self, p: [f64; 3]) -> Option<usize> {
        let tol = self.tol;
        for plan in &self.plan {
            if plan.full {
                return Some(plan.k as usize);
            }
            for id in plan.s..plan.e {
                if self.bank.contains(id, p, tol) {
                    return Some(plan.k as usize);
                }
            }
        }
        None
    }

    /// Resolve a boundary cell: test the one straddling level, then use
    /// the precomputed fallback (see `CELL_WALK_FROM` docs). Kept out of
    /// [`min_k`](Self::min_k) so the decided-cell fast path stays small
    /// enough to inline everywhere.
    fn min_k_boundary(&self, cell: u8, p: [f64; 3]) -> Option<usize> {
        let v = cell - CELL_WALK_FROM;
        let (li, fb) = ((v >> 3) as usize, v & 7);
        if fb == FB_WALK {
            return self.min_k_walk(p, li);
        }
        if self.level_contains_banked(li, p, self.tol) {
            return Some(self.plan[li].k as usize);
        }
        if fb == 0 {
            None
        } else {
            Some(fb as usize)
        }
    }

    /// The banked level walk behind [`min_k`](Self::min_k): monotone in
    /// `k`, so the first containing level exits early; whole-level loose
    /// box reject before the strict bank rows. `start_li` skips levels the
    /// grid cell already proved empty.
    fn min_k_walk(&self, p: [f64; 3], start_li: usize) -> Option<usize> {
        let tol = self.tol;
        for plan in &self.plan[start_li..] {
            if plan.full {
                return Some(plan.k as usize);
            }
            let inside = (p[0] >= plan.lo[0]) as u8
                & (p[0] <= plan.hi[0]) as u8
                & (p[1] >= plan.lo[1]) as u8
                & (p[1] <= plan.hi[1]) as u8
                & (p[2] >= plan.lo[2]) as u8
                & (p[2] <= plan.hi[2]) as u8;
            if inside == 0 {
                continue;
            }
            for id in plan.s..plan.e {
                if self.bank.contains(id, p, tol) {
                    return Some(plan.k as usize);
                }
            }
        }
        None
    }

    /// Minimum circuit cost (duration) to reach `w`; `None` if unreachable
    /// within the built depth.
    pub fn min_cost(&self, w: &WeylCoord) -> Option<f64> {
        self.min_k(w).map(|k| k as f64 * self.basis.duration)
    }

    /// Minimum cost with a worst-case fallback: unreachable coordinates are
    /// charged one application beyond the deepest built level. Keeps router
    /// cost functions total.
    pub fn cost_or_max(&self, w: &WeylCoord) -> f64 {
        self.min_cost(w)
            .unwrap_or((self.levels.len() as f64 + 1.0) * self.basis.duration)
    }

    /// Euclidean distance from `w` to level `k`'s region (0 inside, `None`
    /// when no such level was built). Runs Dykstra on the packed bank rows
    /// in original halfspace order — bit-identical to the per-polytope
    /// [`CoverageLevel::distance`].
    pub fn level_distance(&self, k: usize, w: &WeylCoord) -> Option<f64> {
        let li = self.levels.iter().position(|l| l.k == k)?;
        if self.levels[li].full {
            return Some(0.0);
        }
        let p = alcove_rep(w);
        let plan = &self.plan[li];
        Some(
            (plan.s..plan.e)
                .map(|id| self.bank.distance(id, p))
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// Reference `min_k` on the seed-era per-level polytope walk. Kept as
    /// the semantic baseline for the banked fast path: property tests and
    /// the legacy column in the `coverage_runtime` bench compare against
    /// it. Frozen to the seed code shape — per-level region scan over the
    /// heap-built `Vec`s, with the seed's branchy alcove fold re-done per
    /// level — so the bench column times what the seed actually shipped.
    pub fn min_k_legacy_geom(&self, w: &WeylCoord) -> Option<usize> {
        let seed_alcove = |w: &WeylCoord| -> [f64; 3] {
            if w.a <= PI_4 {
                [w.a, w.b, w.c]
            } else {
                [PI_2 - w.a, w.b, -w.c]
            }
        };
        self.levels
            .iter()
            .find(|l| {
                l.full || {
                    let p = seed_alcove(w);
                    l.regions.iter().any(|r| r.contains(p, self.tol))
                }
            })
            .map(|l| l.k)
    }

    /// Reference `cost_or_max` on the seed-era per-level polytope walk
    /// (see [`min_k_legacy_geom`](Self::min_k_legacy_geom)).
    pub fn cost_or_max_legacy_geom(&self, w: &WeylCoord) -> f64 {
        self.min_k_legacy_geom(w)
            .map(|k| k as f64 * self.basis.duration)
            .unwrap_or((self.levels.len() as f64 + 1.0) * self.basis.duration)
    }

    /// The deepest built level.
    pub fn max_level(&self) -> &CoverageLevel {
        self.levels.last().expect("at least one level is built")
    }

    /// Fraction of `n` Haar-random gates whose coordinates land in level
    /// `k`'s region (Haar-weighted coverage volume of that level).
    pub fn haar_coverage(&self, k: usize, n: usize, seed: u64) -> f64 {
        let li = match self.levels.iter().position(|l| l.k == k) {
            Some(i) => i,
            None => return 0.0,
        };
        let mut rng = Rng::new(seed);
        let mut hits = 0usize;
        for _ in 0..n {
            let w = coords_of(&mirage_gates::haar_2q(&mut rng));
            if self.level_contains_banked(li, alcove_rep(&w), self.tol) {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }
}

/// Sample canonical coordinates of the depth-`k` ansatz
/// `B · L₁ · B · L₂ ⋯ B` (exterior locals do not move the coordinates).
fn sample_ansatz_coords(basis: &Mat4, k: usize, samples: usize, rng: &mut Rng) -> Vec<[f64; 3]> {
    let mut pts: Vec<[f64; 3]> = Vec::with_capacity(samples + 64);

    // Exact vertex seeding via Clifford interleavings. Conjugating a
    // canonical gate by single-qubit Cliffords realizes every signed axis
    // permutation of its interaction vector, and the canonical generators
    // XX/YY/ZZ commute, so a depth-k ansatz with Clifford locals reaches
    // exactly `canonicalize(Σᵢ Pᵢ·v)` where `v` is the basis gate's
    // interaction vector and each `Pᵢ` is a signed permutation. Enumerating
    // those sums in coordinate space lands on the polytope's lattice
    // vertices (SWAP, CNOT, iSWAP, …) that random sampling can never hit
    // exactly.
    let v0 = coords_of(basis);
    for s in signed_perm_sums(&[v0.a, v0.b, v0.c], k) {
        let w = WeylCoord::canonicalize(s[0], s[1], s[2]);
        push_symmetric(&mut pts, &w);
    }

    // Random Haar interleavings fill in the bulk.
    for _ in 0..samples {
        let mut u = *basis;
        for _ in 1..k {
            let l = Mat4::kron(&haar_1q(rng), &haar_1q(rng));
            u = u.mul(&l).mul(basis);
        }
        let w = coords_of(&u);
        push_symmetric(&mut pts, &w);
    }

    // Support-direction optimization pins the polytope's extreme points
    // (vertices like SWAP are measure-zero under random sampling). For a
    // set of directions d, maximize d·coords over the interleaved local
    // parameters with Nelder–Mead; the optima are support points of the
    // convex reachable region.
    if k >= 2 {
        let dirs = support_directions(rng, 60);
        for d in dirs {
            let x0: Vec<f64> = (0..6 * (k - 1))
                .map(|_| rng.uniform_range(0.0, std::f64::consts::TAU))
                .collect();
            let objective = |x: &[f64]| {
                let w = ansatz_coords(basis, k, x);
                let p = alcove_rep(&w);
                -(d[0] * p[0] + d[1] * p[1] + d[2] * p[2])
            };
            let r = mirage_math::optimize::nelder_mead(
                objective,
                &x0,
                &mirage_math::optimize::NmOptions {
                    max_evals: 420,
                    f_tol: 1e-10,
                    step: 0.9,
                },
            );
            let w = ansatz_coords(basis, k, &r.x);
            push_symmetric(&mut pts, &w);
        }
    }
    pts
}

/// All sums of `k` signed-permutation images of the vector `v`, enumerated
/// as multisets (the canonical generators commute, so order is irrelevant).
fn signed_perm_sums(v: &[f64; 3], k: usize) -> Vec<[f64; 3]> {
    // Distinct signed permutations of v (typically 12 for (t,t,0), 6 for
    // (t,0,0), up to 48 in general).
    let mut images: Vec<[f64; 3]> = Vec::new();
    let perms: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for p in perms {
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                for sz in [-1.0, 1.0] {
                    let cand = [sx * v[p[0]], sy * v[p[1]], sz * v[p[2]]];
                    if !images.iter().any(|q| {
                        (q[0] - cand[0]).abs() + (q[1] - cand[1]).abs() + (q[2] - cand[2]).abs()
                            < 1e-12
                    }) {
                        images.push(cand);
                    }
                }
            }
        }
    }

    // Multisets of size k: combinations with repetition, with a guard on
    // the total count (C(k + m − 1, m − 1) can explode for large k).
    let mut out: Vec<[f64; 3]> = Vec::new();
    let mut stack: Vec<(usize, usize, [f64; 3])> = vec![(0, k, [0.0; 3])];
    while let Some((start, left, acc)) = stack.pop() {
        if left == 0 {
            out.push(acc);
            continue;
        }
        if out.len() > 400_000 {
            break; // safety valve for pathological inputs
        }
        for (i, img) in images.iter().enumerate().skip(start) {
            stack.push((
                i,
                left - 1,
                [acc[0] + img[0], acc[1] + img[1], acc[2] + img[2]],
            ));
        }
    }
    out
}

/// Coordinates of the ansatz with explicit interleaved ZYZ parameters
/// (`6·(k−1)` values: two locals of three Euler angles per gap).
fn ansatz_coords(basis: &Mat4, k: usize, params: &[f64]) -> WeylCoord {
    let mut u = *basis;
    for g in 1..k {
        let o = 6 * (g - 1);
        let hi = oneq::u_zyz(params[o], params[o + 1], params[o + 2]);
        let lo = oneq::u_zyz(params[o + 3], params[o + 4], params[o + 5]);
        u = u.mul(&Mat4::kron(&hi, &lo)).mul(basis);
    }
    coords_of(&u)
}

/// A spread of unit directions: the chamber's own symmetry axes plus random
/// ones.
fn support_directions(rng: &mut Rng, extra: usize) -> Vec<[f64; 3]> {
    let mut dirs: Vec<[f64; 3]> = vec![
        [1.0, 0.0, 0.0],
        [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, -1.0],
        [0.577, 0.577, 0.577],
        [-0.577, -0.577, -0.577],
        [0.707, 0.707, 0.0],
        [0.707, 0.0, 0.707],
        [0.0, 0.707, 0.707],
        [0.577, 0.577, -0.577],
    ];
    for _ in 0..extra {
        let v = [rng.gaussian(), rng.gaussian(), rng.gaussian()];
        let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        if n > 1e-9 {
            dirs.push([v[0] / n, v[1] / n, v[2] / n]);
        }
    }
    dirs
}

/// Push the alcove representation of `w` and its conjugate image
/// (`z → −z`); reachable sets are closed under conjugation, and the
/// symmetric cloud also absorbs the `x = π/4` seam.
fn push_symmetric(pts: &mut Vec<[f64; 3]>, w: &WeylCoord) {
    let p = alcove_rep(w);
    pts.push(p);
    if p[2].abs() > 1e-12 {
        pts.push([p[0], p[1], -p[2]]);
    }
}

/// Hull the base points; with mirrors, add the (≤2 convex pieces of the)
/// mirrored cloud.
fn build_regions(pts: &[[f64; 3]], inflation: f64, mirrors: bool) -> Vec<ConvexPolytope> {
    let mut regions = Vec::new();
    if let Some(mut base) = ConvexPolytope::from_points(pts) {
        base.inflate(inflation);
        regions.push(base);
    }
    if mirrors {
        // Mirror every point through Eq. 1. In the alcove representation
        // the map is affine on each side of z = 0:
        //   z ≥ 0: (x,y,z) → (π/4−z, π/4−y, x−π/4)
        //   z ≤ 0: (x,y,z) → (π/4+z, π/4−y, π/4−x)
        // so each side's image is convex; hull them separately.
        let mut lobe_neg = Vec::new();
        let mut lobe_pos = Vec::new();
        for &p in pts {
            if p[2] >= -1e-12 {
                lobe_neg.push([PI_4 - p[2], PI_4 - p[1], p[0] - PI_4]);
            }
            if p[2] <= 1e-12 {
                lobe_pos.push([PI_4 + p[2], PI_4 - p[1], PI_4 - p[0]]);
            }
        }
        for side in [lobe_neg, lobe_pos] {
            if !side.is_empty() {
                if let Some(mut hull) = ConvexPolytope::from_points(&side) {
                    hull.inflate(inflation);
                    regions.push(hull);
                }
            }
        }
    }
    regions
}

/// A deterministic grid of probe points spread through the chamber, used to
/// detect full coverage.
fn chamber_probes() -> Vec<WeylCoord> {
    let mut probes = Vec::new();
    let n = 8;
    for i in 0..=n {
        for j in 0..=i.min(n / 2) {
            for l in 0..=j {
                let a = PI_2 * i as f64 / n as f64;
                let b = PI_2 * j as f64 / n as f64;
                let c = PI_2 * l as f64 / n as f64;
                let w = WeylCoord::canonicalize(a, b, c);
                if w.in_chamber(1e-12) {
                    probes.push(w);
                }
            }
        }
    }
    probes.push(WeylCoord::SWAP);
    probes.push(WeylCoord::ISWAP);
    probes.push(WeylCoord::CNOT);
    probes.push(WeylCoord::B_GATE);
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sqrt_iswap_set(mirrors: bool) -> CoverageSet {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 1200,
            inflation: 0.012,
            mirrors,
            seed: 42,
        };
        CoverageSet::build(BasisGate::iswap_root(2), &opts)
    }

    #[test]
    fn sqrt_iswap_k1_is_the_gate_itself() {
        let set = sqrt_iswap_set(false);
        let k1 = &set.levels[0];
        // Single application: only the gate's own class (a point/degenerate
        // region — zero volume).
        assert!(k1.contains(&WeylCoord::iswap_alpha(0.5), 1e-6));
        assert!(!k1.contains(&WeylCoord::CNOT, 1e-6));
        assert!(!k1.contains(&WeylCoord::SWAP, 1e-6));
    }

    #[test]
    fn sqrt_iswap_k2_contains_cnot_iswap_b() {
        let set = sqrt_iswap_set(false);
        let k2 = &set.levels[1];
        assert!(k2.contains(&WeylCoord::CNOT, 1e-6), "CNOT must need k=2");
        assert!(k2.contains(&WeylCoord::ISWAP, 1e-6), "iSWAP must need k=2");
        assert!(k2.contains(&WeylCoord::B_GATE, 1e-6), "B gate needs k=2");
        assert!(!k2.contains(&WeylCoord::SWAP, 1e-6), "SWAP needs k=3");
    }

    #[test]
    fn sqrt_iswap_k3_is_full() {
        let set = sqrt_iswap_set(false);
        assert_eq!(set.levels.len(), 3);
        assert!(set.levels[2].full, "3 √iSWAPs cover the whole chamber");
        assert_eq!(set.min_k(&WeylCoord::SWAP), Some(3));
    }

    #[test]
    fn sqrt_iswap_min_costs() {
        let set = sqrt_iswap_set(false);
        assert_eq!(set.min_k(&WeylCoord::CNOT), Some(2));
        assert_eq!(set.min_k(&WeylCoord::ISWAP), Some(2));
        assert!((set.min_cost(&WeylCoord::CNOT).unwrap() - 1.0).abs() < 1e-12);
        assert!((set.min_cost(&WeylCoord::SWAP).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sqrt_iswap_k2_haar_coverage_near_79_percent() {
        // Paper: "the √iSWAP gate in its standard form covers 79.0% of the
        // Haar-weighted volume". Sampled-hull construction lands within a
        // few points of that.
        let set = sqrt_iswap_set(false);
        let cov = set.haar_coverage(2, 4000, 7);
        assert!(
            (cov - 0.79).abs() < 0.05,
            "Haar coverage of k=2 was {cov:.3}, expected ≈0.79"
        );
    }

    #[test]
    fn sqrt_iswap_mirror_k2_haar_coverage_near_94_percent() {
        // Paper: "increases to 94.4% when mirror gates are utilized".
        let set = sqrt_iswap_set(true);
        let cov = set.haar_coverage(2, 4000, 7);
        assert!(
            (cov - 0.944).abs() < 0.05,
            "mirror Haar coverage of k=2 was {cov:.3}, expected ≈0.944"
        );
    }

    #[test]
    fn mirror_set_contains_mirrors_of_members() {
        let set = sqrt_iswap_set(true);
        let k2 = &set.levels[1];
        // CNOT ∈ k2 implies iSWAP (its mirror) is too; additionally the mirror of
        // any contained CPHASE must be contained.
        let w = WeylCoord::cphase(1.2);
        if k2.contains(&w, 1e-6) {
            assert!(k2.contains(&mirror_coord(&w), 1e-6));
        }
        // SWAP = mirror of identity; identity is reachable at k=2
        // (B·B† patterns), so the mirror set must contain SWAP.
        assert!(k2.contains(&WeylCoord::SWAP, 1e-6));
    }

    #[test]
    fn cnot_k2_region_is_planar() {
        let opts = CoverageOptions {
            max_k: 2,
            samples_per_k: 800,
            inflation: 0.005,
            mirrors: false,
            seed: 9,
        };
        let set = CoverageSet::build(BasisGate::cnot(), &opts);
        let k2 = &set.levels[1];
        // Two CNOTs reach exactly the c = 0 plane portion: rank-2 region.
        assert!(k2.regions.iter().all(|r| r.rank <= 2));
        assert!(k2.contains(&WeylCoord::CNOT, 1e-6));
        assert!(k2.contains(&WeylCoord::ISWAP, 1e-6));
        assert!(!k2.contains(&WeylCoord::SWAP, 1e-6));
        // Haar coverage of a planar slice is 0.
        let cov = set.haar_coverage(2, 500, 3);
        assert!(cov < 0.01, "planar region got Haar coverage {cov}");
    }

    #[test]
    fn cnot_k3_is_full() {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 1200,
            inflation: 0.012,
            mirrors: false,
            seed: 10,
        };
        let set = CoverageSet::build(BasisGate::cnot(), &opts);
        assert!(set.levels[2].full, "3 CNOTs cover the whole chamber");
    }

    #[test]
    fn quarter_iswap_needs_deeper_levels() {
        let opts = CoverageOptions {
            max_k: 8,
            samples_per_k: 900,
            inflation: 0.012,
            mirrors: false,
            seed: 11,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(4), &opts);
        // SWAP requires k = 6 quarter-iSWAPs without mirrors (paper §III-B).
        let k_swap = set.min_k(&WeylCoord::SWAP).expect("reachable");
        assert_eq!(k_swap, 6, "SWAP should need 6 ∜iSWAPs");
        // CNOT requires 1/α = 4 applications.
        let k_cnot = set.min_k(&WeylCoord::CNOT).expect("reachable");
        assert_eq!(k_cnot, 4, "CNOT should need 4 ∜iSWAPs");
    }

    #[test]
    fn quarter_iswap_mirror_caps_at_k4() {
        // Paper: "with mirroring, the depth never exceeds k = 4" for ∜iSWAP.
        let opts = CoverageOptions {
            max_k: 6,
            samples_per_k: 1500,
            inflation: 0.015,
            mirrors: true,
            seed: 12,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(4), &opts);
        let full_at = set
            .levels
            .iter()
            .find(|l| l.full)
            .map(|l| l.k)
            .expect("mirror set reaches full coverage");
        assert!(full_at <= 4, "mirror ∜iSWAP full coverage at k={full_at}");
    }

    #[test]
    fn cost_or_max_total() {
        let opts = CoverageOptions {
            max_k: 1,
            samples_per_k: 200,
            inflation: 0.01,
            mirrors: false,
            seed: 13,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(2), &opts);
        // SWAP unreachable at k=1: falls back to (1+1)·0.5.
        assert!((set.cost_or_max(&WeylCoord::SWAP) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chamber_volume_constant() {
        let pi = std::f64::consts::PI;
        assert!((CHAMBER_VOLUME - pi.powi(3) / 192.0).abs() < 1e-15);
    }

    #[test]
    fn basis_gate_constructors() {
        let b = BasisGate::iswap_root(2);
        assert_eq!(b.name, "sqrt_iswap");
        assert!((b.duration - 0.5).abs() < 1e-12);
        let c = BasisGate::cnot();
        assert!((c.duration - 1.0).abs() < 1e-12);
        assert!(c.coord.approx_eq(&WeylCoord::CNOT, 1e-9));
    }

    #[test]
    #[should_panic(expected = "n ≥ 1")]
    fn iswap_root_zero_panics() {
        BasisGate::iswap_root(0);
    }
}
