//! Haar scores and the decoherence fidelity model (paper §III-C, Eq. 2).
//!
//! The *Haar score* of a basis gate is the expected decomposition cost of a
//! Haar-random two-qubit unitary: `E[k(U) · duration]`, where `k(U)` is the
//! minimum ansatz depth whose coverage region contains the coordinates of
//! `U`. A lower Haar score means a computationally stronger basis gate.
//!
//! Fidelity uses the decoherence model of Eq. 2:
//! `F_Q = exp(−GateDuration / QubitLifetime)`, normalized so that an iSWAP
//! (duration 1.0) has 99% fidelity.

use crate::set::CoverageSet;
use mirage_gates::haar_2q;
use mirage_math::Rng;
use mirage_weyl::coords::coords_of;

/// Decoherence-only fidelity model (paper Eq. 2).
#[derive(Debug, Clone, Copy)]
pub struct FidelityModel {
    /// Qubit lifetime in normalized time units (iSWAP duration = 1.0).
    pub t1: f64,
}

impl Default for FidelityModel {
    fn default() -> Self {
        FidelityModel::paper_default()
    }
}

impl FidelityModel {
    /// The paper's normalization: iSWAP (duration 1.0) has fidelity 99%,
    /// so `T1 = −1/ln(0.99) ≈ 99.5`.
    pub fn paper_default() -> FidelityModel {
        FidelityModel {
            t1: -1.0 / 0.99f64.ln(),
        }
    }

    /// Fidelity of a single gate of the given duration.
    pub fn gate_fidelity(&self, duration: f64) -> f64 {
        (-duration / self.t1).exp()
    }

    /// Fidelity of a circuit with the given total duration (critical path).
    pub fn circuit_fidelity(&self, total_duration: f64) -> f64 {
        (-total_duration / self.t1).exp()
    }
}

/// Result of a Haar-score estimation.
#[derive(Debug, Clone)]
pub struct HaarScore {
    /// Expected decomposition cost `E[k · duration]`.
    pub score: f64,
    /// Expected circuit fidelity `E[F^k]` under the model.
    pub avg_fidelity: f64,
    /// Empirical distribution over depths: `(k, probability)`.
    pub depth_distribution: Vec<(usize, f64)>,
    /// Number of Monte Carlo samples used.
    pub samples: usize,
}

/// Estimate the Haar score of a coverage set by Monte Carlo over
/// Haar-random unitaries.
///
/// Unreachable samples (coordinates outside every built level — possible
/// only when the set was built too shallow) are charged one application
/// beyond the deepest level, mirroring [`CoverageSet::cost_or_max`].
pub fn haar_score(set: &CoverageSet, model: &FidelityModel, n: usize, seed: u64) -> HaarScore {
    let mut rng = Rng::new(seed);
    let mut total_cost = 0.0f64;
    let mut total_fid = 0.0f64;
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for _ in 0..n {
        let w = coords_of(&haar_2q(&mut rng));
        let k = set.min_k(&w).unwrap_or(set.max_level().k + 1);
        let cost = k as f64 * set.basis.duration;
        total_cost += cost;
        total_fid += model.circuit_fidelity(cost);
        *counts.entry(k).or_insert(0) += 1;
    }
    HaarScore {
        score: total_cost / n as f64,
        avg_fidelity: total_fid / n as f64,
        depth_distribution: counts
            .into_iter()
            .map(|(k, c)| (k, c as f64 / n as f64))
            .collect(),
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{BasisGate, CoverageOptions, CoverageSet};

    #[test]
    fn paper_default_t1() {
        let m = FidelityModel::paper_default();
        assert!((m.gate_fidelity(1.0) - 0.99).abs() < 1e-12);
        assert!((m.gate_fidelity(0.5) - 0.99f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circuit_fidelity_multiplies() {
        let m = FidelityModel::paper_default();
        let f2 = m.circuit_fidelity(2.0);
        assert!((f2 - 0.99 * 0.99).abs() < 1e-12);
    }

    #[test]
    fn sqrt_iswap_haar_score_matches_table1() {
        // Paper Table I: √iSWAP exact Haar score 1.105 with fidelity 0.9890.
        // With coverage ≈79% at k=2 and the rest at k=3:
        // 0.5·(2·0.79 + 3·0.21) = 1.105.
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: false,
            seed: 21,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(2), &opts);
        let hs = haar_score(&set, &FidelityModel::paper_default(), 4000, 5);
        assert!(
            (hs.score - 1.105).abs() < 0.03,
            "Haar score = {:.4}, expected ≈1.105",
            hs.score
        );
        assert!(
            (hs.avg_fidelity - 0.9890).abs() < 0.002,
            "fidelity = {:.5}, expected ≈0.9890",
            hs.avg_fidelity
        );
    }

    #[test]
    fn sqrt_iswap_mirror_haar_score_matches_table1() {
        // Paper Table I: √iSWAP mirror Haar score 1.029, fidelity 0.9897.
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: true,
            seed: 22,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(2), &opts);
        let hs = haar_score(&set, &FidelityModel::paper_default(), 4000, 6);
        assert!(
            (hs.score - 1.029).abs() < 0.03,
            "mirror Haar score = {:.4}, expected ≈1.029",
            hs.score
        );
    }

    #[test]
    fn depth_distribution_sums_to_one() {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 600,
            inflation: 0.012,
            mirrors: false,
            seed: 23,
        };
        let set = CoverageSet::build(BasisGate::iswap_root(2), &opts);
        let hs = haar_score(&set, &FidelityModel::paper_default(), 1000, 7);
        let total: f64 = hs.depth_distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // No Haar gate needs k=1 (measure zero) and none should exceed 3.
        for (k, p) in &hs.depth_distribution {
            assert!(*k >= 2 && *k <= 3, "unexpected depth {k} (p={p})");
        }
    }

    #[test]
    fn mirror_score_never_worse() {
        let mk = |mirrors| {
            let opts = CoverageOptions {
                max_k: 3,
                samples_per_k: 900,
                inflation: 0.012,
                mirrors,
                seed: 24,
            };
            CoverageSet::build(BasisGate::iswap_root(2), &opts)
        };
        let plain = haar_score(&mk(false), &FidelityModel::paper_default(), 2000, 8);
        let mirrored = haar_score(&mk(true), &FidelityModel::paper_default(), 2000, 8);
        assert!(
            mirrored.score <= plain.score + 1e-9,
            "mirror {} vs plain {}",
            mirrored.score,
            plain.score
        );
    }
}
