//! 3D computational geometry: convex hulls and halfspace polytopes.
//!
//! Coverage regions live in the Weyl chamber, a subset of `[0, π/2]³`, so a
//! small, robust, fixed-dimension toolkit suffices:
//!
//! * [`ConvexPolytope::from_points`] — convex hull with graceful handling of
//!   degenerate point sets (a point, a segment, a planar polygon): the
//!   CNOT-family coverage regions are genuinely planar (paper: "planar
//!   slices contribute 0% volume"), so rank-deficient polytopes are a
//!   first-class case, not an error.
//! * membership ([`ConvexPolytope::contains`]), Euclidean projection
//!   ([`ConvexPolytope::nearest_point`], Dykstra's algorithm), geometric
//!   volume, and outward inflation (used to absorb the inward bias of
//!   sampled hulls).

/// A closed halfspace `{ x : n·x ≤ d }` with unit normal `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halfspace {
    /// Outward unit normal.
    pub n: [f64; 3],
    /// Offset: the plane is `n·x = d`.
    pub d: f64,
    /// True when this halfspace is half of an equality pair pinning a
    /// degenerate (rank < 3) polytope to its affine hull. Equality pairs are
    /// exempt from [`ConvexPolytope::inflate`] — inflating them would give a
    /// planar region spurious volume.
    pub equality: bool,
}

impl Halfspace {
    /// Signed distance of `p` from the bounding plane (positive = outside).
    pub fn excess(&self, p: [f64; 3]) -> f64 {
        dot(self.n, p) - self.d
    }

    /// True when `p` lies inside (or within `tol` outside of) the halfspace.
    pub fn contains(&self, p: [f64; 3], tol: f64) -> bool {
        self.excess(p) <= tol
    }
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: [f64; 3], k: f64) -> [f64; 3] {
    [a[0] * k, a[1] * k, a[2] * k]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: [f64; 3]) -> Option<[f64; 3]> {
    let n = norm(a);
    if n < 1e-12 {
        None
    } else {
        Some(scale(a, 1.0 / n))
    }
}

/// A convex polytope given by both vertices and bounding halfspaces.
///
/// `rank` is the affine dimension of the vertex set: 3 for a solid, 2 for a
/// polygon, 1 for a segment, 0 for a point. Halfspaces are arranged so that
/// [`ConvexPolytope::contains`] works uniformly across ranks (degenerate
/// directions contribute opposing halfspace pairs).
#[derive(Debug, Clone)]
pub struct ConvexPolytope {
    /// Extreme points of the polytope.
    pub vertices: Vec<[f64; 3]>,
    /// Bounding halfspaces (`n·x ≤ d` each).
    pub halfspaces: Vec<Halfspace>,
    /// Affine dimension of the vertex set (0–3).
    pub rank: usize,
}

/// Numerical tolerance for hull construction plane tests.
const HULL_EPS: f64 = 1e-9;

impl ConvexPolytope {
    /// Build the convex hull of a point cloud.
    ///
    /// Handles every affine rank; returns `None` only for an empty input.
    pub fn from_points(points: &[[f64; 3]]) -> Option<ConvexPolytope> {
        if points.is_empty() {
            return None;
        }
        // Deduplicate (coarse grid) to keep quickhull fast on dense clouds.
        let mut pts: Vec<[f64; 3]> = Vec::with_capacity(points.len());
        {
            let mut seen = std::collections::HashSet::new();
            for &p in points {
                let key = (
                    (p[0] * 1e7).round() as i64,
                    (p[1] * 1e7).round() as i64,
                    (p[2] * 1e7).round() as i64,
                );
                if seen.insert(key) {
                    pts.push(p);
                }
            }
        }

        // Affine rank via Gram–Schmidt over displacement vectors.
        let p0 = pts[0];
        let mut basis: Vec<[f64; 3]> = Vec::new();
        for &p in &pts[1..] {
            if basis.len() == 3 {
                break;
            }
            let mut v = sub(p, p0);
            for b in &basis {
                let c = dot(v, *b);
                v = sub(v, scale(*b, c));
            }
            if norm(v) > 1e-7 {
                basis.push(normalize(v).expect("norm checked above"));
            }
        }

        match basis.len() {
            0 => Some(Self::from_single_point(p0)),
            1 => Some(Self::from_segment(&pts, p0, basis[0])),
            2 => Some(Self::from_planar(&pts, p0, basis[0], basis[1])),
            _ => Self::from_solid(&pts),
        }
    }

    fn from_single_point(p: [f64; 3]) -> ConvexPolytope {
        let mut halfspaces = Vec::with_capacity(6);
        for axis in 0..3 {
            let mut n = [0.0; 3];
            n[axis] = 1.0;
            halfspaces.push(Halfspace {
                n,
                d: p[axis],
                equality: true,
            });
            n[axis] = -1.0;
            halfspaces.push(Halfspace {
                n,
                d: -p[axis],
                equality: true,
            });
        }
        ConvexPolytope {
            vertices: vec![p],
            halfspaces,
            rank: 0,
        }
    }

    fn from_segment(pts: &[[f64; 3]], p0: [f64; 3], u: [f64; 3]) -> ConvexPolytope {
        let mut tmin = f64::INFINITY;
        let mut tmax = f64::NEG_INFINITY;
        for &p in pts {
            let t = dot(sub(p, p0), u);
            tmin = tmin.min(t);
            tmax = tmax.max(t);
        }
        let a = add(p0, scale(u, tmin));
        let b = add(p0, scale(u, tmax));
        // Two perpendicular directions complete the halfspace description.
        let v = perpendicular(u);
        let w = cross(u, v);
        let mut halfspaces = vec![
            Halfspace {
                n: u,
                d: dot(u, b),
                equality: false,
            },
            Halfspace {
                n: scale(u, -1.0),
                d: -dot(u, a),
                equality: false,
            },
        ];
        for dir in [v, w] {
            let d = dot(dir, p0);
            halfspaces.push(Halfspace {
                n: dir,
                d,
                equality: true,
            });
            halfspaces.push(Halfspace {
                n: scale(dir, -1.0),
                d: -d,
                equality: true,
            });
        }
        ConvexPolytope {
            vertices: vec![a, b],
            halfspaces,
            rank: 1,
        }
    }

    fn from_planar(pts: &[[f64; 3]], p0: [f64; 3], u: [f64; 3], v: [f64; 3]) -> ConvexPolytope {
        let w = normalize(cross(u, v)).expect("u ⊥ v are unit vectors");
        // Project into the plane.
        let proj: Vec<(f64, f64)> = pts
            .iter()
            .map(|&p| {
                let d = sub(p, p0);
                (dot(d, u), dot(d, v))
            })
            .collect();
        let hull2 = hull_2d(&proj);
        let vertices: Vec<[f64; 3]> = hull2
            .iter()
            .map(|&(x, y)| add(p0, add(scale(u, x), scale(v, y))))
            .collect();

        let mut halfspaces = Vec::new();
        // Plane equality as an opposing pair.
        let dw = dot(w, p0);
        halfspaces.push(Halfspace {
            n: w,
            d: dw,
            equality: true,
        });
        halfspaces.push(Halfspace {
            n: scale(w, -1.0),
            d: -dw,
            equality: true,
        });
        // Edge halfspaces (2D hull is counter-clockwise).
        let m = hull2.len();
        for i in 0..m {
            let (x1, y1) = hull2[i];
            let (x2, y2) = hull2[(i + 1) % m];
            let (ex, ey) = (x2 - x1, y2 - y1);
            let len = (ex * ex + ey * ey).sqrt();
            if len < 1e-12 {
                continue;
            }
            // Outward normal of a CCW edge is (ey, -ex).
            let (nx, ny) = (ey / len, -ex / len);
            let n3 = add(scale(u, nx), scale(v, ny));
            let d = dot(n3, vertices[i]);
            halfspaces.push(Halfspace {
                n: n3,
                d,
                equality: false,
            });
        }
        ConvexPolytope {
            vertices,
            halfspaces,
            rank: 2,
        }
    }

    fn from_solid(pts: &[[f64; 3]]) -> Option<ConvexPolytope> {
        let faces = quickhull3(pts)?;
        // Collect unique vertices and deduplicated halfspaces.
        let mut vert_set: Vec<[f64; 3]> = Vec::new();
        let mut halfspaces: Vec<Halfspace> = Vec::new();
        let mut hs_keys = std::collections::HashSet::new();
        for f in &faces {
            for &vi in &[f.a, f.b, f.c] {
                let p = pts[vi];
                if !vert_set.iter().any(|q| norm(sub(*q, p)) < 1e-9) {
                    vert_set.push(p);
                }
            }
            let key = (
                (f.n[0] * 1e6).round() as i64,
                (f.n[1] * 1e6).round() as i64,
                (f.n[2] * 1e6).round() as i64,
                (f.d * 1e6).round() as i64,
            );
            if hs_keys.insert(key) {
                halfspaces.push(Halfspace {
                    n: f.n,
                    d: f.d,
                    equality: false,
                });
            }
        }
        Some(ConvexPolytope {
            vertices: vert_set,
            halfspaces,
            rank: 3,
        })
    }

    /// True when `p` lies inside the polytope, allowing `tol` of slack
    /// outside each bounding plane.
    pub fn contains(&self, p: [f64; 3], tol: f64) -> bool {
        self.halfspaces.iter().all(|h| h.contains(p, tol))
    }

    /// Push every bounding plane outward by `delta` (used to compensate the
    /// inward bias of hulls built from finite samples of a convex region).
    pub fn inflate(&mut self, delta: f64) {
        for h in self.halfspaces.iter_mut() {
            if !h.equality {
                h.d += delta;
            }
        }
    }

    /// Euclidean projection of `p` onto the polytope via Dykstra's
    /// alternating-projection algorithm. Exact for `p` inside (returns `p`).
    pub fn nearest_point(&self, p: [f64; 3]) -> [f64; 3] {
        if self.contains(p, 0.0) {
            return p;
        }
        let m = self.halfspaces.len();
        let mut x = p;
        let mut corrections = vec![[0.0f64; 3]; m];
        for _pass in 0..256 {
            let mut moved = 0.0f64;
            for (i, h) in self.halfspaces.iter().enumerate() {
                let y = add(x, corrections[i]);
                // Project y onto halfspace i.
                let ex = dot(h.n, y) - h.d;
                let proj = if ex > 0.0 { sub(y, scale(h.n, ex)) } else { y };
                corrections[i] = sub(y, proj);
                moved = moved.max(norm(sub(proj, x)));
                x = proj;
            }
            if moved < 1e-12 {
                break;
            }
        }
        x
    }

    /// Euclidean distance from `p` to the polytope (0 inside).
    pub fn distance(&self, p: [f64; 3]) -> f64 {
        norm(sub(p, self.nearest_point(p)))
    }

    /// Geometric (Lebesgue) volume. Zero for rank < 3.
    pub fn volume(&self) -> f64 {
        if self.rank < 3 || self.vertices.is_empty() {
            return 0.0;
        }
        // Fan of tetrahedra from the centroid over each facet triangle.
        // Rebuild facet triangles by re-hulling the vertices (cheap: vertex
        // count is small).
        let faces = match quickhull3(&self.vertices) {
            Some(f) => f,
            None => return 0.0,
        };
        let mut centroid = [0.0f64; 3];
        for v in &self.vertices {
            centroid = add(centroid, *v);
        }
        centroid = scale(centroid, 1.0 / self.vertices.len() as f64);
        let mut vol = 0.0;
        for f in &faces {
            let a = sub(self.vertices_nearest(f.pa), centroid);
            let b = sub(self.vertices_nearest(f.pb), centroid);
            let c = sub(self.vertices_nearest(f.pc), centroid);
            vol += dot(a, cross(b, c)).abs() / 6.0;
        }
        vol
    }

    fn vertices_nearest(&self, p: [f64; 3]) -> [f64; 3] {
        p
    }

    /// Centroid of the vertex set (not the volumetric centroid).
    pub fn vertex_centroid(&self) -> [f64; 3] {
        let mut c = [0.0f64; 3];
        for v in &self.vertices {
            c = add(c, *v);
        }
        scale(c, 1.0 / self.vertices.len().max(1) as f64)
    }
}

/// Any unit vector perpendicular to `u`.
fn perpendicular(u: [f64; 3]) -> [f64; 3] {
    let trial = if u[0].abs() < 0.9 {
        [1.0, 0.0, 0.0]
    } else {
        [0.0, 1.0, 0.0]
    };
    normalize(cross(u, trial)).expect("u is a unit vector, trial not parallel")
}

/// 2D convex hull (Andrew's monotone chain), counter-clockwise output.
fn hull_2d(pts: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut p: Vec<(f64, f64)> = pts.to_vec();
    p.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    p.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
    if p.len() <= 2 {
        return p;
    }
    let cross2 = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    let mut lower: Vec<(f64, f64)> = Vec::new();
    for &pt in &p {
        while lower.len() >= 2
            && cross2(lower[lower.len() - 2], lower[lower.len() - 1], pt) <= 1e-14
        {
            lower.pop();
        }
        lower.push(pt);
    }
    let mut upper: Vec<(f64, f64)> = Vec::new();
    for &pt in p.iter().rev() {
        while upper.len() >= 2
            && cross2(upper[upper.len() - 2], upper[upper.len() - 1], pt) <= 1e-14
        {
            upper.pop();
        }
        upper.push(pt);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// A hull facet: vertex indices plus the outward plane `n·x ≤ d`.
struct Face {
    a: usize,
    b: usize,
    c: usize,
    pa: [f64; 3],
    pb: [f64; 3],
    pc: [f64; 3],
    n: [f64; 3],
    d: f64,
}

/// Incremental quickhull in 3D. Returns the facet list, or `None` when the
/// points are not full-dimensional (caller falls back to lower-rank paths).
fn quickhull3(pts: &[[f64; 3]]) -> Option<Vec<Face>> {
    let n = pts.len();
    if n < 4 {
        return None;
    }

    // Initial simplex: extremes along x, then farthest from the line, then
    // farthest from the plane.
    let mut i0 = 0;
    let mut i1 = 0;
    for (i, p) in pts.iter().enumerate() {
        if p[0] < pts[i0][0] {
            i0 = i;
        }
        if p[0] > pts[i1][0] {
            i1 = i;
        }
    }
    if i0 == i1 {
        // Degenerate along x; try other axes via generic farthest pair.
        for (i, p) in pts.iter().enumerate() {
            if norm(sub(*p, pts[i0])) > norm(sub(pts[i1], pts[i0])) {
                i1 = i;
            }
        }
        if norm(sub(pts[i1], pts[i0])) < 1e-9 {
            return None;
        }
    }
    let u = normalize(sub(pts[i1], pts[i0]))?;
    let mut i2 = usize::MAX;
    let mut best = 1e-9;
    for (i, p) in pts.iter().enumerate() {
        let d = sub(*p, pts[i0]);
        let perp = sub(d, scale(u, dot(d, u)));
        let dist = norm(perp);
        if dist > best {
            best = dist;
            i2 = i;
        }
    }
    if i2 == usize::MAX {
        return None;
    }
    let plane_n = normalize(cross(sub(pts[i1], pts[i0]), sub(pts[i2], pts[i0])))?;
    let mut i3 = usize::MAX;
    let mut best = 1e-8;
    for (i, p) in pts.iter().enumerate() {
        let dist = dot(sub(*p, pts[i0]), plane_n).abs();
        if dist > best {
            best = dist;
            i3 = i;
        }
    }
    if i3 == usize::MAX {
        return None;
    }

    let interior = scale(add(add(pts[i0], pts[i1]), add(pts[i2], pts[i3])), 0.25);

    let mk_face = |a: usize, b: usize, c: usize| -> Face {
        let mut nrm =
            normalize(cross(sub(pts[b], pts[a]), sub(pts[c], pts[a]))).unwrap_or([0.0, 0.0, 1.0]);
        let mut d = dot(nrm, pts[a]);
        if dot(nrm, interior) > d {
            nrm = scale(nrm, -1.0);
            d = -d;
        }
        Face {
            a,
            b,
            c,
            pa: pts[a],
            pb: pts[b],
            pc: pts[c],
            n: nrm,
            d,
        }
    };

    let mut faces: Vec<Face> = vec![
        mk_face(i0, i1, i2),
        mk_face(i0, i1, i3),
        mk_face(i0, i2, i3),
        mk_face(i1, i2, i3),
    ];

    // Conflict lists.
    let mut outside: Vec<Vec<usize>> = vec![Vec::new(); faces.len()];
    for (i, p) in pts.iter().enumerate() {
        for (fi, f) in faces.iter().enumerate() {
            if dot(f.n, *p) - f.d > HULL_EPS {
                outside[fi].push(i);
                break;
            }
        }
    }

    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 100_000 {
            break; // safety valve; hull is still valid, slightly coarse
        }
        // Pick a face with outstanding points.
        let Some(fi) = outside.iter().position(|o| !o.is_empty()) else {
            break;
        };
        // Farthest point from that face.
        let &far = outside[fi]
            .iter()
            .max_by(|&&x, &&y| {
                let dx = dot(faces[fi].n, pts[x]) - faces[fi].d;
                let dy = dot(faces[fi].n, pts[y]) - faces[fi].d;
                dx.total_cmp(&dy)
            })
            .expect("non-empty outside set");
        let fp = pts[far];

        // Visible faces.
        let visible: Vec<usize> = (0..faces.len())
            .filter(|&i| dot(faces[i].n, fp) - faces[i].d > HULL_EPS)
            .collect();
        if visible.is_empty() {
            // Numerical edge: drop the point.
            outside[fi].retain(|&x| x != far);
            continue;
        }
        let visible_set: std::collections::HashSet<usize> = visible.iter().copied().collect();

        // Horizon: directed edges of visible faces whose reverse belongs to
        // a non-visible face.
        let mut edge_count: std::collections::HashMap<(usize, usize), i32> =
            std::collections::HashMap::new();
        for &vi in &visible {
            let f = &faces[vi];
            for (x, y) in [(f.a, f.b), (f.b, f.c), (f.c, f.a)] {
                *edge_count.entry((x.min(y), x.max(y))).or_insert(0) += 1;
            }
        }
        let mut horizon: Vec<(usize, usize)> = edge_count
            .iter()
            .filter(|(_, &c)| c == 1)
            .map(|(&e, _)| e)
            .collect();
        horizon.sort_unstable();

        // Gather orphaned points.
        let mut orphans: Vec<usize> = Vec::new();
        for &vi in &visible {
            orphans.append(&mut outside[vi]);
        }
        orphans.retain(|&x| x != far);

        // Remove visible faces (swap-remove, keeping outside lists aligned).
        let mut keep_faces: Vec<Face> = Vec::with_capacity(faces.len());
        let mut keep_outside: Vec<Vec<usize>> = Vec::with_capacity(outside.len());
        for (i, f) in faces.into_iter().enumerate() {
            if !visible_set.contains(&i) {
                keep_faces.push(f);
                keep_outside.push(std::mem::take(&mut outside[i]));
            }
        }
        faces = keep_faces;
        outside = keep_outside;

        // New faces from the horizon to the far point.
        for (x, y) in horizon {
            let f = mk_face(x, y, far);
            faces.push(f);
            outside.push(Vec::new());
        }

        // Reassign orphans.
        for oi in orphans {
            let p = pts[oi];
            for (fi2, f) in faces.iter().enumerate() {
                if dot(f.n, p) - f.d > HULL_EPS {
                    outside[fi2].push(oi);
                    break;
                }
            }
        }
    }

    Some(faces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::Rng;

    fn unit_cube_points() -> Vec<[f64; 3]> {
        let mut v = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    v.push([x, y, z]);
                }
            }
        }
        v
    }

    #[test]
    fn cube_hull_basics() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert_eq!(p.rank, 3);
        assert_eq!(p.vertices.len(), 8);
        assert!((p.volume() - 1.0).abs() < 1e-9, "volume = {}", p.volume());
    }

    #[test]
    fn cube_membership() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert!(p.contains([0.5, 0.5, 0.5], 1e-12));
        assert!(p.contains([0.0, 0.0, 0.0], 1e-9)); // vertex
        assert!(p.contains([1.0, 0.5, 0.5], 1e-9)); // face
        assert!(!p.contains([1.2, 0.5, 0.5], 1e-9));
        assert!(!p.contains([-0.1, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn cube_with_interior_noise() {
        let mut pts = unit_cube_points();
        let mut rng = Rng::new(5);
        for _ in 0..2000 {
            pts.push([rng.uniform(), rng.uniform(), rng.uniform()]);
        }
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.vertices.len(), 8);
        assert!((p.volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tetrahedron_volume() {
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert!((p.volume() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.halfspaces.len(), 4);
    }

    #[test]
    fn planar_square() {
        let pts = vec![
            [0.0, 0.0, 0.5],
            [1.0, 0.0, 0.5],
            [1.0, 1.0, 0.5],
            [0.0, 1.0, 0.5],
            [0.5, 0.5, 0.5],
        ];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 2);
        assert_eq!(p.volume(), 0.0);
        assert!(p.contains([0.5, 0.5, 0.5], 1e-9));
        assert!(p.contains([0.99, 0.01, 0.5], 1e-9));
        assert!(!p.contains([0.5, 0.5, 0.6], 1e-6));
        assert!(!p.contains([1.5, 0.5, 0.5], 1e-6));
    }

    #[test]
    fn segment_polytope() {
        let pts = vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5], [1.0, 1.0, 1.0]];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 1);
        assert_eq!(p.vertices.len(), 2);
        assert!(p.contains([0.25, 0.25, 0.25], 1e-9));
        assert!(!p.contains([0.25, 0.3, 0.25], 1e-6));
        assert!(!p.contains([1.1, 1.1, 1.1], 1e-6));
    }

    #[test]
    fn point_polytope() {
        let pts = vec![[0.3, 0.4, 0.5]];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 0);
        assert!(p.contains([0.3, 0.4, 0.5], 1e-9));
        assert!(p.contains([0.3 + 1e-10, 0.4, 0.5], 1e-9));
        assert!(!p.contains([0.31, 0.4, 0.5], 1e-6));
    }

    #[test]
    fn empty_input() {
        assert!(ConvexPolytope::from_points(&[]).is_none());
    }

    #[test]
    fn nearest_point_inside_is_identity() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = [0.3, 0.7, 0.5];
        assert_eq!(p.nearest_point(x), x);
    }

    #[test]
    fn nearest_point_face_projection() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = p.nearest_point([0.5, 0.5, 2.0]);
        assert!(norm(sub(x, [0.5, 0.5, 1.0])) < 1e-6, "{x:?}");
        assert!((p.distance([0.5, 0.5, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nearest_point_corner_projection() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = p.nearest_point([2.0, 2.0, 2.0]);
        assert!(norm(sub(x, [1.0, 1.0, 1.0])) < 1e-5, "{x:?}");
    }

    #[test]
    fn inflate_grows_membership() {
        let mut p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert!(!p.contains([1.005, 0.5, 0.5], 1e-9));
        p.inflate(0.01);
        assert!(p.contains([1.005, 0.5, 0.5], 1e-9));
    }

    #[test]
    fn random_hull_contains_all_inputs() {
        let mut rng = Rng::new(11);
        let pts: Vec<[f64; 3]> = (0..500)
            .map(|_| [rng.gaussian(), rng.gaussian() * 0.5, rng.gaussian() * 2.0])
            .collect();
        let p = ConvexPolytope::from_points(&pts).unwrap();
        for &pt in &pts {
            assert!(p.contains(pt, 1e-7), "{pt:?} escaped its own hull");
        }
    }

    #[test]
    fn hull_volume_of_simplex_cloud() {
        // Points uniform in the standard simplex: hull volume → 1/6.
        let mut rng = Rng::new(13);
        let mut pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        for _ in 0..300 {
            let mut x = [rng.uniform(), rng.uniform(), rng.uniform()];
            while x[0] + x[1] + x[2] > 1.0 {
                x = [rng.uniform(), rng.uniform(), rng.uniform()];
            }
            pts.push(x);
        }
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert!((p.volume() - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn hull_2d_square() {
        let h = hull_2d(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (0.5, 0.5),
            (0.2, 0.8),
        ]);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn halfspace_excess_sign() {
        let h = Halfspace {
            n: [0.0, 0.0, 1.0],
            d: 1.0,
            equality: false,
        };
        assert!(h.excess([0.0, 0.0, 2.0]) > 0.0);
        assert!(h.excess([0.0, 0.0, 0.5]) < 0.0);
        assert!(h.contains([0.0, 0.0, 1.0], 1e-12));
    }
}
