//! 3D computational geometry: convex hulls and halfspace polytopes.
//!
//! Coverage regions live in the Weyl chamber, a subset of `[0, π/2]³`, so a
//! small, robust, fixed-dimension toolkit suffices:
//!
//! * [`ConvexPolytope::from_points`] — convex hull with graceful handling of
//!   degenerate point sets (a point, a segment, a planar polygon): the
//!   CNOT-family coverage regions are genuinely planar (paper: "planar
//!   slices contribute 0% volume"), so rank-deficient polytopes are a
//!   first-class case, not an error.
//! * membership ([`ConvexPolytope::contains`]), Euclidean projection
//!   ([`ConvexPolytope::nearest_point`], Dykstra's algorithm), geometric
//!   volume, and outward inflation (used to absorb the inward bias of
//!   sampled hulls).
//! * [`PolytopeBank`] — the query-path representation: every polytope's
//!   halfspace rows packed into contiguous structure-of-arrays columns,
//!   fronted by a loose tier (bounding box + a few dominant rows) that
//!   rejects most points before the strict full-H-rep scan. Queries are
//!   allocation-free and return answers identical to the `ConvexPolytope`
//!   they were built from.

/// A closed halfspace `{ x : n·x ≤ d }` with unit normal `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halfspace {
    /// Outward unit normal.
    pub n: [f64; 3],
    /// Offset: the plane is `n·x = d`.
    pub d: f64,
    /// True when this halfspace is half of an equality pair pinning a
    /// degenerate (rank < 3) polytope to its affine hull. Equality pairs are
    /// exempt from [`ConvexPolytope::inflate`] — inflating them would give a
    /// planar region spurious volume.
    pub equality: bool,
}

impl Halfspace {
    /// Signed distance of `p` from the bounding plane (positive = outside).
    pub fn excess(&self, p: [f64; 3]) -> f64 {
        dot(self.n, p) - self.d
    }

    /// True when `p` lies inside (or within `tol` outside of) the halfspace.
    pub fn contains(&self, p: [f64; 3], tol: f64) -> bool {
        self.excess(p) <= tol
    }
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: [f64; 3], k: f64) -> [f64; 3] {
    [a[0] * k, a[1] * k, a[2] * k]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: [f64; 3]) -> Option<[f64; 3]> {
    let n = norm(a);
    if n < 1e-12 {
        None
    } else {
        Some(scale(a, 1.0 / n))
    }
}

/// A convex polytope given by both vertices and bounding halfspaces.
///
/// `rank` is the affine dimension of the vertex set: 3 for a solid, 2 for a
/// polygon, 1 for a segment, 0 for a point. Halfspaces are arranged so that
/// [`ConvexPolytope::contains`] works uniformly across ranks (degenerate
/// directions contribute opposing halfspace pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolytope {
    /// Extreme points of the polytope.
    pub vertices: Vec<[f64; 3]>,
    /// Bounding halfspaces (`n·x ≤ d` each).
    pub halfspaces: Vec<Halfspace>,
    /// Affine dimension of the vertex set (0–3).
    pub rank: usize,
}

/// Numerical tolerance for hull construction plane tests.
const HULL_EPS: f64 = 1e-9;

impl ConvexPolytope {
    /// Build the convex hull of a point cloud.
    ///
    /// Handles every affine rank; returns `None` only for an empty input.
    pub fn from_points(points: &[[f64; 3]]) -> Option<ConvexPolytope> {
        if points.is_empty() {
            return None;
        }
        // Deduplicate (coarse grid) to keep quickhull fast on dense clouds.
        let mut pts: Vec<[f64; 3]> = Vec::with_capacity(points.len());
        {
            let mut seen = std::collections::HashSet::new();
            for &p in points {
                let key = (
                    (p[0] * 1e7).round() as i64,
                    (p[1] * 1e7).round() as i64,
                    (p[2] * 1e7).round() as i64,
                );
                if seen.insert(key) {
                    pts.push(p);
                }
            }
        }

        // Affine rank via Gram–Schmidt over displacement vectors.
        let p0 = pts[0];
        let mut basis: Vec<[f64; 3]> = Vec::new();
        for &p in &pts[1..] {
            if basis.len() == 3 {
                break;
            }
            let mut v = sub(p, p0);
            for b in &basis {
                let c = dot(v, *b);
                v = sub(v, scale(*b, c));
            }
            if norm(v) > 1e-7 {
                basis.push(normalize(v).expect("norm checked above"));
            }
        }

        match basis.len() {
            0 => Some(Self::from_single_point(p0)),
            1 => Some(Self::from_segment(&pts, p0, basis[0])),
            2 => Some(Self::from_planar(&pts, p0, basis[0], basis[1])),
            _ => Self::from_solid(&pts),
        }
    }

    fn from_single_point(p: [f64; 3]) -> ConvexPolytope {
        let mut halfspaces = Vec::with_capacity(6);
        for axis in 0..3 {
            let mut n = [0.0; 3];
            n[axis] = 1.0;
            halfspaces.push(Halfspace {
                n,
                d: p[axis],
                equality: true,
            });
            n[axis] = -1.0;
            halfspaces.push(Halfspace {
                n,
                d: -p[axis],
                equality: true,
            });
        }
        ConvexPolytope {
            vertices: vec![p],
            halfspaces,
            rank: 0,
        }
    }

    fn from_segment(pts: &[[f64; 3]], p0: [f64; 3], u: [f64; 3]) -> ConvexPolytope {
        let mut tmin = f64::INFINITY;
        let mut tmax = f64::NEG_INFINITY;
        for &p in pts {
            let t = dot(sub(p, p0), u);
            tmin = tmin.min(t);
            tmax = tmax.max(t);
        }
        let a = add(p0, scale(u, tmin));
        let b = add(p0, scale(u, tmax));
        // Two perpendicular directions complete the halfspace description.
        let v = perpendicular(u);
        let w = cross(u, v);
        let mut halfspaces = vec![
            Halfspace {
                n: u,
                d: dot(u, b),
                equality: false,
            },
            Halfspace {
                n: scale(u, -1.0),
                d: -dot(u, a),
                equality: false,
            },
        ];
        for dir in [v, w] {
            let d = dot(dir, p0);
            halfspaces.push(Halfspace {
                n: dir,
                d,
                equality: true,
            });
            halfspaces.push(Halfspace {
                n: scale(dir, -1.0),
                d: -d,
                equality: true,
            });
        }
        ConvexPolytope {
            vertices: vec![a, b],
            halfspaces,
            rank: 1,
        }
    }

    fn from_planar(pts: &[[f64; 3]], p0: [f64; 3], u: [f64; 3], v: [f64; 3]) -> ConvexPolytope {
        let w = normalize(cross(u, v)).expect("u ⊥ v are unit vectors");
        // Project into the plane.
        let proj: Vec<(f64, f64)> = pts
            .iter()
            .map(|&p| {
                let d = sub(p, p0);
                (dot(d, u), dot(d, v))
            })
            .collect();
        let hull2 = hull_2d(&proj);
        let vertices: Vec<[f64; 3]> = hull2
            .iter()
            .map(|&(x, y)| add(p0, add(scale(u, x), scale(v, y))))
            .collect();

        let mut halfspaces = Vec::new();
        // Plane equality as an opposing pair.
        let dw = dot(w, p0);
        halfspaces.push(Halfspace {
            n: w,
            d: dw,
            equality: true,
        });
        halfspaces.push(Halfspace {
            n: scale(w, -1.0),
            d: -dw,
            equality: true,
        });
        // Edge halfspaces (2D hull is counter-clockwise).
        let m = hull2.len();
        for i in 0..m {
            let (x1, y1) = hull2[i];
            let (x2, y2) = hull2[(i + 1) % m];
            let (ex, ey) = (x2 - x1, y2 - y1);
            let len = (ex * ex + ey * ey).sqrt();
            if len < 1e-12 {
                continue;
            }
            // Outward normal of a CCW edge is (ey, -ex).
            let (nx, ny) = (ey / len, -ex / len);
            let n3 = add(scale(u, nx), scale(v, ny));
            let d = dot(n3, vertices[i]);
            halfspaces.push(Halfspace {
                n: n3,
                d,
                equality: false,
            });
        }
        ConvexPolytope {
            vertices,
            halfspaces,
            rank: 2,
        }
    }

    fn from_solid(pts: &[[f64; 3]]) -> Option<ConvexPolytope> {
        let faces = quickhull3(pts)?;
        // Collect unique vertices and deduplicated halfspaces.
        let mut vert_set: Vec<[f64; 3]> = Vec::new();
        let mut halfspaces: Vec<Halfspace> = Vec::new();
        let mut hs_keys = std::collections::HashSet::new();
        for f in &faces {
            for &vi in &[f.a, f.b, f.c] {
                let p = pts[vi];
                if !vert_set.iter().any(|q| norm(sub(*q, p)) < 1e-9) {
                    vert_set.push(p);
                }
            }
            let key = (
                (f.n[0] * 1e6).round() as i64,
                (f.n[1] * 1e6).round() as i64,
                (f.n[2] * 1e6).round() as i64,
                (f.d * 1e6).round() as i64,
            );
            if hs_keys.insert(key) {
                halfspaces.push(Halfspace {
                    n: f.n,
                    d: f.d,
                    equality: false,
                });
            }
        }
        Some(ConvexPolytope {
            vertices: vert_set,
            halfspaces,
            rank: 3,
        })
    }

    /// True when `p` lies inside the polytope, allowing `tol` of slack
    /// outside each bounding plane.
    pub fn contains(&self, p: [f64; 3], tol: f64) -> bool {
        self.halfspaces.iter().all(|h| h.contains(p, tol))
    }

    /// Push every bounding plane outward by `delta` (used to compensate the
    /// inward bias of hulls built from finite samples of a convex region).
    pub fn inflate(&mut self, delta: f64) {
        for h in self.halfspaces.iter_mut() {
            if !h.equality {
                h.d += delta;
            }
        }
    }

    /// Euclidean projection of `p` onto the polytope via Dykstra's
    /// alternating-projection algorithm. Exact for `p` inside (returns `p`).
    pub fn nearest_point(&self, p: [f64; 3]) -> [f64; 3] {
        if self.contains(p, 0.0) {
            return p;
        }
        let m = self.halfspaces.len();
        let mut x = p;
        let mut corrections = vec![[0.0f64; 3]; m];
        for _pass in 0..256 {
            let mut moved = 0.0f64;
            for (i, h) in self.halfspaces.iter().enumerate() {
                let y = add(x, corrections[i]);
                // Project y onto halfspace i.
                let ex = dot(h.n, y) - h.d;
                let proj = if ex > 0.0 { sub(y, scale(h.n, ex)) } else { y };
                corrections[i] = sub(y, proj);
                moved = moved.max(norm(sub(proj, x)));
                x = proj;
            }
            if moved < 1e-12 {
                break;
            }
        }
        x
    }

    /// Euclidean distance from `p` to the polytope (0 inside).
    pub fn distance(&self, p: [f64; 3]) -> f64 {
        norm(sub(p, self.nearest_point(p)))
    }

    /// Geometric (Lebesgue) volume. Zero for rank < 3.
    pub fn volume(&self) -> f64 {
        if self.rank < 3 || self.vertices.is_empty() {
            return 0.0;
        }
        // Fan of tetrahedra from the centroid over each facet triangle.
        // Rebuild facet triangles by re-hulling the vertices (cheap: vertex
        // count is small).
        let faces = match quickhull3(&self.vertices) {
            Some(f) => f,
            None => return 0.0,
        };
        let mut centroid = [0.0f64; 3];
        for v in &self.vertices {
            centroid = add(centroid, *v);
        }
        centroid = scale(centroid, 1.0 / self.vertices.len() as f64);
        let mut vol = 0.0;
        for f in &faces {
            let a = sub(self.vertices_nearest(f.pa), centroid);
            let b = sub(self.vertices_nearest(f.pb), centroid);
            let c = sub(self.vertices_nearest(f.pc), centroid);
            vol += dot(a, cross(b, c)).abs() / 6.0;
        }
        vol
    }

    fn vertices_nearest(&self, p: [f64; 3]) -> [f64; 3] {
        p
    }

    /// Centroid of the vertex set (not the volumetric centroid).
    pub fn vertex_centroid(&self) -> [f64; 3] {
        let mut c = [0.0f64; 3];
        for v in &self.vertices {
            c = add(c, *v);
        }
        scale(c, 1.0 / self.vertices.len().max(1) as f64)
    }
}

/// Any unit vector perpendicular to `u`.
fn perpendicular(u: [f64; 3]) -> [f64; 3] {
    let trial = if u[0].abs() < 0.9 {
        [1.0, 0.0, 0.0]
    } else {
        [0.0, 1.0, 0.0]
    };
    normalize(cross(u, trial)).expect("u is a unit vector, trial not parallel")
}

/// 2D convex hull (Andrew's monotone chain), counter-clockwise output.
///
/// Sorts an index vector (`sort_unstable_by`) rather than shuffling the
/// coordinate pairs themselves; output is identical because ties are exact
/// duplicates and the approximate dedup keeps the first of each run either
/// way.
fn hull_2d(pts: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut idx: Vec<u32> = (0..pts.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        pts[a as usize]
            .partial_cmp(&pts[b as usize])
            .expect("finite coordinates")
    });
    let mut p: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
    for &i in &idx {
        let pt = pts[i as usize];
        match p.last() {
            Some(&last) if (last.0 - pt.0).abs() < 1e-12 && (last.1 - pt.1).abs() < 1e-12 => {}
            _ => p.push(pt),
        }
    }
    if p.len() <= 2 {
        return p;
    }
    let cross2 = |o: (f64, f64), a: (f64, f64), b: (f64, f64)| {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    };
    let mut lower: Vec<(f64, f64)> = Vec::new();
    for &pt in &p {
        while lower.len() >= 2
            && cross2(lower[lower.len() - 2], lower[lower.len() - 1], pt) <= 1e-14
        {
            lower.pop();
        }
        lower.push(pt);
    }
    let mut upper: Vec<(f64, f64)> = Vec::new();
    for &pt in p.iter().rev() {
        while upper.len() >= 2
            && cross2(upper[upper.len() - 2], upper[upper.len() - 1], pt) <= 1e-14
        {
            upper.pop();
        }
        upper.push(pt);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// A hull facet: vertex indices plus the outward plane `n·x ≤ d`.
struct Face {
    a: usize,
    b: usize,
    c: usize,
    pa: [f64; 3],
    pb: [f64; 3],
    pc: [f64; 3],
    n: [f64; 3],
    d: f64,
}

/// Incremental quickhull in 3D. Returns the facet list, or `None` when the
/// points are not full-dimensional (caller falls back to lower-rank paths).
fn quickhull3(pts: &[[f64; 3]]) -> Option<Vec<Face>> {
    let n = pts.len();
    if n < 4 {
        return None;
    }

    // Initial simplex: extremes along x, then farthest from the line, then
    // farthest from the plane.
    let mut i0 = 0;
    let mut i1 = 0;
    for (i, p) in pts.iter().enumerate() {
        if p[0] < pts[i0][0] {
            i0 = i;
        }
        if p[0] > pts[i1][0] {
            i1 = i;
        }
    }
    if i0 == i1 {
        // Degenerate along x; try other axes via generic farthest pair.
        for (i, p) in pts.iter().enumerate() {
            if norm(sub(*p, pts[i0])) > norm(sub(pts[i1], pts[i0])) {
                i1 = i;
            }
        }
        if norm(sub(pts[i1], pts[i0])) < 1e-9 {
            return None;
        }
    }
    let u = normalize(sub(pts[i1], pts[i0]))?;
    let mut i2 = usize::MAX;
    let mut best = 1e-9;
    for (i, p) in pts.iter().enumerate() {
        let d = sub(*p, pts[i0]);
        let perp = sub(d, scale(u, dot(d, u)));
        let dist = norm(perp);
        if dist > best {
            best = dist;
            i2 = i;
        }
    }
    if i2 == usize::MAX {
        return None;
    }
    let plane_n = normalize(cross(sub(pts[i1], pts[i0]), sub(pts[i2], pts[i0])))?;
    let mut i3 = usize::MAX;
    let mut best = 1e-8;
    for (i, p) in pts.iter().enumerate() {
        let dist = dot(sub(*p, pts[i0]), plane_n).abs();
        if dist > best {
            best = dist;
            i3 = i;
        }
    }
    if i3 == usize::MAX {
        return None;
    }

    let interior = scale(add(add(pts[i0], pts[i1]), add(pts[i2], pts[i3])), 0.25);

    let mk_face = |a: usize, b: usize, c: usize| -> Face {
        let mut nrm =
            normalize(cross(sub(pts[b], pts[a]), sub(pts[c], pts[a]))).unwrap_or([0.0, 0.0, 1.0]);
        let mut d = dot(nrm, pts[a]);
        if dot(nrm, interior) > d {
            nrm = scale(nrm, -1.0);
            d = -d;
        }
        Face {
            a,
            b,
            c,
            pa: pts[a],
            pb: pts[b],
            pc: pts[c],
            n: nrm,
            d,
        }
    };

    let mut faces: Vec<Face> = vec![
        mk_face(i0, i1, i2),
        mk_face(i0, i1, i3),
        mk_face(i0, i2, i3),
        mk_face(i1, i2, i3),
    ];

    // Conflict lists.
    let mut outside: Vec<Vec<usize>> = vec![Vec::new(); faces.len()];
    for (i, p) in pts.iter().enumerate() {
        for (fi, f) in faces.iter().enumerate() {
            if dot(f.n, *p) - f.d > HULL_EPS {
                outside[fi].push(i);
                break;
            }
        }
    }

    // Per-call scratch, reused across refinement steps: the loop used to
    // allocate a visible list, a hash-set, an edge-count hash-map, a horizon
    // list, an orphan list, and two rebuilt face/outside vectors on every
    // iteration. Sorted-run edge counting replaces the hash map (the horizon
    // comes out already sorted), a boolean mark vector replaces the set, and
    // visible faces are compacted in place.
    let mut visible: Vec<usize> = Vec::new();
    let mut visible_mark: Vec<bool> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut horizon: Vec<(usize, usize)> = Vec::new();
    let mut orphans: Vec<usize> = Vec::new();

    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 100_000 {
            break; // safety valve; hull is still valid, slightly coarse
        }
        // Pick a face with outstanding points.
        let Some(fi) = outside.iter().position(|o| !o.is_empty()) else {
            break;
        };
        // Farthest point from that face.
        let &far = outside[fi]
            .iter()
            .max_by(|&&x, &&y| {
                let dx = dot(faces[fi].n, pts[x]) - faces[fi].d;
                let dy = dot(faces[fi].n, pts[y]) - faces[fi].d;
                dx.total_cmp(&dy)
            })
            .expect("non-empty outside set");
        let fp = pts[far];

        // Visible faces.
        visible.clear();
        visible.extend((0..faces.len()).filter(|&i| dot(faces[i].n, fp) - faces[i].d > HULL_EPS));
        if visible.is_empty() {
            // Numerical edge: drop the point.
            outside[fi].retain(|&x| x != far);
            continue;
        }
        visible_mark.clear();
        visible_mark.resize(faces.len(), false);
        for &vi in &visible {
            visible_mark[vi] = true;
        }

        // Horizon: undirected edges appearing in exactly one visible face.
        // Counting over a sorted edge list yields the same `count == 1`
        // filter as a hash map, with the horizon emerging already sorted.
        edges.clear();
        for &vi in &visible {
            let f = &faces[vi];
            for (x, y) in [(f.a, f.b), (f.b, f.c), (f.c, f.a)] {
                edges.push((x.min(y), x.max(y)));
            }
        }
        edges.sort_unstable();
        horizon.clear();
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j] == edges[i] {
                j += 1;
            }
            if j - i == 1 {
                horizon.push(edges[i]);
            }
            i = j;
        }

        // Gather orphaned points.
        orphans.clear();
        for &vi in &visible {
            orphans.append(&mut outside[vi]);
        }
        orphans.retain(|&x| x != far);

        // Compact away visible faces in place, preserving the relative
        // order of survivors (and their outside lists).
        let mut w = 0usize;
        for i in 0..faces.len() {
            if !visible_mark[i] {
                faces.swap(w, i);
                outside.swap(w, i);
                w += 1;
            }
        }
        faces.truncate(w);
        outside.truncate(w);

        // New faces from the horizon to the far point.
        for &(x, y) in &horizon {
            let f = mk_face(x, y, far);
            faces.push(f);
            outside.push(Vec::new());
        }

        // Reassign orphans.
        for &oi in &orphans {
            let p = pts[oi];
            for (fi2, f) in faces.iter().enumerate() {
                if dot(f.n, p) - f.d > HULL_EPS {
                    outside[fi2].push(oi);
                    break;
                }
            }
        }
    }

    Some(faces)
}

/// Largest membership tolerance for which the loose tier (bounding box +
/// dominant rows) is consulted. The box is inflated by this much, so any
/// query with `tol ≤ LOOSE_TOL_CAP` that the box rejects is genuinely
/// outside; larger tolerances skip straight to the strict scan.
pub(crate) const LOOSE_TOL_CAP: f64 = 1e-4;

/// Extra conservative slack added to the loose bounding box beyond
/// [`LOOSE_TOL_CAP`], absorbing the rounding of the corner solves.
const LOOSE_BOX_MARGIN: f64 = 1e-7;

/// Final outward padding of the loose box. Generous on purpose: corner
/// solves near-singular triples are skipped, and a box that is ~1e-3 too
/// wide rejects essentially no fewer points at Weyl-chamber scale (~0.8)
/// while guaranteeing no boundary point is ever wrongly pruned.
const LOOSE_BOX_PAD: f64 = 1e-3;

/// Maximum number of dominant rows per polytope in the loose tier.
const MAX_DOMINANT: usize = 4;

/// Per-polytope metadata inside a [`PolytopeBank`]: the row range in the
/// shared columns, the loose bounding box, and up to [`MAX_DOMINANT`]
/// dominant rows (indices into the shared columns) tried before the strict
/// scan.
#[derive(Debug, Clone, PartialEq)]
struct BankPoly {
    /// Half-open row range `[start, end)` in the bank columns, in the
    /// original `ConvexPolytope::halfspaces` order (Dykstra projection
    /// results depend on iteration order, so this preserves bit-identical
    /// distances).
    rows: (u32, u32),
    /// Loose bounding box, conservatively outside the `LOOSE_TOL_CAP`
    /// membership set.
    lo: [f64; 3],
    hi: [f64; 3],
    /// Dominant rows: a subset of this polytope's own rows with the highest
    /// measured rejection power, tried first. Being a subset of the strict
    /// rows, rejecting on them is structurally exact.
    dominant: [u32; MAX_DOMINANT],
    n_dominant: u8,
}

/// A flat, cache-friendly bank of halfspace polytopes.
///
/// All polytopes' halfspace rows live in four contiguous
/// structure-of-arrays columns (`nx, ny, nz, offset`); each polytope is a
/// row range plus a *loose tier* — an axis-aligned bounding box and a few
/// dominant rows — that rejects most outside points before the strict
/// full-H-rep scan. [`PolytopeBank::contains`] and
/// [`PolytopeBank::distance`] answer exactly what the source
/// [`ConvexPolytope`]s would (`contains` is the same boolean, `distance`
/// the same Dykstra iteration bit for bit) while performing zero heap
/// allocation per query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolytopeBank {
    nx: Vec<f64>,
    ny: Vec<f64>,
    nz: Vec<f64>,
    off: Vec<f64>,
    polys: Vec<BankPoly>,
}

thread_local! {
    /// Reusable Dykstra correction buffer: sized to the largest polytope
    /// seen by this thread, so steady-state `distance` queries allocate
    /// nothing.
    static DYKSTRA_SCRATCH: std::cell::RefCell<Vec<[f64; 3]>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl PolytopeBank {
    /// An empty bank.
    pub fn new() -> PolytopeBank {
        PolytopeBank::default()
    }

    /// Number of polytopes in the bank.
    pub fn poly_count(&self) -> u32 {
        self.polys.len() as u32
    }

    /// Number of halfspace rows across all polytopes.
    pub fn row_count(&self) -> usize {
        self.off.len()
    }

    /// The polytope's loose bounding box (conservatively padded — see
    /// `loose_bbox`). Used to assemble per-level union boxes.
    pub(crate) fn poly_box(&self, id: u32) -> ([f64; 3], [f64; 3]) {
        let poly = &self.polys[id as usize];
        (poly.lo, poly.hi)
    }

    /// Append a polytope's halfspaces to the bank, computing its loose
    /// tier. Returns the polytope's bank id.
    pub fn push(&mut self, poly: &ConvexPolytope) -> u32 {
        let start = self.off.len() as u32;
        for h in &poly.halfspaces {
            self.nx.push(h.n[0]);
            self.ny.push(h.n[1]);
            self.nz.push(h.n[2]);
            self.off.push(h.d);
        }
        let end = self.off.len() as u32;
        let (lo, hi) = loose_bbox(poly);
        let (dominant, n_dominant) = self.dominant_rows(start, end, lo, hi);
        let id = self.polys.len() as u32;
        self.polys.push(BankPoly {
            rows: (start, end),
            lo,
            hi,
            dominant,
            n_dominant,
        });
        id
    }

    /// Signed plane excess of row `r` at `p` (same arithmetic order as
    /// [`Halfspace::excess`], so values are bit-identical).
    #[inline(always)]
    fn excess(&self, r: usize, p: [f64; 3]) -> f64 {
        self.nx[r] * p[0] + self.ny[r] * p[1] + self.nz[r] * p[2] - self.off[r]
    }

    /// Membership query: true when `p` lies within `tol` of every bounding
    /// plane. Identical to `ConvexPolytope::contains` on the source
    /// polytope; the loose tier only ever rejects points the strict scan
    /// would reject too.
    #[inline(always)]
    pub fn contains(&self, id: u32, p: [f64; 3], tol: f64) -> bool {
        let poly = &self.polys[id as usize];
        // The loose tier only pays for itself on polytopes with enough rows
        // to make the strict scan expensive; a handful of rows is already as
        // cheap as the box test, so go straight to them.
        let strict_rows = (poly.rows.1 - poly.rows.0) as usize;
        if tol <= LOOSE_TOL_CAP && strict_rows > 16 {
            // Branchless in-box predicate: one data-dependent branch total
            // instead of six (misprediction on random query points costs
            // more than the five extra compares).
            let inside = (p[0] >= poly.lo[0]) as u8
                & (p[0] <= poly.hi[0]) as u8
                & (p[1] >= poly.lo[1]) as u8
                & (p[1] <= poly.hi[1]) as u8
                & (p[2] >= poly.lo[2]) as u8
                & (p[2] <= poly.hi[2]) as u8;
            if inside == 0 {
                return false;
            }
            for &r in &poly.dominant[..poly.n_dominant as usize] {
                if self.excess(r as usize, p) > tol {
                    return false;
                }
            }
        }
        // Strict tier: contiguous-slice walk with the same first-violation
        // early exit as `ConvexPolytope::contains` (equal-length slices
        // borrowed up front so the per-row bounds checks vanish).
        let (s, e) = (poly.rows.0 as usize, poly.rows.1 as usize);
        let (nx, ny) = (&self.nx[s..e], &self.ny[s..e]);
        let (nz, off) = (&self.nz[s..e], &self.off[s..e]);
        for i in 0..nx.len() {
            if nx[i] * p[0] + ny[i] * p[1] + nz[i] * p[2] - off[i] > tol {
                return false;
            }
        }
        true
    }

    /// Euclidean projection of `p` onto polytope `id` — Dykstra's
    /// alternating projections over the bank rows in original halfspace
    /// order, bit-identical to `ConvexPolytope::nearest_point`.
    pub fn nearest_point(&self, id: u32, p: [f64; 3]) -> [f64; 3] {
        if self.contains(id, p, 0.0) {
            return p;
        }
        let poly = &self.polys[id as usize];
        let (s, e) = (poly.rows.0 as usize, poly.rows.1 as usize);
        DYKSTRA_SCRATCH.with(|cell| {
            let mut corrections = cell.borrow_mut();
            corrections.clear();
            corrections.resize(e - s, [0.0f64; 3]);
            let mut x = p;
            for _pass in 0..256 {
                let mut moved = 0.0f64;
                for (i, r) in (s..e).enumerate() {
                    let n = [self.nx[r], self.ny[r], self.nz[r]];
                    let y = add(x, corrections[i]);
                    // Project y onto halfspace r.
                    let ex = dot(n, y) - self.off[r];
                    let proj = if ex > 0.0 { sub(y, scale(n, ex)) } else { y };
                    corrections[i] = sub(y, proj);
                    moved = moved.max(norm(sub(proj, x)));
                    x = proj;
                }
                if moved < 1e-12 {
                    break;
                }
            }
            x
        })
    }

    /// Euclidean distance from `p` to polytope `id` (0 inside).
    pub fn distance(&self, id: u32, p: [f64; 3]) -> f64 {
        norm(sub(p, self.nearest_point(id, p)))
    }

    /// Choose up to [`MAX_DOMINANT`] dominant rows for the polytope whose
    /// rows span `[start, end)`: greedy max-coverage over a deterministic
    /// probe lattice spread across the loose box, counting which rows
    /// reject which outside probes. Build-time only.
    fn dominant_rows(
        &self,
        start: u32,
        end: u32,
        lo: [f64; 3],
        hi: [f64; 3],
    ) -> ([u32; MAX_DOMINANT], u8) {
        let m = (end - start) as usize;
        let mut dominant = [0u32; MAX_DOMINANT];
        if m <= MAX_DOMINANT + 2 || !lo[0].is_finite() {
            return (dominant, 0); // strict scan is already cheap
        }
        // Probe lattice over the loose box: interior-ish points that pass
        // the box test are exactly the ones the dominant rows must catch.
        const STEPS: usize = 5;
        let mut probes: Vec<[f64; 3]> = Vec::with_capacity(STEPS * STEPS * STEPS);
        for i in 0..STEPS {
            for j in 0..STEPS {
                for l in 0..STEPS {
                    let f = |t: usize, a: usize| {
                        lo[a] + (hi[a] - lo[a]) * (t as f64 + 0.5) / STEPS as f64
                    };
                    probes.push([f(i, 0), f(j, 1), f(l, 2)]);
                }
            }
        }
        // rejected[probe] per row, as a bitset over probes.
        let words = probes.len().div_ceil(64);
        let mut reject: Vec<u64> = vec![0; m * words];
        let mut outside: Vec<u64> = vec![0; words];
        for (pi, &p) in probes.iter().enumerate() {
            for r in 0..m {
                if self.excess(start as usize + r, p) > LOOSE_TOL_CAP {
                    reject[r * words + pi / 64] |= 1 << (pi % 64);
                    outside[pi / 64] |= 1 << (pi % 64);
                }
            }
        }
        // Greedy set cover: repeatedly take the row rejecting the most
        // still-uncovered outside probes (ties → lowest row index).
        let mut n_dom = 0u8;
        let mut uncovered = outside;
        for slot in 0..MAX_DOMINANT {
            let mut best_row = usize::MAX;
            let mut best_gain = 0u32;
            for r in 0..m {
                let gain: u32 = (0..words)
                    .map(|w| (reject[r * words + w] & uncovered[w]).count_ones())
                    .sum();
                if gain > best_gain {
                    best_gain = gain;
                    best_row = r;
                }
            }
            if best_row == usize::MAX {
                break;
            }
            dominant[slot] = start + best_row as u32;
            n_dom = slot as u8 + 1;
            for w in 0..words {
                uncovered[w] &= !reject[best_row * words + w];
            }
        }
        (dominant, n_dom)
    }
}

/// Conservative outer bounding box of the `LOOSE_TOL_CAP`-relaxed
/// membership set of `poly`: corner candidates come from intersecting every
/// triple of bounding planes pushed out by the cap, keeping the feasible
/// ones, unioned with the polytope's own vertices. Errors are only ever
/// outward (a looser box admits more points to the strict scan — never
/// wrong, just slower).
fn loose_bbox(poly: &ConvexPolytope) -> ([f64; 3], [f64; 3]) {
    let hs = &poly.halfspaces;
    let m = hs.len();
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    let grow = |q: [f64; 3], lo: &mut [f64; 3], hi: &mut [f64; 3]| {
        for a in 0..3 {
            lo[a] = lo[a].min(q[a]);
            hi[a] = hi[a].max(q[a]);
        }
    };
    for &v in &poly.vertices {
        grow(v, &mut lo, &mut hi);
    }
    let mut any_corner = false;
    for i in 0..m {
        for j in (i + 1)..m {
            for k in (j + 1)..m {
                let Some(x) = solve3(
                    [hs[i].n, hs[j].n, hs[k].n],
                    [
                        hs[i].d + LOOSE_TOL_CAP,
                        hs[j].d + LOOSE_TOL_CAP,
                        hs[k].d + LOOSE_TOL_CAP,
                    ],
                ) else {
                    continue;
                };
                let feasible = hs
                    .iter()
                    .all(|h| h.excess(x) <= LOOSE_TOL_CAP + LOOSE_BOX_MARGIN);
                if feasible {
                    any_corner = true;
                    grow(x, &mut lo, &mut hi);
                }
            }
        }
    }
    if !any_corner {
        // Couldn't establish a bounded relaxed corner set; disable the box
        // (never prune) rather than risk a wrong rejection.
        return ([f64::NEG_INFINITY; 3], [f64::INFINITY; 3]);
    }
    for a in 0..3 {
        lo[a] -= LOOSE_BOX_PAD;
        hi[a] += LOOSE_BOX_PAD;
    }
    (lo, hi)
}

/// Solve the 3×3 linear system `A·x = b` (rows of `a` are the equations)
/// by Cramer's rule; `None` when the matrix is near-singular.
fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let det3 = |m: [[f64; 3]; 3]| {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let det = det3(a);
    if det.abs() < 1e-12 {
        return None;
    }
    let mut x = [0.0f64; 3];
    for c in 0..3 {
        let mut mc = a;
        for (r, row) in mc.iter_mut().enumerate() {
            row[c] = b[r];
        }
        x[c] = det3(mc) / det;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::Rng;

    fn unit_cube_points() -> Vec<[f64; 3]> {
        let mut v = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    v.push([x, y, z]);
                }
            }
        }
        v
    }

    #[test]
    fn cube_hull_basics() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert_eq!(p.rank, 3);
        assert_eq!(p.vertices.len(), 8);
        assert!((p.volume() - 1.0).abs() < 1e-9, "volume = {}", p.volume());
    }

    #[test]
    fn cube_membership() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert!(p.contains([0.5, 0.5, 0.5], 1e-12));
        assert!(p.contains([0.0, 0.0, 0.0], 1e-9)); // vertex
        assert!(p.contains([1.0, 0.5, 0.5], 1e-9)); // face
        assert!(!p.contains([1.2, 0.5, 0.5], 1e-9));
        assert!(!p.contains([-0.1, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn cube_with_interior_noise() {
        let mut pts = unit_cube_points();
        let mut rng = Rng::new(5);
        for _ in 0..2000 {
            pts.push([rng.uniform(), rng.uniform(), rng.uniform()]);
        }
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.vertices.len(), 8);
        assert!((p.volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tetrahedron_volume() {
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert!((p.volume() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.halfspaces.len(), 4);
    }

    #[test]
    fn planar_square() {
        let pts = vec![
            [0.0, 0.0, 0.5],
            [1.0, 0.0, 0.5],
            [1.0, 1.0, 0.5],
            [0.0, 1.0, 0.5],
            [0.5, 0.5, 0.5],
        ];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 2);
        assert_eq!(p.volume(), 0.0);
        assert!(p.contains([0.5, 0.5, 0.5], 1e-9));
        assert!(p.contains([0.99, 0.01, 0.5], 1e-9));
        assert!(!p.contains([0.5, 0.5, 0.6], 1e-6));
        assert!(!p.contains([1.5, 0.5, 0.5], 1e-6));
    }

    #[test]
    fn segment_polytope() {
        let pts = vec![[0.0, 0.0, 0.0], [0.5, 0.5, 0.5], [1.0, 1.0, 1.0]];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 1);
        assert_eq!(p.vertices.len(), 2);
        assert!(p.contains([0.25, 0.25, 0.25], 1e-9));
        assert!(!p.contains([0.25, 0.3, 0.25], 1e-6));
        assert!(!p.contains([1.1, 1.1, 1.1], 1e-6));
    }

    #[test]
    fn point_polytope() {
        let pts = vec![[0.3, 0.4, 0.5]];
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert_eq!(p.rank, 0);
        assert!(p.contains([0.3, 0.4, 0.5], 1e-9));
        assert!(p.contains([0.3 + 1e-10, 0.4, 0.5], 1e-9));
        assert!(!p.contains([0.31, 0.4, 0.5], 1e-6));
    }

    #[test]
    fn empty_input() {
        assert!(ConvexPolytope::from_points(&[]).is_none());
    }

    #[test]
    fn nearest_point_inside_is_identity() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = [0.3, 0.7, 0.5];
        assert_eq!(p.nearest_point(x), x);
    }

    #[test]
    fn nearest_point_face_projection() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = p.nearest_point([0.5, 0.5, 2.0]);
        assert!(norm(sub(x, [0.5, 0.5, 1.0])) < 1e-6, "{x:?}");
        assert!((p.distance([0.5, 0.5, 2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nearest_point_corner_projection() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let x = p.nearest_point([2.0, 2.0, 2.0]);
        assert!(norm(sub(x, [1.0, 1.0, 1.0])) < 1e-5, "{x:?}");
    }

    #[test]
    fn inflate_grows_membership() {
        let mut p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        assert!(!p.contains([1.005, 0.5, 0.5], 1e-9));
        p.inflate(0.01);
        assert!(p.contains([1.005, 0.5, 0.5], 1e-9));
    }

    #[test]
    fn random_hull_contains_all_inputs() {
        let mut rng = Rng::new(11);
        let pts: Vec<[f64; 3]> = (0..500)
            .map(|_| [rng.gaussian(), rng.gaussian() * 0.5, rng.gaussian() * 2.0])
            .collect();
        let p = ConvexPolytope::from_points(&pts).unwrap();
        for &pt in &pts {
            assert!(p.contains(pt, 1e-7), "{pt:?} escaped its own hull");
        }
    }

    #[test]
    fn hull_volume_of_simplex_cloud() {
        // Points uniform in the standard simplex: hull volume → 1/6.
        let mut rng = Rng::new(13);
        let mut pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        for _ in 0..300 {
            let mut x = [rng.uniform(), rng.uniform(), rng.uniform()];
            while x[0] + x[1] + x[2] > 1.0 {
                x = [rng.uniform(), rng.uniform(), rng.uniform()];
            }
            pts.push(x);
        }
        let p = ConvexPolytope::from_points(&pts).unwrap();
        assert!((p.volume() - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn hull_2d_square() {
        let h = hull_2d(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (0.5, 0.5),
            (0.2, 0.8),
        ]);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn bank_matches_polytope_on_cube() {
        let p = ConvexPolytope::from_points(&unit_cube_points()).unwrap();
        let mut bank = PolytopeBank::new();
        let id = bank.push(&p);
        let mut rng = Rng::new(77);
        for _ in 0..2000 {
            let q = [
                rng.uniform_range(-0.5, 1.5),
                rng.uniform_range(-0.5, 1.5),
                rng.uniform_range(-0.5, 1.5),
            ];
            for tol in [0.0, 1e-9, 1e-6, 1e-3] {
                assert_eq!(
                    bank.contains(id, q, tol),
                    p.contains(q, tol),
                    "{q:?} @ {tol}"
                );
            }
            assert_eq!(bank.nearest_point(id, q), p.nearest_point(q), "{q:?}");
            assert!(bank.distance(id, q) == p.distance(q), "{q:?}");
        }
    }

    #[test]
    fn bank_matches_on_random_and_degenerate_hulls() {
        let mut rng = Rng::new(91);
        let cloud: Vec<[f64; 3]> = (0..200)
            .map(|_| {
                [
                    rng.gaussian() * 0.3,
                    rng.gaussian() * 0.2,
                    rng.gaussian() * 0.1,
                ]
            })
            .collect();
        let solid = ConvexPolytope::from_points(&cloud).unwrap();
        let planar = ConvexPolytope::from_points(&[
            [0.0, 0.0, 0.5],
            [1.0, 0.0, 0.5],
            [1.0, 1.0, 0.5],
            [0.0, 1.0, 0.5],
        ])
        .unwrap();
        let segment = ConvexPolytope::from_points(&[[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]).unwrap();
        let point = ConvexPolytope::from_points(&[[0.3, 0.4, 0.5]]).unwrap();
        let mut bank = PolytopeBank::new();
        let polys = [solid, planar, segment, point];
        let ids: Vec<u32> = polys.iter().map(|p| bank.push(p)).collect();
        assert_eq!(bank.poly_count(), 4);
        for _ in 0..1500 {
            let q = [
                rng.uniform_range(-1.5, 1.5),
                rng.uniform_range(-1.5, 1.5),
                rng.uniform_range(-1.5, 1.5),
            ];
            for (id, p) in ids.iter().zip(&polys) {
                for tol in [0.0, 1e-9, 1e-6, 1e-4, 1e-2] {
                    assert_eq!(bank.contains(*id, q, tol), p.contains(q, tol));
                }
                assert!(bank.distance(*id, q) == p.distance(q));
            }
        }
    }

    #[test]
    fn bank_matches_on_inflated_hulls() {
        // Inflated polytopes (membership set extends past the vertices) are
        // the production case — the loose box must stay conservative.
        let mut rng = Rng::new(93);
        let cloud: Vec<[f64; 3]> = (0..150)
            .map(|_| {
                [
                    rng.uniform() * 0.7,
                    rng.uniform() * 0.5,
                    rng.gaussian() * 0.2,
                ]
            })
            .collect();
        let mut p = ConvexPolytope::from_points(&cloud).unwrap();
        p.inflate(0.012);
        let mut bank = PolytopeBank::new();
        let id = bank.push(&p);
        // Probe specifically near every bounding plane (just inside and
        // just outside), where a too-tight loose tier would flip answers.
        for h in p.halfspaces.clone() {
            for (vi, v) in p.vertices.clone().into_iter().enumerate() {
                let _ = vi;
                for off in [-1e-6, -1e-9, 0.0, 1e-9, 1e-6] {
                    let ex = h.excess(v);
                    let q = [
                        v[0] + h.n[0] * (off - ex),
                        v[1] + h.n[1] * (off - ex),
                        v[2] + h.n[2] * (off - ex),
                    ];
                    for tol in [0.0, 1e-9, 1e-6] {
                        assert_eq!(bank.contains(id, q, tol), p.contains(q, tol), "{q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn halfspace_excess_sign() {
        let h = Halfspace {
            n: [0.0, 0.0, 1.0],
            d: 1.0,
            equality: false,
        };
        assert!(h.excess([0.0, 0.0, 2.0]) > 0.0);
        assert!(h.excess([0.0, 0.0, 0.5]) < 0.0);
        assert!(h.contains([0.0, 0.0, 1.0], 1e-12));
    }
}
