//! Coverage polytopes, Haar scores, and approximate-decomposition Monte
//! Carlo — the reproduction of the paper's monodromy machinery (§III).
//!
//! A *coverage set* describes, for a basis gate `B` and each circuit depth
//! `k`, the region of the Weyl chamber reachable by an ansatz of `k`
//! applications of `B` interleaved with arbitrary single-qubit gates.
//! Monodromy theory guarantees these regions are (unions of) convex
//! polytopes in canonical coordinates; the paper computes them with the
//! `monodromy` package, and we reconstruct them by sampling the ansatz and
//! taking convex hulls (see `DESIGN.md` for the validation anchors).
//!
//! Modules:
//!
//! * [`geom`] — low-level 3D geometry: convex hulls (quickhull with
//!   degenerate-rank fallbacks), halfspace polytopes with membership and
//!   nearest-point queries, and the [`geom::PolytopeBank`] — the packed
//!   two-tier (loose box + strict H-rep) structure-of-arrays layout that
//!   query paths run on, allocation-free.
//! * [`set`] — [`set::CoverageSet`]: per-depth regions for a basis gate,
//!   standard or mirror-inclusive, plus minimum-cost queries (banked fast
//!   path with `*_legacy_geom` reference twins).
//! * [`atlas`] — serialized coverage atlases: checked-in binaries of the
//!   stock-basis sets (√iSWAP, CNOT, CZ, mirror-inclusive iSWAP^(1/3))
//!   loaded at `Target` construction instead of re-running quickhull,
//!   checksummed and fingerprint-pinned.
//! * [`haar`] — Haar scores and average fidelities (paper Tables I/II
//!   inputs) and the decoherence fidelity model shared with `mirage-synth`.
//! * [`approx`] — the paper's Algorithm 1: Monte Carlo Haar scores with
//!   approximate decomposition, parameterized by a numerical-decomposition
//!   callback (provided by `mirage-synth` to avoid a dependency cycle).
//! * [`cache`] — the LRU coordinate→cost cache of paper Fig. 13a.
//!
//! ---
//! **Owns:** [`set::CoverageSet`]/[`set::BasisGate`], [`geom`] polytopes
//! and [`geom::PolytopeBank`], [`atlas`] serialization,
//! [`haar::HaarScore`]/[`haar::FidelityModel`], [`cache::CostCache`].
//! **Paper:** §III (monodromy coverage, Algorithm 1), Tables I/II,
//! Figs. 3–6 and 13a.

pub mod approx;
pub mod atlas;
pub mod cache;
pub mod geom;
pub mod haar;
pub mod set;

pub use cache::CostCache;
pub use geom::{ConvexPolytope, Halfspace, PolytopeBank};
pub use haar::{FidelityModel, HaarScore};
pub use set::{BasisGate, CoverageLevel, CoverageSet};
