//! Approximate-decomposition Haar scores — the paper's Algorithm 1.
//!
//! A cheaper (shorter) ansatz may approximate a target unitary with some
//! decomposition infidelity; the approximation is worth taking when the
//! fidelity lost to the approximation is smaller than the fidelity gained by
//! running fewer noisy basis gates. Algorithm 1 Monte-Carlo-samples Haar
//! targets and, for each, tries every cheaper coverage level, accepting the
//! cheapest one whose *total* fidelity (decomposition × circuit) beats the
//! exact decomposition's circuit fidelity.
//!
//! The numerical optimizer is injected as a callback so this crate does not
//! depend on `mirage-synth` (which already depends on this crate). The
//! callback answers: "what decomposition fidelity can a depth-`k` ansatz
//! reach for this target?"

use crate::haar::FidelityModel;
use crate::set::CoverageSet;
use mirage_gates::haar_2q;
use mirage_math::{Mat4, Rng};
use mirage_weyl::coords::coords_of;

/// Callback estimating the decomposition fidelity achievable by a depth-`k`
/// ansatz of the set's basis gate for the given target. `None` means "did
/// not converge / not attempted".
pub type DecompOracle<'a> = dyn Fn(&Mat4, usize) -> Option<f64> + 'a;

/// Outcome of one Algorithm-1 run.
#[derive(Debug, Clone)]
pub struct ApproxScore {
    /// Average accepted cost (the approximate Haar score).
    pub score: f64,
    /// Average total fidelity of the accepted decompositions.
    pub avg_fidelity: f64,
    /// Running mean of the cost after each iteration (paper Fig. 5's
    /// convergence trace).
    pub trace: Vec<f64>,
    /// Fraction of samples where a cheaper approximate level was accepted.
    pub approx_accept_rate: f64,
}

/// Paper Algorithm 1: Monte Carlo Haar score with approximate
/// decomposition.
///
/// For each Haar sample: find the exact cost from the coverage set, set the
/// fidelity threshold to the exact decomposition's circuit fidelity, then
/// try every cheaper level through `oracle`; accept the cheapest level whose
/// total fidelity exceeds the threshold.
pub fn approx_gate_costs(
    set: &CoverageSet,
    model: &FidelityModel,
    n: usize,
    seed: u64,
    oracle: &DecompOracle<'_>,
) -> ApproxScore {
    let mut rng = Rng::new(seed);
    let mut total_cost = 0.0;
    let mut total_fid = 0.0;
    let mut accepted = 0usize;
    let mut trace = Vec::with_capacity(n);

    for i in 0..n {
        let target = haar_2q(&mut rng);
        let w = coords_of(&target);
        let exact_k = set.min_k(&w).unwrap_or(set.max_level().k + 1);
        let exact_cost = exact_k as f64 * set.basis.duration;
        let threshold = model.circuit_fidelity(exact_cost);

        let mut best_cost = exact_cost;
        let mut best_fid = threshold;
        // Try cheaper levels, cheapest first, so the first acceptance wins.
        for k in 1..exact_k {
            let cost = k as f64 * set.basis.duration;
            if let Some(decomp_fid) = oracle(&target, k) {
                let total = decomp_fid * model.circuit_fidelity(cost);
                if total > threshold {
                    best_cost = cost;
                    best_fid = total;
                    accepted += 1;
                    break;
                }
            }
        }

        total_cost += best_cost;
        total_fid += best_fid;
        trace.push(total_cost / (i + 1) as f64);
    }

    ApproxScore {
        score: total_cost / n as f64,
        avg_fidelity: total_fid / n as f64,
        trace,
        approx_accept_rate: accepted as f64 / n as f64,
    }
}

/// A cheap geometric stand-in for a numerical optimizer: estimates the
/// decomposition fidelity of a depth-`k` ansatz as a function of the
/// Euclidean distance from the target's coordinates to the level's region.
///
/// Near the region the infidelity of the best approximation grows
/// quadratically in the chamber distance (both are Riemannian metrics around
/// the optimum), so `F ≈ 1 − β·d²` with `β` fit offline against the real
/// optimizer (`mirage-synth` provides the real one; benches use it).
pub fn distance_oracle<'a>(
    set: &'a CoverageSet,
    beta: f64,
) -> impl Fn(&Mat4, usize) -> Option<f64> + 'a {
    move |target: &Mat4, k: usize| {
        let w = coords_of(target);
        // Banked distance: same Dykstra iteration as the per-level polytope
        // walk, on the packed rows (value-identical, allocation-free).
        let d = set.level_distance(k, &w)?;
        Some((1.0 - beta * d * d).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{BasisGate, CoverageOptions, CoverageSet};

    fn small_set(mirrors: bool) -> CoverageSet {
        let opts = CoverageOptions {
            max_k: 3,
            samples_per_k: 900,
            inflation: 0.012,
            mirrors,
            seed: 31,
        };
        CoverageSet::build(BasisGate::iswap_root(2), &opts)
    }

    #[test]
    fn rejecting_oracle_reproduces_exact_score() {
        let set = small_set(false);
        let model = FidelityModel::paper_default();
        let never = |_: &Mat4, _: usize| -> Option<f64> { None };
        let a = approx_gate_costs(&set, &model, 1500, 4, &never);
        let exact = crate::haar::haar_score(&set, &model, 1500, 4);
        assert!(
            (a.score - exact.score).abs() < 1e-9,
            "{} vs {}",
            a.score,
            exact.score
        );
        assert_eq!(a.approx_accept_rate, 0.0);
    }

    #[test]
    fn perfect_oracle_collapses_to_k1() {
        // An oracle claiming perfect fidelity at every depth accepts k=1
        // always (total fidelity at k=1 beats any deeper threshold).
        let set = small_set(false);
        let model = FidelityModel::paper_default();
        let always = |_: &Mat4, _: usize| -> Option<f64> { Some(1.0) };
        let a = approx_gate_costs(&set, &model, 500, 5, &always);
        assert!((a.score - 0.5).abs() < 1e-9, "score = {}", a.score);
        assert!(a.approx_accept_rate > 0.99);
    }

    #[test]
    fn distance_oracle_improves_score_but_not_below_k1() {
        let set = small_set(false);
        let model = FidelityModel::paper_default();
        let oracle = distance_oracle(&set, 12.0);
        let a = approx_gate_costs(&set, &model, 1500, 6, &oracle);
        let exact = crate::haar::haar_score(&set, &model, 1500, 6);
        assert!(a.score <= exact.score + 1e-12);
        assert!(a.score >= 0.5);
        // Average fidelity should not degrade (acceptance requires beating
        // the exact threshold).
        assert!(a.avg_fidelity >= exact.avg_fidelity - 1e-9);
    }

    #[test]
    fn trace_is_running_mean() {
        let set = small_set(false);
        let model = FidelityModel::paper_default();
        let never = |_: &Mat4, _: usize| -> Option<f64> { None };
        let a = approx_gate_costs(&set, &model, 50, 7, &never);
        assert_eq!(a.trace.len(), 50);
        let last = *a.trace.last().unwrap();
        assert!((last - a.score).abs() < 1e-12);
    }

    #[test]
    fn trace_converges() {
        let set = small_set(false);
        let model = FidelityModel::paper_default();
        let oracle = distance_oracle(&set, 12.0);
        let a = approx_gate_costs(&set, &model, 2000, 8, &oracle);
        // Late-trace wobble should be small.
        let tail: Vec<f64> = a.trace[1500..].to_vec();
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min < 0.02, "trace still moving: [{min}, {max}]");
    }
}
