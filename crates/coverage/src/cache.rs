//! The LRU coordinate→cost cache (paper Fig. 13a).
//!
//! MIRAGE queries decomposition costs for the same handful of coordinate
//! classes over and over (every CNOT in a circuit shares one class), so the
//! paper adds a software lookup table in front of the polytope membership
//! scan. This is that table: keys are quantized Weyl coordinates, values are
//! costs; eviction is least-recently-used.

use mirage_weyl::coords::WeylCoord;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A bounded least-recently-used cache from quantized coordinates to cost.
#[derive(Debug)]
pub struct CostCache {
    capacity: usize,
    map: HashMap<(u16, u16, u16), (f64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CostCache {
    /// Create a cache holding at most `capacity` coordinate classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> CostCache {
        assert!(capacity > 0, "cache capacity must be positive");
        CostCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a coordinate, or compute-and-insert through `f`.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(&mut self, w: &WeylCoord, f: F) -> f64 {
        self.clock += 1;
        let key = w.quantized();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.1 = self.clock;
            self.hits += 1;
            return entry.0;
        }
        self.misses += 1;
        let v = f();
        if self.map.len() >= self.capacity {
            self.evict_oldest();
        }
        self.map.insert(key, (v, self.clock));
        v
    }

    /// Look up without inserting.
    pub fn peek(&self, w: &WeylCoord) -> Option<f64> {
        self.map.get(&w.quantized()).map(|e| e.0)
    }

    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self.map.iter().min_by_key(|(_, (_, t))| *t) {
            self.map.remove(&key);
        }
    }

    /// Number of cached classes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe sharded wrapper over [`CostCache`].
///
/// One instance is shared by every routing trial, refinement pass, and
/// metric computation of a transpile call (and across calls, when the
/// caller reuses its `Target`), replacing the per-call caches the seed
/// constructed in each pipeline branch. Keys are spread over independently
/// locked shards so parallel layout trials don't serialize on one mutex;
/// cached values are pure functions of the coordinate class, so sharing
/// never changes results.
#[derive(Debug)]
pub struct SharedCostCache {
    shards: Vec<Mutex<CostCache>>,
}

impl SharedCostCache {
    /// Upper bound on the automatically chosen shard count — beyond this,
    /// extra mutexes only add memory, not concurrency.
    pub const MAX_DEFAULT_SHARDS: usize = 64;

    /// The default shard count: one per available hardware thread (the
    /// number of routing trials that can actually contend at once), clamped
    /// to `[1, MAX_DEFAULT_SHARDS]`. Falls back to 16 when the platform
    /// cannot report its parallelism.
    pub fn default_shard_count() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(16)
            .clamp(1, Self::MAX_DEFAULT_SHARDS)
    }

    /// Create a sharded cache holding roughly `capacity` coordinate classes
    /// in total, with [`SharedCostCache::default_shard_count`] shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> SharedCostCache {
        SharedCostCache::with_shards(capacity, Self::default_shard_count())
    }

    /// Create a sharded cache with an explicit shard count (the contention
    /// micro-bench sweeps this; capacity-limited callers get fewer shards so
    /// a capacity-1 cache really does hold a single class — the runtime
    /// figure relies on this to emulate uncached behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> SharedCostCache {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let n_shards = capacity.min(shards);
        let per_shard = capacity.div_ceil(n_shards);
        SharedCostCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(CostCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, w: &WeylCoord) -> &Mutex<CostCache> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        w.quantized().hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    /// Look up a coordinate, or compute-and-insert through `f`.
    ///
    /// `f` runs while the shard lock is held, so concurrent queries of one
    /// class compute at most once per shard residence.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(&self, w: &WeylCoord, f: F) -> f64 {
        self.shard(w)
            .lock()
            .expect("cache shard poisoned")
            .get_or_insert_with(w, f)
    }

    /// Look up without inserting.
    pub fn peek(&self, w: &WeylCoord) -> Option<f64> {
        self.shard(w).lock().expect("cache shard poisoned").peek(w)
    }

    /// Total cached classes across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate `(hits, misses)` counters across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").stats())
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }

    /// Aggregate hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::PI_4;

    #[test]
    fn cache_hit_on_repeat() {
        let mut cache = CostCache::new(16);
        let w = WeylCoord::CNOT;
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with(&w, || {
                calls += 1;
                1.0
            });
            assert_eq!(v, 1.0);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn nearby_coordinates_share_an_entry() {
        let mut cache = CostCache::new(16);
        let w1 = WeylCoord::canonicalize(PI_4, 0.0, 0.0);
        let w2 = WeylCoord::canonicalize(PI_4 + 1e-9, 1e-10, 0.0);
        cache.get_or_insert_with(&w1, || 2.0);
        let v = cache.get_or_insert_with(&w2, || 99.0);
        assert_eq!(v, 2.0, "quantization should merge the keys");
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut cache = CostCache::new(4);
        for i in 0..20 {
            let w = WeylCoord::canonicalize(0.01 * i as f64, 0.0, 0.0);
            cache.get_or_insert_with(&w, || i as f64);
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn lru_evicts_oldest_not_newest() {
        let mut cache = CostCache::new(2);
        let a = WeylCoord::canonicalize(0.1, 0.0, 0.0);
        let b = WeylCoord::canonicalize(0.2, 0.0, 0.0);
        let c = WeylCoord::canonicalize(0.3, 0.0, 0.0);
        cache.get_or_insert_with(&a, || 1.0);
        cache.get_or_insert_with(&b, || 2.0);
        cache.get_or_insert_with(&a, || 1.0); // refresh a
        cache.get_or_insert_with(&c, || 3.0); // evicts b
        assert!(cache.peek(&a).is_some());
        assert!(cache.peek(&b).is_none());
        assert!(cache.peek(&c).is_some());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut cache = CostCache::new(8);
        assert_eq!(cache.hit_rate(), 0.0);
        let w = WeylCoord::ISWAP;
        cache.get_or_insert_with(&w, || 1.0);
        cache.get_or_insert_with(&w, || 1.0);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        CostCache::new(0);
    }

    #[test]
    fn shared_cache_hits_across_threads() {
        let cache = SharedCostCache::new(64);
        let w = WeylCoord::CNOT;
        assert_eq!(cache.get_or_insert_with(&w, || 2.0), 2.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Inserted once above: every thread must observe a hit.
                    assert_eq!(cache.get_or_insert_with(&w, || 99.0), 2.0);
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 4);
        assert!((cache.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shared_cache_spreads_over_shards() {
        let cache = SharedCostCache::with_shards(16 * 8, 16);
        assert_eq!(cache.shard_count(), 16);
        for i in 0..200 {
            let w = WeylCoord::canonicalize(0.007 * i as f64, 0.0, 0.0);
            cache.get_or_insert_with(&w, || i as f64);
        }
        // Per-shard LRU capacity bounds the total.
        assert!(cache.len() <= 16 * 8);
        assert!(cache.len() > 8, "keys should not all collapse to one shard");
    }

    #[test]
    fn shard_count_defaults_to_available_parallelism() {
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(16)
            .clamp(1, SharedCostCache::MAX_DEFAULT_SHARDS);
        assert_eq!(SharedCostCache::default_shard_count(), expected);
        // Capacity still caps the shard count; explicit counts are honored.
        assert_eq!(SharedCostCache::new(4096).shard_count(), expected.min(4096));
        assert_eq!(SharedCostCache::with_shards(4096, 2).shard_count(), 2);
        assert_eq!(SharedCostCache::with_shards(3, 64).shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        SharedCostCache::with_shards(8, 0);
    }

    #[test]
    fn shared_cache_peek() {
        let cache = SharedCostCache::new(8);
        let w = WeylCoord::ISWAP;
        assert!(cache.peek(&w).is_none());
        cache.get_or_insert_with(&w, || 1.5);
        assert_eq!(cache.peek(&w), Some(1.5));
    }

    #[test]
    fn capacity_one_holds_a_single_class() {
        // A capacity-1 shared cache collapses to one single-entry shard,
        // so every new class evicts the previous one.
        let cache = SharedCostCache::new(1);
        let a = WeylCoord::canonicalize(0.1, 0.0, 0.0);
        let b = WeylCoord::canonicalize(0.2, 0.0, 0.0);
        cache.get_or_insert_with(&a, || 1.0);
        cache.get_or_insert_with(&b, || 2.0);
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(&a).is_none(), "a must have been evicted");
        assert_eq!(cache.peek(&b), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn shared_zero_capacity_panics() {
        SharedCostCache::new(0);
    }
}
