//! The LRU coordinate→cost cache (paper Fig. 13a).
//!
//! MIRAGE queries decomposition costs for the same handful of coordinate
//! classes over and over (every CNOT in a circuit shares one class), so the
//! paper adds a software lookup table in front of the polytope membership
//! scan. This is that table: keys are quantized Weyl coordinates, values are
//! costs; eviction is least-recently-used.
//!
//! Two kinds of entries live side by side:
//!
//! * **Coordinate entries** — the pure decomposition cost of a class in the
//!   basis. These depend only on the coverage set and never go stale.
//! * **Edge entries** — the class cost *scaled by one coupler's calibrated
//!   duration factor* (`Target::gate_cost_on`). These depend on calibration
//!   data, which a long-lived serving process refreshes in place, so every
//!   edge entry is tagged with the **epoch** it was computed under. A
//!   calibration swap advances the cache's epoch
//!   ([`SharedCostCache::advance_epoch`]) and entries from older epochs are
//!   treated as misses and recomputed — a warm cache can never serve a
//!   stale per-edge cost.

use mirage_weyl::coords::WeylCoord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Cache key: a quantized coordinate class, optionally scoped to one
/// undirected coupler. Coordinate-only entries use the sentinel
/// [`NO_EDGE`].
type Key = (u16, u16, u16, u32, u32);

/// The edge slot of coordinate-only entries.
const NO_EDGE: (u32, u32) = (u32::MAX, u32::MAX);

/// Epoch tag of entries that are valid forever (pure coordinate costs).
const EPOCH_ANY: u64 = u64::MAX;

fn key_for(w: &WeylCoord, edge: (u32, u32)) -> Key {
    let (a, b, c) = w.quantized();
    (a, b, c, edge.0, edge.1)
}

/// Normalize an undirected coupler into its key slot. Qubit indices above
/// `u32::MAX − 1` would collide with [`NO_EDGE`]; no physical device gets
/// anywhere near that, but saturate defensively.
fn edge_key(a: usize, b: usize) -> (u32, u32) {
    let clamp = |q: usize| u32::try_from(q).unwrap_or(u32::MAX - 1).min(u32::MAX - 1);
    let (a, b) = (clamp(a), clamp(b));
    (a.min(b), a.max(b))
}

/// A bounded least-recently-used cache from quantized coordinates (plain,
/// or scoped to a coupler and epoch-tagged) to cost.
#[derive(Debug)]
pub struct CostCache {
    capacity: usize,
    /// value, LRU clock, epoch tag ([`EPOCH_ANY`] for coordinate entries).
    map: HashMap<Key, (f64, u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CostCache {
    /// Create a cache holding at most `capacity` coordinate classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> CostCache {
        assert!(capacity > 0, "cache capacity must be positive");
        CostCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a coordinate, or compute-and-insert through `f`.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(&mut self, w: &WeylCoord, f: F) -> f64 {
        self.lookup(key_for(w, NO_EDGE), EPOCH_ANY, f)
    }

    /// Look up a coordinate scoped to the coupler `(a, b)` at `epoch`, or
    /// compute-and-insert through `f`. An entry from a different epoch is a
    /// miss: its slot is recomputed and re-tagged, so calibration-dependent
    /// costs cached before a swap are never served after it.
    pub fn get_or_insert_edge_with<F: FnOnce() -> f64>(
        &mut self,
        w: &WeylCoord,
        a: usize,
        b: usize,
        epoch: u64,
        f: F,
    ) -> f64 {
        self.lookup(key_for(w, edge_key(a, b)), epoch, f)
    }

    /// Hit-path probe for an edge entry: on a current-epoch hit, count the
    /// hit, refresh the LRU clock, and return the value. A miss (absent or
    /// stale) records nothing — the caller computes the value without
    /// holding this cache and completes the miss via
    /// [`CostCache::insert_edge`].
    pub fn touch_edge(&mut self, w: &WeylCoord, a: usize, b: usize, epoch: u64) -> Option<f64> {
        self.clock += 1;
        let entry = self.map.get_mut(&key_for(w, edge_key(a, b)))?;
        if entry.2 != epoch {
            return None;
        }
        entry.1 = self.clock;
        self.hits += 1;
        Some(entry.0)
    }

    /// Complete a [`CostCache::touch_edge`] miss: count it and store the
    /// computed value under `epoch` (overwriting a stale entry in place).
    pub fn insert_edge(&mut self, w: &WeylCoord, a: usize, b: usize, epoch: u64, v: f64) {
        self.clock += 1;
        self.misses += 1;
        let key = key_for(w, edge_key(a, b));
        if let Some(entry) = self.map.get_mut(&key) {
            *entry = (v, self.clock, epoch);
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_oldest();
        }
        self.map.insert(key, (v, self.clock, epoch));
    }

    fn lookup<F: FnOnce() -> f64>(&mut self, key: Key, epoch: u64, f: F) -> f64 {
        self.clock += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            if entry.2 == epoch {
                entry.1 = self.clock;
                self.hits += 1;
                return entry.0;
            }
            // Stale epoch: recompute in place (no eviction needed).
            self.misses += 1;
            let v = f();
            *entry = (v, self.clock, epoch);
            return v;
        }
        self.misses += 1;
        let v = f();
        if self.map.len() >= self.capacity {
            self.evict_oldest();
        }
        self.map.insert(key, (v, self.clock, epoch));
        v
    }

    /// Look up without inserting.
    pub fn peek(&self, w: &WeylCoord) -> Option<f64> {
        self.map.get(&key_for(w, NO_EDGE)).map(|e| e.0)
    }

    /// Look up an edge-scoped entry without inserting; stale epochs report
    /// `None` exactly as [`CostCache::get_or_insert_edge_with`] would miss.
    pub fn peek_edge(&self, w: &WeylCoord, a: usize, b: usize, epoch: u64) -> Option<f64> {
        self.map
            .get(&key_for(w, edge_key(a, b)))
            .filter(|e| e.2 == epoch)
            .map(|e| e.0)
    }

    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self.map.iter().min_by_key(|(_, (_, t, _))| *t) {
            self.map.remove(&key);
        }
    }

    /// Number of cached classes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe sharded wrapper over [`CostCache`].
///
/// One instance is shared by every routing trial, refinement pass, and
/// metric computation of a transpile call (and across calls, when the
/// caller reuses its `Target`), replacing the per-call caches the seed
/// constructed in each pipeline branch. Keys are spread over independently
/// locked shards so parallel layout trials don't serialize on one mutex;
/// cached coordinate costs are pure functions of the coordinate class, so
/// sharing never changes results. Edge-scoped entries additionally depend
/// on calibration data and are epoch-tagged: a calibration swap calls
/// [`SharedCostCache::advance_epoch`] and every entry computed before it
/// becomes a miss (see the [module docs](self)).
#[derive(Debug)]
pub struct SharedCostCache {
    shards: Vec<Mutex<CostCache>>,
    /// Current calibration epoch; edge-scoped entries from older epochs
    /// are never served.
    epoch: AtomicU64,
    /// Shard-lock acquisitions that found the lock already held (a
    /// `try_lock` failed and the caller had to block). Zero-cost when
    /// unread: the counter is only touched on the contended path, which
    /// already pays for a futex wait.
    contended: AtomicU64,
}

impl SharedCostCache {
    /// Upper bound on the automatically chosen shard count — beyond this,
    /// extra mutexes only add memory, not concurrency.
    pub const MAX_DEFAULT_SHARDS: usize = 64;

    /// The default shard count: one per available hardware thread (the
    /// number of routing trials that can actually contend at once), clamped
    /// to `[1, MAX_DEFAULT_SHARDS]`. Falls back to 16 when the platform
    /// cannot report its parallelism.
    pub fn default_shard_count() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(16)
            .clamp(1, Self::MAX_DEFAULT_SHARDS)
    }

    /// Create a sharded cache holding roughly `capacity` coordinate classes
    /// in total, with [`SharedCostCache::default_shard_count`] shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> SharedCostCache {
        SharedCostCache::with_shards(capacity, Self::default_shard_count())
    }

    /// Create a sharded cache with an explicit shard count (the contention
    /// micro-bench sweeps this; capacity-limited callers get fewer shards so
    /// a capacity-1 cache really does hold a single class — the runtime
    /// figure relies on this to emulate uncached behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> SharedCostCache {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let n_shards = capacity.min(shards);
        let per_shard = capacity.div_ceil(n_shards);
        SharedCostCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(CostCache::new(per_shard)))
                .collect(),
            epoch: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Acquire a shard lock, counting the acquisition as contended when a
    /// `try_lock` probe finds the lock already held. The probe is free on
    /// the uncontended fast path; the blocking fallback only runs when the
    /// caller was going to wait anyway.
    fn lock_shard<'a>(&self, shard: &'a Mutex<CostCache>) -> MutexGuard<'a, CostCache> {
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                shard.lock().expect("cache shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }

    /// Shard-lock acquisitions since construction that had to wait for
    /// another thread — the lock traffic the per-worker
    /// [`CostMemo`] exists to remove.
    pub fn contention(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// The current calibration epoch. Edge-scoped entries are only served
    /// when their tag matches this value.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advance the calibration epoch, invalidating every edge-scoped entry
    /// in place (coordinate-only entries are calibration-independent and
    /// survive). Returns the new epoch. Callers must publish the new
    /// calibration data *before* advancing, so a reader that observes the
    /// new epoch can only recompute against the new data.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: Key) -> &Mutex<CostCache> {
        // An inlined SplitMix64 finalizer over the packed key fields. The
        // router's mirror decision consults this cache twice per routed 2Q
        // gate, and shard choice only needs a stable, well-spread index —
        // the std `DefaultHasher` (SipHash-1-3 behind a heap of state
        // setup) was measurable on that path. Shard assignment is
        // distribution-only: every shard is an equivalent cache, so values
        // and results are unaffected.
        let (a, b, c, ea, eb) = key;
        let mut z = (u64::from(a) | (u64::from(b) << 16) | (u64::from(c) << 32))
            ^ u64::from(ea).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(eb)
                .rotate_left(32)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        &self.shards[(z % self.shards.len() as u64) as usize]
    }

    /// Look up a coordinate, or compute-and-insert through `f`.
    ///
    /// `f` runs while the shard lock is held, so concurrent queries of one
    /// class compute at most once per shard residence.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(&self, w: &WeylCoord, f: F) -> f64 {
        self.lock_shard(self.shard_for(key_for(w, NO_EDGE)))
            .get_or_insert_with(w, f)
    }

    /// Look up a coordinate scoped to the coupler `(a, b)` at the current
    /// epoch, or compute-and-insert through `f`. Entries tagged with an
    /// older epoch (a calibration that has since been swapped out) are
    /// recomputed, never served.
    ///
    /// Unlike [`SharedCostCache::get_or_insert_with`], `f` runs **without**
    /// the shard lock held — it is allowed to query this same cache (the
    /// coordinate-class entry its value derives from may share a shard with
    /// the edge entry). Concurrent misses of one key may compute `f` more
    /// than once; values are pure, so the duplicates agree.
    pub fn get_or_insert_edge_with<F: FnOnce() -> f64>(
        &self,
        w: &WeylCoord,
        a: usize,
        b: usize,
        f: F,
    ) -> f64 {
        // Epoch first: if a swap lands between this load and `f`, the entry
        // is tagged with the pre-swap epoch and discarded on next lookup.
        let epoch = self.epoch();
        self.get_or_insert_edge_at(w, a, b, epoch, f)
    }

    /// [`SharedCostCache::get_or_insert_edge_with`] against a
    /// caller-supplied epoch — the seeding read of a per-worker
    /// [`CostMemo`], which loads the epoch once and tags its own entry and
    /// the shared entry coherently. `epoch` must come from
    /// [`SharedCostCache::epoch`] on this same cache; a stale value is
    /// harmless (the entry is discarded on the next current-epoch lookup)
    /// but wastes the slot.
    pub fn get_or_insert_edge_at<F: FnOnce() -> f64>(
        &self,
        w: &WeylCoord,
        a: usize,
        b: usize,
        epoch: u64,
        f: F,
    ) -> f64 {
        let shard = self.shard_for(key_for(w, edge_key(a, b)));
        if let Some(v) = self.lock_shard(shard).touch_edge(w, a, b, epoch) {
            return v;
        }
        let v = f();
        self.lock_shard(shard).insert_edge(w, a, b, epoch, v);
        v
    }

    /// Look up without inserting.
    pub fn peek(&self, w: &WeylCoord) -> Option<f64> {
        self.lock_shard(self.shard_for(key_for(w, NO_EDGE))).peek(w)
    }

    /// Look up an edge-scoped entry at the current epoch without inserting.
    pub fn peek_edge(&self, w: &WeylCoord, a: usize, b: usize) -> Option<f64> {
        let epoch = self.epoch();
        self.lock_shard(self.shard_for(key_for(w, edge_key(a, b))))
            .peek_edge(w, a, b, epoch)
    }

    /// Total cached classes across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_shard(s).len()).sum()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate `(hits, misses)` counters across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards
            .iter()
            .map(|s| self.lock_shard(s).stats())
            .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm))
    }

    /// Aggregate hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// An unsynchronized `(coordinate class, edge) → cost` memo in front of a
/// [`SharedCostCache`] — one per routing worker, so the router's mirror
/// decision stops taking two sharded-mutex locks per routed 2Q gate.
///
/// Every entry is a value the shared cache answered (or would answer) at
/// one calibration epoch: the memo records that epoch and clears itself
/// whenever a query arrives under a newer one, so a calibration swap
/// invalidates it exactly like the epoch-tagged shared cache — a memo that
/// outlives the swap (pooled inside a `RouterScratch`) can never serve a
/// cost priced under a replaced calibration. Values are pure functions of
/// `(class, edge, calibration)`, so memoization never changes results:
/// hits return bit-identical numbers to the fall-through path.
///
/// Unlike [`CostCache`] the memo is unbounded and un-LRU'd: a worker only
/// ever sees the coordinate classes of the circuits it routes (a handful
/// per circuit), and clearing on epoch change bounds its lifetime.
#[derive(Debug, Default)]
pub struct CostMemo {
    map: HashMap<Key, f64>,
    /// The epoch every resident entry was computed under.
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl CostMemo {
    /// An empty memo (equivalent to `Default`).
    pub fn new() -> CostMemo {
        CostMemo::default()
    }

    /// Look up the cost of class `w` on coupler `(a, b)` at `epoch`, or
    /// compute-and-insert through `f` (which should read the shared
    /// cache). A query under a different epoch first drops every resident
    /// entry — they were priced under a calibration that is no longer
    /// current from this worker's point of view.
    pub fn get_or_insert_edge_with<F: FnOnce() -> f64>(
        &mut self,
        w: &WeylCoord,
        a: usize,
        b: usize,
        epoch: u64,
        f: F,
    ) -> f64 {
        if self.epoch != epoch {
            self.map.clear();
            self.epoch = epoch;
        }
        match self.map.entry(key_for(w, edge_key(a, b))) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                *e.insert(f())
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized (fresh, or just invalidated).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction (epoch invalidation
    /// does not reset them).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::PI_4;

    #[test]
    fn cache_hit_on_repeat() {
        let mut cache = CostCache::new(16);
        let w = WeylCoord::CNOT;
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with(&w, || {
                calls += 1;
                1.0
            });
            assert_eq!(v, 1.0);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn nearby_coordinates_share_an_entry() {
        let mut cache = CostCache::new(16);
        let w1 = WeylCoord::canonicalize(PI_4, 0.0, 0.0);
        let w2 = WeylCoord::canonicalize(PI_4 + 1e-9, 1e-10, 0.0);
        cache.get_or_insert_with(&w1, || 2.0);
        let v = cache.get_or_insert_with(&w2, || 99.0);
        assert_eq!(v, 2.0, "quantization should merge the keys");
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut cache = CostCache::new(4);
        for i in 0..20 {
            let w = WeylCoord::canonicalize(0.01 * i as f64, 0.0, 0.0);
            cache.get_or_insert_with(&w, || i as f64);
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn lru_evicts_oldest_not_newest() {
        let mut cache = CostCache::new(2);
        let a = WeylCoord::canonicalize(0.1, 0.0, 0.0);
        let b = WeylCoord::canonicalize(0.2, 0.0, 0.0);
        let c = WeylCoord::canonicalize(0.3, 0.0, 0.0);
        cache.get_or_insert_with(&a, || 1.0);
        cache.get_or_insert_with(&b, || 2.0);
        cache.get_or_insert_with(&a, || 1.0); // refresh a
        cache.get_or_insert_with(&c, || 3.0); // evicts b
        assert!(cache.peek(&a).is_some());
        assert!(cache.peek(&b).is_none());
        assert!(cache.peek(&c).is_some());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut cache = CostCache::new(8);
        assert_eq!(cache.hit_rate(), 0.0);
        let w = WeylCoord::ISWAP;
        cache.get_or_insert_with(&w, || 1.0);
        cache.get_or_insert_with(&w, || 1.0);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        CostCache::new(0);
    }

    #[test]
    fn shared_cache_hits_across_threads() {
        let cache = SharedCostCache::new(64);
        let w = WeylCoord::CNOT;
        assert_eq!(cache.get_or_insert_with(&w, || 2.0), 2.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Inserted once above: every thread must observe a hit.
                    assert_eq!(cache.get_or_insert_with(&w, || 99.0), 2.0);
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 4);
        assert!((cache.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shared_cache_spreads_over_shards() {
        let cache = SharedCostCache::with_shards(16 * 8, 16);
        assert_eq!(cache.shard_count(), 16);
        for i in 0..200 {
            let w = WeylCoord::canonicalize(0.007 * i as f64, 0.0, 0.0);
            cache.get_or_insert_with(&w, || i as f64);
        }
        // Per-shard LRU capacity bounds the total.
        assert!(cache.len() <= 16 * 8);
        assert!(cache.len() > 8, "keys should not all collapse to one shard");
    }

    #[test]
    fn shard_count_defaults_to_available_parallelism() {
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(16)
            .clamp(1, SharedCostCache::MAX_DEFAULT_SHARDS);
        assert_eq!(SharedCostCache::default_shard_count(), expected);
        // Capacity still caps the shard count; explicit counts are honored.
        assert_eq!(SharedCostCache::new(4096).shard_count(), expected.min(4096));
        assert_eq!(SharedCostCache::with_shards(4096, 2).shard_count(), 2);
        assert_eq!(SharedCostCache::with_shards(3, 64).shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        SharedCostCache::with_shards(8, 0);
    }

    #[test]
    fn shared_cache_peek() {
        let cache = SharedCostCache::new(8);
        let w = WeylCoord::ISWAP;
        assert!(cache.peek(&w).is_none());
        cache.get_or_insert_with(&w, || 1.5);
        assert_eq!(cache.peek(&w), Some(1.5));
    }

    #[test]
    fn capacity_one_holds_a_single_class() {
        // A capacity-1 shared cache collapses to one single-entry shard,
        // so every new class evicts the previous one.
        let cache = SharedCostCache::new(1);
        let a = WeylCoord::canonicalize(0.1, 0.0, 0.0);
        let b = WeylCoord::canonicalize(0.2, 0.0, 0.0);
        cache.get_or_insert_with(&a, || 1.0);
        cache.get_or_insert_with(&b, || 2.0);
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(&a).is_none(), "a must have been evicted");
        assert_eq!(cache.peek(&b), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn shared_zero_capacity_panics() {
        SharedCostCache::new(0);
    }

    #[test]
    fn edge_entries_are_keyed_per_coupler() {
        let cache = SharedCostCache::new(64);
        let w = WeylCoord::CNOT;
        // Same class, different couplers: independent entries.
        assert_eq!(cache.get_or_insert_edge_with(&w, 0, 1, || 1.0), 1.0);
        assert_eq!(cache.get_or_insert_edge_with(&w, 1, 2, || 10.0), 10.0);
        assert_eq!(cache.get_or_insert_edge_with(&w, 0, 1, || 99.0), 1.0);
        // Endpoint order is irrelevant.
        assert_eq!(cache.get_or_insert_edge_with(&w, 1, 0, || 99.0), 1.0);
        // Edge entries never alias the coordinate-only entry.
        assert!(cache.peek(&w).is_none());
        assert_eq!(cache.peek_edge(&w, 0, 1), Some(1.0));
        assert_eq!(cache.peek_edge(&w, 2, 1), Some(10.0));
    }

    #[test]
    fn advancing_the_epoch_invalidates_edge_entries_only() {
        let cache = SharedCostCache::new(64);
        let w = WeylCoord::SWAP;
        cache.get_or_insert_with(&w, || 1.5);
        cache.get_or_insert_edge_with(&w, 0, 1, || 3.0);
        assert_eq!(cache.epoch(), 0);
        assert_eq!(cache.advance_epoch(), 1);
        // The stale edge entry is a miss and recomputes with the new value;
        // the coordinate entry is calibration-independent and survives.
        assert!(cache.peek_edge(&w, 0, 1).is_none(), "stale epoch served");
        assert_eq!(cache.get_or_insert_edge_with(&w, 0, 1, || 30.0), 30.0);
        assert_eq!(cache.get_or_insert_with(&w, || 99.0), 1.5);
        // And the recomputed entry is a hit at the new epoch.
        assert_eq!(cache.get_or_insert_edge_with(&w, 0, 1, || 99.0), 30.0);
    }

    #[test]
    fn edge_miss_may_query_the_same_shard_reentrantly() {
        // The edge-entry closure derives its value from the coordinate
        // entry, which can live on the very same shard (guaranteed here by
        // using one shard). The miss path must not hold the shard lock
        // while computing.
        let cache = SharedCostCache::with_shards(64, 1);
        let w = WeylCoord::CNOT;
        let v =
            cache.get_or_insert_edge_with(&w, 0, 1, || 2.0 * cache.get_or_insert_with(&w, || 1.0));
        assert_eq!(v, 2.0);
        assert_eq!(cache.peek(&w), Some(1.0));
        assert_eq!(cache.peek_edge(&w, 0, 1), Some(2.0));
    }

    #[test]
    fn memo_hits_without_touching_the_shared_cache() {
        let shared = SharedCostCache::new(64);
        let mut memo = CostMemo::new();
        let w = WeylCoord::CNOT;
        let epoch = shared.epoch();
        let through = |memo: &mut CostMemo| {
            memo.get_or_insert_edge_with(&w, 0, 1, epoch, || {
                shared.get_or_insert_edge_at(&w, 0, 1, epoch, || 2.5)
            })
        };
        assert_eq!(through(&mut memo), 2.5);
        let shared_queries_after_seed = {
            let (h, m) = shared.stats();
            h + m
        };
        for _ in 0..10 {
            assert_eq!(through(&mut memo), 2.5);
        }
        let (h, m) = shared.stats();
        assert_eq!(
            h + m,
            shared_queries_after_seed,
            "memo hits must not query the shared cache"
        );
        assert_eq!(memo.stats(), (10, 1));
        assert_eq!(memo.len(), 1);
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_endpoint_order_and_classes_match_shared_keying() {
        let mut memo = CostMemo::new();
        let w = WeylCoord::CNOT;
        let v = WeylCoord::ISWAP;
        assert_eq!(memo.get_or_insert_edge_with(&w, 0, 1, 0, || 1.0), 1.0);
        // Endpoint order is irrelevant; distinct classes and couplers are
        // distinct entries — same normalization as the shared cache.
        assert_eq!(memo.get_or_insert_edge_with(&w, 1, 0, 0, || 99.0), 1.0);
        assert_eq!(memo.get_or_insert_edge_with(&v, 0, 1, 0, || 2.0), 2.0);
        assert_eq!(memo.get_or_insert_edge_with(&w, 1, 2, 0, || 3.0), 3.0);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn memo_epoch_change_drops_every_entry() {
        let mut memo = CostMemo::new();
        let w = WeylCoord::SWAP;
        assert_eq!(memo.get_or_insert_edge_with(&w, 0, 1, 0, || 1.5), 1.5);
        assert_eq!(memo.get_or_insert_edge_with(&w, 1, 2, 0, || 2.5), 2.5);
        assert_eq!(memo.len(), 2);
        // New epoch: both entries are stale and must recompute.
        assert_eq!(memo.get_or_insert_edge_with(&w, 0, 1, 1, || 15.0), 15.0);
        assert_eq!(memo.len(), 1, "stale entries dropped, new one resident");
        assert_eq!(memo.get_or_insert_edge_with(&w, 1, 2, 1, || 25.0), 25.0);
        // And the new-epoch entries are ordinary hits afterwards.
        assert_eq!(memo.get_or_insert_edge_with(&w, 0, 1, 1, || 99.0), 15.0);
    }

    #[test]
    fn contention_counter_records_blocked_acquisitions() {
        // Uncontended use never increments the counter.
        let cache = SharedCostCache::with_shards(64, 1);
        let w = WeylCoord::CNOT;
        for _ in 0..10 {
            cache.get_or_insert_with(&w, || 1.0);
        }
        assert_eq!(cache.contention(), 0, "uncontended path must stay free");
        // Forced contention: hold the only shard's lock while another
        // thread queries — its try_lock must fail and be counted.
        let guard = cache.lock_shard(&cache.shards[0]);
        std::thread::scope(|s| {
            let t = s.spawn(|| cache.get_or_insert_with(&w, || 99.0));
            while cache.contention() == 0 {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(t.join().expect("query thread"), 1.0);
        });
        assert!(cache.contention() >= 1);
    }

    #[test]
    fn stale_edge_entry_recomputes_in_place_without_eviction() {
        let mut cache = CostCache::new(2);
        let w = WeylCoord::CNOT;
        let v = WeylCoord::ISWAP;
        cache.get_or_insert_edge_with(&w, 0, 1, 0, || 1.0);
        cache.get_or_insert_with(&v, || 2.0);
        assert_eq!(cache.len(), 2);
        // Epoch moves on: the stale slot is overwritten, not grown past
        // capacity, and the unrelated coordinate entry stays resident.
        assert_eq!(cache.get_or_insert_edge_with(&w, 0, 1, 1, || 5.0), 5.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(&v), Some(2.0));
        assert_eq!(cache.peek_edge(&w, 0, 1, 1), Some(5.0));
        assert!(cache.peek_edge(&w, 0, 1, 0).is_none());
    }
}
