//! The LRU coordinate→cost cache (paper Fig. 13a).
//!
//! MIRAGE queries decomposition costs for the same handful of coordinate
//! classes over and over (every CNOT in a circuit shares one class), so the
//! paper adds a software lookup table in front of the polytope membership
//! scan. This is that table: keys are quantized Weyl coordinates, values are
//! costs; eviction is least-recently-used.

use mirage_weyl::coords::WeylCoord;
use std::collections::HashMap;

/// A bounded least-recently-used cache from quantized coordinates to cost.
#[derive(Debug)]
pub struct CostCache {
    capacity: usize,
    map: HashMap<(u16, u16, u16), (f64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CostCache {
    /// Create a cache holding at most `capacity` coordinate classes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> CostCache {
        assert!(capacity > 0, "cache capacity must be positive");
        CostCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a coordinate, or compute-and-insert through `f`.
    pub fn get_or_insert_with<F: FnOnce() -> f64>(&mut self, w: &WeylCoord, f: F) -> f64 {
        self.clock += 1;
        let key = w.quantized();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.1 = self.clock;
            self.hits += 1;
            return entry.0;
        }
        self.misses += 1;
        let v = f();
        if self.map.len() >= self.capacity {
            self.evict_oldest();
        }
        self.map.insert(key, (v, self.clock));
        v
    }

    /// Look up without inserting.
    pub fn peek(&self, w: &WeylCoord) -> Option<f64> {
        self.map.get(&w.quantized()).map(|e| e.0)
    }

    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self.map.iter().min_by_key(|(_, (_, t))| *t) {
            self.map.remove(&key);
        }
    }

    /// Number of cached classes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_math::PI_4;

    #[test]
    fn cache_hit_on_repeat() {
        let mut cache = CostCache::new(16);
        let w = WeylCoord::CNOT;
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_insert_with(&w, || {
                calls += 1;
                1.0
            });
            assert_eq!(v, 1.0);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn nearby_coordinates_share_an_entry() {
        let mut cache = CostCache::new(16);
        let w1 = WeylCoord::canonicalize(PI_4, 0.0, 0.0);
        let w2 = WeylCoord::canonicalize(PI_4 + 1e-9, 1e-10, 0.0);
        cache.get_or_insert_with(&w1, || 2.0);
        let v = cache.get_or_insert_with(&w2, || 99.0);
        assert_eq!(v, 2.0, "quantization should merge the keys");
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut cache = CostCache::new(4);
        for i in 0..20 {
            let w = WeylCoord::canonicalize(0.01 * i as f64, 0.0, 0.0);
            cache.get_or_insert_with(&w, || i as f64);
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn lru_evicts_oldest_not_newest() {
        let mut cache = CostCache::new(2);
        let a = WeylCoord::canonicalize(0.1, 0.0, 0.0);
        let b = WeylCoord::canonicalize(0.2, 0.0, 0.0);
        let c = WeylCoord::canonicalize(0.3, 0.0, 0.0);
        cache.get_or_insert_with(&a, || 1.0);
        cache.get_or_insert_with(&b, || 2.0);
        cache.get_or_insert_with(&a, || 1.0); // refresh a
        cache.get_or_insert_with(&c, || 3.0); // evicts b
        assert!(cache.peek(&a).is_some());
        assert!(cache.peek(&b).is_none());
        assert!(cache.peek(&c).is_some());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut cache = CostCache::new(8);
        assert_eq!(cache.hit_rate(), 0.0);
        let w = WeylCoord::ISWAP;
        cache.get_or_insert_with(&w, || 1.0);
        cache.get_or_insert_with(&w, || 1.0);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        CostCache::new(0);
    }
}
