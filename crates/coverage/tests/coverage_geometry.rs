//! Property suite for the banked coverage geometry: the packed
//! [`PolytopeBank`] / grid-classifier query path must be indistinguishable
//! from the seed-era per-level polytope walk on every observable — `min_k`,
//! `cost_or_max` (bit-identical), membership and distance at any tolerance —
//! and the checked-in atlases must reproduce a fresh build exactly.
//!
//! Points come from three adversarial families: Haar-random coordinates
//! (volume coverage), sub-tolerance jitter around the basis gate class (the
//! degenerate depth-1 point regions), and jitter straddling region facets at
//! scales from well inside to well outside the tolerance (where a
//! misrounded fast path would first diverge).
//!
//! `concurrent_queries_consistent` honors `MIRAGE_TEST_THREADS` (default 4)
//! like the golden-routing suite: shared-set queries from `n` threads must
//! equal the serial answers.

use mirage_coverage::atlas::{decode, encode, fnv1a, load_stock, stock_atlas_bytes, stock_specs};
use mirage_coverage::geom::PolytopeBank;
use mirage_coverage::set::{alcove_rep, BasisGate, CoverageOptions, CoverageSet};
use mirage_gates::haar_2q;
use mirage_math::Rng;
use mirage_weyl::coords::{coords_of, WeylCoord};

const SEED: u64 = 0x6E0;

/// Pinned FNV-1a fingerprints of the checked-in atlas files — must match
/// the `ATLAS_FNV` table in `coverage_runtime`. A drift here means the
/// atlases were regenerated without updating the pins (or vice versa).
const ATLAS_FNV: &[(&str, u64)] = &[
    ("sqrt_iswap", 0x6B4813656F018AEE),
    ("cnot", 0x73D34D4A088658C0),
    ("cz", 0x123F5E69DD3B2397),
    ("iswap_1_3", 0x50E6BA3F58F08303),
];

fn haar_points(rng: &mut Rng, n: usize) -> Vec<WeylCoord> {
    (0..n).map(|_| coords_of(&haar_2q(rng))).collect()
}

/// Jittered copies of `w` at the given per-axis scale (canonicalized back
/// into the chamber, so both query paths see identical coordinates).
fn jitter(rng: &mut Rng, w: [f64; 3], scale: f64, n: usize) -> Vec<WeylCoord> {
    (0..n)
        .map(|_| {
            WeylCoord::canonicalize(
                w[0] + rng.uniform_range(-scale, scale),
                w[1] + rng.uniform_range(-scale, scale),
                w[2] + rng.uniform_range(-scale, scale),
            )
        })
        .collect()
}

/// The adversarial point families for one coverage set: Haar volume
/// samples, sub-tolerance gate-class jitter, and facet-straddling jitter at
/// scales bracketing the membership tolerance.
fn adversarial_points(set: &CoverageSet, rng: &mut Rng, haar_n: usize) -> Vec<WeylCoord> {
    let mut pts = haar_points(rng, haar_n);
    let c = set.basis.coord;
    for scale in [1e-13, 1e-10, 1e-8, 1e-5] {
        pts.extend(jitter(rng, [c.a, c.b, c.c], scale, 12));
    }
    // Facet straddlers: project a Haar point onto each region, then jitter
    // around the projection at scales from far inside the tolerance (1e-13)
    // to far outside it (1e-5). The projection sits exactly on the nearest
    // facet, so these probe the contains/excess rounding on both sides.
    let anchors = haar_points(rng, 4);
    for level in &set.levels {
        for region in &level.regions {
            for w in &anchors {
                let q = region.nearest_point(alcove_rep(w));
                for scale in [1e-13, 1e-10, 1e-8, 1e-5] {
                    pts.extend(jitter(rng, q, scale, 3));
                }
            }
        }
    }
    pts
}

fn assert_queries_identical(set: &CoverageSet, pts: &[WeylCoord], what: &str) {
    for w in pts {
        assert_eq!(
            set.min_k(w),
            set.min_k_legacy_geom(w),
            "{what} ({}): min_k diverged at ({}, {}, {})",
            set.basis.name,
            w.a,
            w.b,
            w.c
        );
        let (b, l) = (set.cost_or_max(w), set.cost_or_max_legacy_geom(w));
        assert!(
            b.to_bits() == l.to_bits(),
            "{what} ({}): cost_or_max diverged ({b} vs {l}) at ({}, {}, {})",
            set.basis.name,
            w.a,
            w.b,
            w.c
        );
    }
}

#[test]
fn banked_queries_match_legacy_on_all_stock_bases() {
    let mut rng = Rng::new(SEED);
    for (basis, opts) in stock_specs() {
        let set = CoverageSet::build(basis, &opts);
        let pts = adversarial_points(&set, &mut rng, 2000);
        assert_queries_identical(&set, &pts, "stock");
    }
}

/// A dense, mirror-inclusive, non-stock configuration — more levels and
/// more regions than any stock set, so the grid classifier (built only
/// above the row threshold) is exercised with different geometry than the
/// checked-in atlases.
#[test]
fn banked_queries_match_legacy_on_dense_custom_set() {
    let opts = CoverageOptions {
        max_k: 4,
        samples_per_k: 800,
        inflation: 0.02,
        mirrors: true,
        seed: 0xD05E,
    };
    let set = CoverageSet::build(BasisGate::iswap_root(2), &opts);
    let mut rng = Rng::new(SEED ^ 1);
    let pts = adversarial_points(&set, &mut rng, 3000);
    assert_queries_identical(&set, &pts, "dense");
}

/// Bank membership and Dykstra distance agree with the per-polytope
/// reference at every tolerance, including tolerances far looser than the
/// loose-tier cap (where the two-tier filter must disable itself).
#[test]
fn bank_matches_polytopes_across_tolerances() {
    let mut rng = Rng::new(SEED ^ 2);
    for (basis, opts) in stock_specs() {
        let set = CoverageSet::build(basis, &opts);
        let mut bank = PolytopeBank::new();
        let mut regions = Vec::new();
        for level in &set.levels {
            for region in &level.regions {
                bank.push(region);
                regions.push(region.clone());
            }
        }
        let pts: Vec<[f64; 3]> = adversarial_points(&set, &mut rng, 300)
            .iter()
            .map(alcove_rep)
            .collect();
        for (id, region) in regions.iter().enumerate() {
            let id = id as u32;
            for p in &pts {
                for tol in [1e-12, 1e-9, 1e-6, 1e-3, 1.0] {
                    assert_eq!(
                        bank.contains(id, *p, tol),
                        region.contains(*p, tol),
                        "{}: bank/polytope membership diverged (poly {id}, tol {tol})",
                        set.basis.name
                    );
                }
                let (db, dl) = (bank.distance(id, *p), region.distance(*p));
                assert!(
                    db.to_bits() == dl.to_bits(),
                    "{}: bank/polytope distance diverged (poly {id}: {db} vs {dl})",
                    set.basis.name
                );
            }
        }
    }
}

/// `level_distance` (banked Dykstra over packed rows) is bit-identical to
/// the per-level reference distance.
#[test]
fn level_distance_matches_reference() {
    let mut rng = Rng::new(SEED ^ 3);
    for (basis, opts) in stock_specs() {
        let set = CoverageSet::build(basis, &opts);
        let pts = haar_points(&mut rng, 200);
        for level in &set.levels {
            for w in &pts {
                let banked = set
                    .level_distance(level.k, w)
                    .expect("built level must have a distance");
                let reference = level.distance(w);
                assert!(
                    banked.to_bits() == reference.to_bits(),
                    "{} k={}: level_distance diverged ({banked} vs {reference})",
                    set.basis.name,
                    level.k
                );
            }
        }
    }
}

/// Encode → decode reproduces the exact set: same levels, same packed bank.
#[test]
fn atlas_round_trip_is_exact() {
    for (basis, opts) in stock_specs() {
        let set = CoverageSet::build(basis.clone(), &opts);
        let bytes = encode(&set, &opts);
        let decoded = decode(&bytes, &basis, &opts)
            .unwrap_or_else(|| panic!("{}: round-trip decode failed", basis.name));
        assert_eq!(decoded.levels, set.levels, "{}: levels drifted", basis.name);
        assert!(
            decoded.bank() == set.bank(),
            "{}: packed bank drifted through the atlas",
            basis.name
        );
        assert_eq!(decoded.tol, set.tol);
        assert_eq!(decoded.mirrors, set.mirrors);
    }
}

/// The checked-in atlas files decode, match their pinned fingerprints, and
/// reproduce a fresh build exactly — `Target`'s stock sets load, never
/// rebuild, and lose nothing by it.
#[test]
fn stock_atlases_match_pins_and_fresh_build() {
    for (basis, opts) in stock_specs() {
        let bytes = stock_atlas_bytes(&basis.name)
            .unwrap_or_else(|| panic!("{}: no embedded atlas", basis.name));
        let &(_, pin) = ATLAS_FNV
            .iter()
            .find(|(n, _)| *n == basis.name)
            .unwrap_or_else(|| panic!("{}: no pinned fingerprint", basis.name));
        assert_eq!(
            fnv1a(bytes),
            pin,
            "{}: atlas fingerprint drifted from the pin (regen + update pins)",
            basis.name
        );
        let loaded = load_stock(&basis, &opts)
            .unwrap_or_else(|| panic!("{}: embedded atlas failed to decode", basis.name));
        let fresh = CoverageSet::build(basis.clone(), &opts);
        assert_eq!(loaded.levels, fresh.levels, "{}: levels", basis.name);
        assert!(
            loaded.bank() == fresh.bank(),
            "{}: atlas-loaded bank differs from fresh build",
            basis.name
        );
    }
}

/// Atlas loading is fail-safe: any identity or integrity mismatch falls
/// back to `None` (callers rebuild) rather than loading wrong geometry.
#[test]
fn atlas_decode_rejects_corruption_and_mismatch() {
    let (basis, opts) = &stock_specs()[0];
    let set = CoverageSet::build(basis.clone(), opts);
    let bytes = encode(&set, opts);

    let mut other_opts = opts.clone();
    other_opts.inflation += 1e-3;
    assert!(
        decode(&bytes, basis, &other_opts).is_none(),
        "decode must reject mismatched build options"
    );

    let other_basis = BasisGate::cnot();
    assert!(
        decode(&bytes, &other_basis, opts).is_none(),
        "decode must reject a different basis identity"
    );

    assert!(
        decode(&bytes[..bytes.len() - 1], basis, opts).is_none(),
        "decode must reject truncation"
    );

    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(
        decode(&flipped, basis, opts).is_none(),
        "decode must reject a flipped payload byte (checksum)"
    );
}

/// Shared-set queries from `MIRAGE_TEST_THREADS` threads (default 4) give
/// exactly the serial answers — the query path is read-only and `Sync`.
#[test]
fn concurrent_queries_consistent() {
    let threads: usize = std::env::var("MIRAGE_TEST_THREADS")
        .ok()
        .map(|s| s.parse().expect("MIRAGE_TEST_THREADS must be an integer"))
        .unwrap_or(4);
    for (basis, opts) in [&stock_specs()[0], &stock_specs()[3]] {
        let set = CoverageSet::build(basis.clone(), opts);
        let mut rng = Rng::new(SEED ^ 4);
        let pts = haar_points(&mut rng, 2000);
        let serial: Vec<Option<usize>> = pts.iter().map(|w| set.min_k(w)).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (set, pts, serial) = (&set, &pts, &serial);
                scope.spawn(move || {
                    for (i, w) in pts.iter().enumerate().skip(t).step_by(threads) {
                        assert_eq!(
                            set.min_k(w),
                            serial[i],
                            "{}: thread {t} diverged from serial at point {i}",
                            set.basis.name
                        );
                    }
                });
            }
        });
    }
}
