//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace is dependency-free, so the `benches/` targets use this
//! instead of criterion: each benchmark auto-calibrates an iteration count
//! to a time budget, runs several measurement batches, and reports the
//! median and minimum per-iteration time. Run with `cargo bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of measurement batches per benchmark.
const BATCHES: usize = 15;
/// Target wall-clock budget per batch.
const BATCH_BUDGET: Duration = Duration::from_millis(80);

/// Time one closure: calibrate, measure, and print a `name: median / min`
/// line. Returns the median per-iteration time in nanoseconds.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> f64 {
    // Calibration: double the iteration count until a batch fills the budget.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t0.elapsed();
        if elapsed >= BATCH_BUDGET || iters >= 1 << 24 {
            break;
        }
        // Jump straight to the budget once a good estimate exists.
        if elapsed >= BATCH_BUDGET / 8 {
            let scale = BATCH_BUDGET.as_secs_f64() / elapsed.as_secs_f64();
            iters = ((iters as f64 * scale).ceil() as usize).max(iters + 1);
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    println!(
        "{name:<40} {:>12} median  {:>12} min  ({iters} iters x {BATCHES})",
        format_ns(median),
        format_ns(min)
    );
    median
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_time() {
        let ns = bench("noop-accumulate", || (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("us"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with('s'));
    }
}
