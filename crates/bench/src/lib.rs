//! Shared harness utilities for the experiment-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §3 for the index). This library holds the pieces
//! they share: full-quality coverage-set construction, the benchmark-suite
//! runner, and plain-text table rendering.
//!
//! ---
//! **Owns:** [`coverage_for`], [`eval_options`], [`run_one`]/[`SuiteRow`],
//! [`timing::bench`], and the `src/bin/` experiment binaries.
//! **Paper:** §§V–VI experiments — Figs. 3–13, Tables I–III, plus the
//! calibration-skew sweep (`calibration_skew`) that extends Table III to
//! noisy heterogeneous devices.

use mirage_circuit::Circuit;
use mirage_core::{transpile, RouterKind, Target, TranspileOptions};
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};

pub mod timing;

/// Build a full-quality coverage set for `iSWAP^(1/n)`.
pub fn coverage_for(n: u32, mirrors: bool, max_k: usize) -> CoverageSet {
    let opts = CoverageOptions {
        max_k,
        samples_per_k: 4000,
        inflation: 0.01,
        mirrors,
        seed: 0xBE9C4 + u64::from(n),
    };
    CoverageSet::build(BasisGate::iswap_root(n), &opts)
}

/// Evaluation-scale trial options: smaller than the paper's 20×4×20 grid
/// (which exists to squeeze the last percent out of a Python transpiler)
/// but large enough that the relative results are stable.
pub fn eval_options(router: RouterKind, seed: u64) -> TranspileOptions {
    let mut opts = TranspileOptions::quick(router, seed);
    opts.trials.layout_trials = 8;
    opts.trials.fwd_bwd_iters = 3;
    opts.trials.routing_trials = 8;
    opts.trials.parallel = true;
    opts
}

/// One row of a suite comparison.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Benchmark name.
    pub name: String,
    /// Depth estimate (duration units).
    pub depth: f64,
    /// Total two-qubit gate cost.
    pub gate_cost: f64,
    /// SWAPs inserted.
    pub swaps: usize,
    /// Mirror acceptance rate.
    pub mirror_rate: f64,
}

/// Transpile one circuit onto `target` and summarize.
pub fn run_one(
    name: &str,
    circuit: &Circuit,
    target: &Target,
    router: RouterKind,
    seed: u64,
) -> SuiteRow {
    let opts = eval_options(router, seed);
    let out = transpile(circuit, target, &opts).expect("transpilation succeeds");
    SuiteRow {
        name: name.to_owned(),
        depth: out.metrics.depth_estimate,
        gate_cost: out.metrics.total_gate_cost,
        swaps: out.metrics.swaps_inserted,
        mirror_rate: out.metrics.mirror_rate,
    }
}

/// Geometric mean of positive values.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Percent improvement of `new` over `base` (positive = reduction).
pub fn pct_improvement(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (base - new) / base
    }
}

/// Render a plain-text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn pct_improvement_sign() {
        assert!((pct_improvement(10.0, 7.0) - 30.0).abs() < 1e-12);
        assert!(pct_improvement(10.0, 12.0) < 0.0);
        assert_eq!(pct_improvement(0.0, 5.0), 0.0);
    }
}
