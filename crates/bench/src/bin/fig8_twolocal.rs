//! Regenerates **Figure 8**: the TwoLocal (full entanglement, 4 qubits)
//! example on a 4-qubit line.
//!
//! Paper: Qiskit level-3 needs 16 √iSWAP pulses with 3 SWAPs; MIRAGE finds
//! an equivalent circuit with 10 pulses and no SWAP gates.

use mirage_bench::eval_options;
use mirage_circuit::generators::two_local_full;
use mirage_core::{transpile, RouterKind, Target};
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_synth::decompose::DecompOptions;
use mirage_synth::fidelity::pulse_duration;
use mirage_synth::translate::translate_circuit;
use std::sync::Arc;

fn main() {
    println!("Figure 8 — TwoLocal(full, 4 qubits) on a 4-qubit line, sqrt(iSWAP) basis\n");
    let circ = two_local_full(4, 1, 0xF18);
    let cov = Arc::new(CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 3000,
            inflation: 0.012,
            mirrors: false,
            seed: 0x818,
        },
    ));
    let target = Target::with_coverage(mirage_topology::CouplingMap::line(4), cov.clone());
    let dopts = DecompOptions {
        restarts: 8,
        evals_per_restart: 8000,
        infidelity_target: 1e-9,
        seed: 0x918,
    };

    for (label, router) in [
        ("baseline (SABRE)", RouterKind::Sabre),
        ("MIRAGE", RouterKind::Mirage),
    ] {
        let mut opts = eval_options(router, 0x1018);
        opts.use_vf2 = false; // force routing so the comparison is honest
        let out = transpile(&circ, &target, &opts).expect("transpiles");
        let (translated, stats) = translate_circuit(&out.circuit, &cov, &dopts);
        let pulse_depth = pulse_duration(&translated).expect("translated to basis");
        println!("{label}:");
        println!("  SWAPs inserted        : {}", out.metrics.swaps_inserted);
        println!("  mirrors accepted      : {}", out.metrics.mirrors_accepted);
        println!("  sqrt(iSWAP) pulses    : {}", stats.pulses);
        println!(
            "  pulse critical path   : {:.1} (x sqrt(iSWAP))",
            pulse_depth / 0.5
        );
        println!("  residual infidelity   : {:.2e}", stats.worst_infidelity);
        println!();
    }
    println!("Paper: baseline 16 pulses / 3 SWAPs; MIRAGE 10 pulses / 0 SWAPs.");
}
