//! The end-to-end transpile perf gate: placement + trials +
//! post-selection, serial vs parallel.
//!
//! Where `routing_runtime` times one `route` call, this bin times the
//! whole [`mirage_core::transpile`] pipeline — layout strategies, SABRE
//! refinement, routing trials, metric post-selection — once with the
//! serial trial loop and once with the parallel engine
//! (`trials.parallel = true`, auto thread count), best-of-3 wall times,
//! and emits the machine-readable `BENCH_transpile.json` that future PRs
//! are held against.
//!
//! Two hard gates (nonzero exit on failure):
//!
//! * **Bit identity** — every case transpiles through both modes and the
//!   outputs must be equal, with fingerprint/swaps/mirrors matching the
//!   pinned sanity table below. The parallel engine's determinism
//!   contract (pre-split seeds, fixed reduction order) is re-proven on
//!   every bench run, not just in the test suite.
//! * **Speedup** (`--quick`, the CI smoke run) — the parallel engine must
//!   be ≥ 1.5× faster than serial on the QFT-32 case, when the host has
//!   ≥ 4 cores (skipped otherwise: the gate would measure the machine,
//!   not the code).
//!
//! Usage: `transpile_runtime [--quick] [--out PATH] [--print-fingerprints]`

use mirage_bench::print_table;
use mirage_circuit::generators::{qft, two_local_full};
use mirage_circuit::Circuit;
use mirage_core::{transpile, RouterKind, Target, TranspileOptions, TranspiledCircuit};
use mirage_topology::CouplingMap;
use std::time::Instant;

const TRANSPILE_SEED: u64 = 0x7147;
const BEST_OF: usize = 3;

/// name, fingerprint, swaps, mirrors — pinned to the serial trial
/// engine's output (the parallel engine must reproduce it bit for bit;
/// regenerate with `--print-fingerprints` after an intentional behavior
/// change).
const SANITY: &[(&str, u64, usize, usize)] = &[
    ("qft-16", 0x7FEEB09EE195ADB8, 3, 122),
    ("qft-32", 0x0279BCF79D3CA2A6, 3, 498),
    ("qft-48", 0xE1B2F216BF88B649, 138, 988),
    ("twolocal-full-16", 0x97A40200E0C12FD6, 2, 242),
];

struct Case {
    name: &'static str,
    n_qubits: usize,
    circuit: Circuit,
}

fn cases(quick: bool) -> Vec<Case> {
    if quick {
        return vec![Case {
            name: "qft-32",
            n_qubits: 32,
            circuit: qft(32, false),
        }];
    }
    vec![
        Case {
            name: "qft-16",
            n_qubits: 16,
            circuit: qft(16, false),
        },
        Case {
            name: "qft-32",
            n_qubits: 32,
            circuit: qft(32, false),
        },
        Case {
            name: "qft-48",
            n_qubits: 48,
            circuit: qft(48, false),
        },
        Case {
            name: "twolocal-full-16",
            n_qubits: 16,
            circuit: two_local_full(16, 2, 0xB16),
        },
    ]
}

fn options(parallel: bool) -> TranspileOptions {
    let mut opts = TranspileOptions::quick(RouterKind::Mirage, TRANSPILE_SEED);
    // VF2 would short-circuit the trial loop on embeddable cases; this
    // bench times the trial engine, so force the full path.
    opts.use_vf2 = false;
    opts.trials.parallel = parallel;
    opts.trials.threads = 0; // auto: the host's available parallelism
    opts
}

struct Measured {
    name: &'static str,
    n_qubits: usize,
    twoq_gates: usize,
    serial_ms: f64,
    parallel_ms: f64,
    swaps: usize,
    mirrors: usize,
    fingerprint: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_contention: u64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        if self.parallel_ms <= 0.0 {
            0.0
        } else {
            self.serial_ms / self.parallel_ms
        }
    }
}

fn run(circuit: &Circuit, target: &Target, parallel: bool) -> TranspiledCircuit {
    transpile(circuit, target, &options(parallel)).expect("bench case transpiles")
}

fn measure(case: &Case) -> Measured {
    let target = Target::sqrt_iswap(CouplingMap::line(case.n_qubits));

    // Bit-identity gate (also warms the shared cost cache and the
    // engine-pooled scratches, so both timed modes run steady-state).
    let serial = run(&case.circuit, &target, false);
    let parallel = run(&case.circuit, &target, true);
    assert_eq!(
        serial.circuit, parallel.circuit,
        "{}: parallel trial engine diverged from serial",
        case.name
    );
    assert_eq!(
        serial.metrics.swaps_inserted,
        parallel.metrics.swaps_inserted
    );
    assert_eq!(
        serial.metrics.mirrors_accepted,
        parallel.metrics.mirrors_accepted
    );

    let time_best_of = |parallel: bool| -> f64 {
        (0..BEST_OF)
            .map(|_| {
                let t0 = Instant::now();
                let r = run(&case.circuit, &target, parallel);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(r.metrics.swaps_inserted);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let serial_ms = time_best_of(false);
    let parallel_ms = time_best_of(true);

    let (cache_hits, cache_misses) = target.cache_stats();
    Measured {
        name: case.name,
        n_qubits: case.n_qubits,
        twoq_gates: serial.metrics.two_qubit_gates,
        serial_ms,
        parallel_ms,
        swaps: serial.metrics.swaps_inserted,
        mirrors: serial.metrics.mirrors_accepted,
        fingerprint: serial.circuit.fingerprint(),
        cache_hits,
        cache_misses,
        cache_contention: target.cache().contention(),
    }
}

fn check_sanity(rows: &[Measured]) -> bool {
    let mut ok = true;
    for row in rows {
        match SANITY.iter().find(|(name, ..)| *name == row.name) {
            Some(&(_, fp, swaps, mirrors)) => {
                if (row.fingerprint, row.swaps, row.mirrors) != (fp, swaps, mirrors) {
                    eprintln!(
                        "SANITY DRIFT {}: got fingerprint 0x{:016X} / {} swaps / {} mirrors, \
                         pinned 0x{fp:016X} / {swaps} / {mirrors}",
                        row.name, row.fingerprint, row.swaps, row.mirrors
                    );
                    ok = false;
                }
            }
            None => {
                eprintln!("SANITY: no pinned entry for {}", row.name);
                ok = false;
            }
        }
    }
    ok
}

fn json_escape_free(name: &str) -> &str {
    // Case names are static identifiers; keep the emitter honest anyway.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
        "case name needs JSON escaping: {name}"
    );
    name
}

fn write_json(path: &str, mode: &str, threads: usize, rows: &[Measured]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"transpile_runtime\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"topology\": \"line\", \"router\": \"mirage\", \"seed\": {TRANSPILE_SEED}, \
         \"best_of\": {BEST_OF}, \"threads\": {threads}}},\n"
    ));
    s.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_qubits\": {}, \"twoq_gates\": {}, \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}, \
             \"swaps\": {}, \"mirrors\": {}, \"fingerprint\": \"0x{:016X}\", \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_contention\": {}}}{}",
            json_escape_free(r.name),
            r.n_qubits,
            r.twoq_gates,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            r.swaps,
            r.mirrors,
            r.fingerprint,
            r.cache_hits,
            r.cache_misses,
            r.cache_contention,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let print_fingerprints = args.iter().any(|a| a == "--print-fingerprints");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_transpile.json".to_owned());

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mode = if quick { "quick" } else { "full" };
    println!(
        "transpile_runtime — line topology, mirage quick trials, best-of-{BEST_OF} \
         ({mode}, {threads} threads)\n"
    );

    let rows: Vec<Measured> = cases(quick).iter().map(measure).collect();

    if print_fingerprints {
        println!("const SANITY: &[(&str, u64, usize, usize)] = &[");
        for r in &rows {
            println!(
                "    (\"{}\", 0x{:016X}, {}, {}),",
                r.name, r.fingerprint, r.swaps, r.mirrors
            );
        }
        println!("];");
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.n_qubits.to_string(),
                r.twoq_gates.to_string(),
                format!("{:.2}", r.serial_ms),
                format!("{:.2}", r.parallel_ms),
                format!("{:.2}x", r.speedup()),
                r.swaps.to_string(),
                r.mirrors.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "case",
            "qubits",
            "2q",
            "serial-ms",
            "parallel-ms",
            "speedup",
            "swaps",
            "mirrors",
        ],
        &table,
    );

    let (h, m, c) = rows.iter().fold((0u64, 0u64, 0u64), |acc, r| {
        (
            acc.0 + r.cache_hits,
            acc.1 + r.cache_misses,
            acc.2 + r.cache_contention,
        )
    });
    println!("\ncache_stats: hits={h} misses={m} contention={c} (shared cost cache, all cases)");

    let sanity_ok = check_sanity(&rows);
    match write_json(&out_path, mode, threads, &rows) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if !sanity_ok {
        eprintln!("transpile_runtime: sanity columns drifted from the pinned fingerprints");
        std::process::exit(1);
    }
    if quick {
        if threads < 4 {
            println!(
                "\nCI gate: skipped (host parallelism {threads} < 4 — the gate would \
                 measure the machine, not the code)"
            );
            return;
        }
        let qft32 = rows
            .iter()
            .find(|r| r.name == "qft-32")
            .expect("quick mode runs qft-32");
        let speedup = qft32.speedup();
        println!("\nCI gate: parallel vs serial at qft-32 = {speedup:.2}x (needs >= 1.5x)");
        if speedup < 1.5 {
            eprintln!("transpile_runtime: parallel trials are not >= 1.5x faster than serial");
            std::process::exit(1);
        }
    }
}
