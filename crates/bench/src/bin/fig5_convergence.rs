//! Regenerates **Figure 5**: Monte Carlo convergence of the ∜iSWAP Haar
//! score over 1000 iterations under four strategies — exact, approximate,
//! exact+mirrors, approximate+mirrors — with the exact asymptotes printed
//! alongside.

use mirage_bench::coverage_for;
use mirage_coverage::approx::approx_gate_costs;
use mirage_coverage::haar::{haar_score, FidelityModel};
use mirage_math::Mat4;
use mirage_synth::decompose::{fit_fidelity, DecompOptions};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let model = FidelityModel::paper_default();
    println!("Figure 5 — Haar-score convergence for 4th-root(iSWAP), {iters} iterations\n");

    let plain = coverage_for(4, false, 7);
    let mirror = coverage_for(4, true, 7);
    let basis = plain.basis.unitary;
    let opts = DecompOptions {
        restarts: 2,
        evals_per_restart: 2500,
        infidelity_target: 1e-7,
        seed: 0xF15,
    };
    let oracle = move |target: &Mat4, k: usize| -> Option<f64> {
        Some(fit_fidelity(target, &basis, k, &opts))
    };
    let never = |_: &Mat4, _: usize| -> Option<f64> { None };

    let exact = approx_gate_costs(&plain, &model, iters, 0x515, &never);
    let approx = approx_gate_costs(&plain, &model, iters, 0x515, &oracle);
    let exact_mirror = approx_gate_costs(&mirror, &model, iters, 0x515, &never);
    let approx_mirror = approx_gate_costs(&mirror, &model, iters, 0x515, &oracle);

    // Asymptotes from large-sample exact scores (the "polytope integration"
    // dotted lines of the figure).
    let asym_exact = haar_score(&plain, &model, 40_000, 0x616).score;
    let asym_mirror = haar_score(&mirror, &model, 40_000, 0x616).score;
    println!("asymptote (exact)        : {asym_exact:.4}");
    println!("asymptote (exact+mirror) : {asym_mirror:.4}\n");

    println!("iteration  exact  approx  exact+mir  approx+mir");
    for &i in &[1usize, 3, 10, 30, 100, 300, iters.saturating_sub(1)] {
        if i < exact.trace.len() {
            println!(
                "{:>9}  {:.4}  {:.4}  {:.4}     {:.4}",
                i + 1,
                exact.trace[i],
                approx.trace[i],
                exact_mirror.trace[i],
                approx_mirror.trace[i]
            );
        }
    }
    println!(
        "\nfinal scores: exact {:.4}, approx {:.4}, exact+mirror {:.4}, approx+mirror {:.4}",
        exact.score, approx.score, exact_mirror.score, approx_mirror.score
    );
    println!("Paper: exact/exact+mirror converge to the dotted asymptotes;");
    println!("approx alone nearly reaches exact+mirror; combining both pushes ~0.90 -> <0.85.");
}
