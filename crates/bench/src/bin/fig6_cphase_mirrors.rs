//! Regenerates **Figure 6**: the CPHASE family and its mirror, the
//! parametric-SWAP family, against the √iSWAP `k = 2` coverage region.
//!
//! Paper: every CPHASE sits inside the k = 2 region; its pSWAP mirror falls
//! outside (k = 3) except at the iSWAP endpoint — so mirroring a CPHASE
//! buys data movement only when routing (not decomposition) profits.

use mirage_bench::{coverage_for, print_table};
use mirage_weyl::coords::WeylCoord;
use mirage_weyl::mirror::mirror_coord;

fn main() {
    println!("Figure 6 — CPHASE family vs its pSWAP mirror in sqrt(iSWAP) coverage\n");
    let set = coverage_for(2, false, 4);
    let mut rows = Vec::new();
    for step in 0..=8 {
        let theta = std::f64::consts::PI * f64::from(step) / 8.0;
        let w = WeylCoord::cphase(theta);
        let m = mirror_coord(&w);
        let k_w = set.min_k(&w).map(|k| k.to_string()).unwrap_or("-".into());
        let k_m = set.min_k(&m).map(|k| k.to_string()).unwrap_or("-".into());
        rows.push(vec![
            format!("{:.3}pi", theta / std::f64::consts::PI),
            format!("{w}"),
            k_w,
            format!("{m}"),
            k_m,
        ]);
    }
    print_table(
        &["theta", "CPHASE coords", "k", "pSWAP mirror coords", "k"],
        &rows,
    );
    println!("\nPaper: CPHASE inside k=2; pSWAP needs k=3 except at theta = pi (iSWAP).");
}
