//! The coverage-geometry perf gate: the banked + atlas query flow vs the
//! seed-era per-level polytope walk.
//!
//! For each stock basis (√iSWAP, CNOT, CZ, and the mirror-inclusive
//! iSWAP^(1/3) — see `stock_specs`) this bin builds the coverage set,
//! collects three query suites —
//!
//! - **hit**: points inside the depth-1 region (jittered gate-class
//!   coordinates), answered after one polytope's rows;
//! - **miss**: genuine depth-2 products, the cheapest voluminous level;
//! - **deep-miss**: Haar points at k ≥ 3 (or uncovered), walking every
//!   non-full level before the terminal full one —
//!
//! and times `CoverageSet::min_k` on the packed [`PolytopeBank`] against
//! `min_k_legacy_geom` (the retained seed-code walk) over each suite,
//! best-of-3, reporting ns/query. Every collected point is first asserted
//! to give the *same* `min_k` and bit-identical `cost_or_max` on both
//! paths, so a speedup can never hide a semantic drift.
//!
//! **The gated metric is session query throughput.** The seed-era flow
//! pays `CoverageSet::build` (sampling + quickhull, ~150 ms) at first use
//! on every fresh process before the first query can be answered; the
//! banked flow decodes the checked-in atlas instead (~0.1 ms). A *session*
//! is that setup plus the sweep's own query volume (`target_queries` per
//! basis), the same shape as a transpile/serve process: setup once, then a
//! stream of cost-cache-miss queries. Hot per-query ns are reported
//! per-suite as honest columns — on the dozen-row stock banks both walks
//! sit within a few ns of the hardware floor, where code-alignment noise
//! dominates the ratio; which is exactly why the checked-in atlases, not
//! micro-tier tricks, carry the end-to-end win.
//!
//! Hard gates (nonzero exit): bank/legacy answer mismatch, pinned atlas
//! fingerprint drift, and aggregate session throughput below 2×.
//!
//! Usage: `coverage_runtime [--quick] [--out PATH] [--regen-atlases]`
//!
//! `--regen-atlases` rebuilds the stock sets and rewrites the checked-in
//! atlas files (run after an intentional geometry change, then update
//! `ATLAS_FNV` below from its output).
//!
//! [`PolytopeBank`]: mirage_coverage::geom::PolytopeBank

use mirage_bench::print_table;
use mirage_coverage::atlas::{encode, fnv1a, load_stock, stock_atlas_bytes, stock_specs};
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_gates::{haar_1q, haar_2q};
use mirage_math::{Mat4, Rng};
use mirage_weyl::coords::{coords_of, WeylCoord};
use std::time::Instant;

const POINT_SEED: u64 = 0xC07E;
const BEST_OF: usize = 3;
/// Haar samples drawn before giving up on filling a rare suite.
const MAX_DRAWS: usize = 200_000;

/// Pinned FNV-1a fingerprints of the checked-in atlas files. `--quick`
/// fails on drift; regenerate with `--regen-atlases` after an intentional
/// geometry or format change.
const ATLAS_FNV: &[(&str, u64)] = &[
    ("sqrt_iswap", 0x6B4813656F018AEE),
    ("cnot", 0x73D34D4A088658C0),
    ("cz", 0x123F5E69DD3B2397),
    ("iswap_1_3", 0x50E6BA3F58F08303),
];

struct Suite {
    name: &'static str,
    points: Vec<WeylCoord>,
}

struct SuiteTiming {
    name: &'static str,
    points: usize,
    bank_ns: f64,
    legacy_ns: f64,
}

impl SuiteTiming {
    fn speedup(&self) -> f64 {
        if self.bank_ns <= 0.0 {
            0.0
        } else {
            self.legacy_ns / self.bank_ns
        }
    }
}

struct Measured {
    basis: String,
    build_ms: f64,
    atlas_load_ms: Option<f64>,
    atlas_fingerprint: Option<u64>,
    /// Query volume a session is modeled to serve (per basis).
    target_queries: usize,
    suites: Vec<SuiteTiming>,
}

impl Measured {
    /// Point-weighted mean ns/query across this basis's suites.
    fn mean_ns(&self, pick: impl Fn(&SuiteTiming) -> f64) -> f64 {
        let (mut ns, mut n) = (0.0, 0.0);
        for s in &self.suites {
            ns += pick(s) * s.points as f64;
            n += s.points as f64;
        }
        if n <= 0.0 {
            0.0
        } else {
            ns / n
        }
    }

    /// Seed-era session: build the set from scratch, then answer the
    /// query volume on the legacy walk.
    fn legacy_session_ms(&self) -> f64 {
        self.build_ms + self.target_queries as f64 * self.mean_ns(|s| s.legacy_ns) / 1e6
    }

    /// Banked session: decode the checked-in atlas (fall back to a fresh
    /// build when none decodes), then answer the volume on the bank.
    fn banked_session_ms(&self) -> f64 {
        self.atlas_load_ms.unwrap_or(self.build_ms)
            + self.target_queries as f64 * self.mean_ns(|s| s.bank_ns) / 1e6
    }

    fn session_speedup(&self) -> f64 {
        let b = self.banked_session_ms();
        if b <= 0.0 {
            0.0
        } else {
            self.legacy_session_ms() / b
        }
    }
}

/// Collect the hit / miss / deep-miss suites for one coverage set,
/// classifying with the legacy walk (the reference semantics).
fn collect_suites(set: &CoverageSet, basis: &BasisGate, per_suite: usize) -> Vec<Suite> {
    let mut rng = Rng::new(POINT_SEED ^ fnv1a(basis.name.as_bytes()));
    let mut hit = Vec::new();
    let mut miss = Vec::new();
    let mut deep = Vec::new();

    // Hits: the depth-1 region degenerates to the gate class itself (a
    // single-vertex polytope), so Haar sampling would never land there —
    // jitter the gate coordinate *below* the query tolerance instead, the
    // same perturbation a consolidated-but-numerically-noisy gate carries.
    let c = basis.coord;
    let mut draws = 0usize;
    while hit.len() < per_suite && draws < MAX_DRAWS {
        draws += 1;
        let j = 2e-10;
        let w = WeylCoord::canonicalize(
            c.a + rng.uniform_range(-j, j),
            c.b + rng.uniform_range(-j, j),
            c.c + rng.uniform_range(-j, j),
        );
        if set.min_k_legacy_geom(&w) == Some(1) {
            hit.push(w);
        }
    }

    // Misses: genuine depth-2 products `B·(l₁⊗l₂)·B` — the k = 2 region
    // can be measure-zero under Haar (two CNOTs reach only the z = 0
    // plane), so these are synthesized rather than rejection-sampled.
    let mut draws = 0usize;
    while miss.len() < per_suite && draws < MAX_DRAWS {
        draws += 1;
        let l = Mat4::kron(&haar_1q(&mut rng), &haar_1q(&mut rng));
        let u = basis.unitary.mul(&l).mul(&basis.unitary);
        let w = coords_of(&u);
        if set.min_k_legacy_geom(&w) == Some(2) {
            miss.push(w);
        }
    }

    // Deep misses come from genuine Haar samples: almost all of the
    // chamber needs k ≥ 3 (or falls off the sampled hulls entirely).
    let mut draws = 0usize;
    while deep.len() < per_suite && draws < MAX_DRAWS {
        draws += 1;
        let w = coords_of(&haar_2q(&mut rng));
        match set.min_k_legacy_geom(&w) {
            Some(k) if k >= 3 => deep.push(w),
            None => deep.push(w),
            _ => {}
        }
    }

    let suites = vec![
        Suite {
            name: "hit",
            points: hit,
        },
        Suite {
            name: "miss",
            points: miss,
        },
        Suite {
            name: "deep-miss",
            points: deep,
        },
    ];
    for s in &suites {
        assert!(
            !s.points.is_empty(),
            "{}: could not collect any '{}' points in {MAX_DRAWS} draws",
            basis.name,
            s.name
        );
    }
    suites
}

/// Both paths must agree exactly on every point before any timing counts.
fn assert_identical(set: &CoverageSet, basis: &str, suites: &[Suite]) {
    for s in suites {
        for w in &s.points {
            let bank = set.min_k(w);
            let legacy = set.min_k_legacy_geom(w);
            assert_eq!(
                bank, legacy,
                "{basis}/{}: min_k diverged at ({}, {}, {})",
                s.name, w.a, w.b, w.c
            );
            let (cb, cl) = (set.cost_or_max(w), set.cost_or_max_legacy_geom(w));
            assert!(
                cb.to_bits() == cl.to_bits(),
                "{basis}/{name}: cost_or_max diverged ({cb} vs {cl})",
                name = s.name
            );
        }
    }
}

/// Best-of-`BEST_OF` ns/query over `reps` passes of the whole suite.
fn time_queries(points: &[WeylCoord], reps: usize, mut f: impl FnMut(&WeylCoord) -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..BEST_OF {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for _ in 0..reps {
            for w in points {
                acc = acc.wrapping_add(f(w));
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        best = best.min(dt * 1e9 / (reps * points.len()) as f64);
    }
    best
}

fn measure(basis: &BasisGate, opts: &CoverageOptions, quick: bool) -> Measured {
    let t0 = Instant::now();
    let set = CoverageSet::build(basis.clone(), opts);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Atlas load path: decode the embedded bytes and prove the loaded set
    // is the same geometry (bank rows compare bit-for-bit).
    let bytes = stock_atlas_bytes(&basis.name);
    let (atlas_load_ms, atlas_fingerprint) = match bytes {
        Some(b) if !b.is_empty() => {
            let t0 = Instant::now();
            let loaded = load_stock(basis, opts);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            match loaded {
                Some(l) => {
                    assert!(
                        l.bank() == set.bank(),
                        "{}: atlas-loaded bank differs from freshly built set",
                        basis.name
                    );
                    (Some(dt), Some(fnv1a(b)))
                }
                None => (None, Some(fnv1a(b))),
            }
        }
        _ => (None, None),
    };

    let per_suite = if quick { 60 } else { 200 };
    let target_queries = if quick { 20_000 } else { 100_000 };
    let suites = collect_suites(&set, basis, per_suite);
    assert_identical(&set, &basis.name, &suites);

    let timings = suites
        .iter()
        .map(|s| {
            let reps = (target_queries / s.points.len()).max(1);
            let bank_ns = time_queries(&s.points, reps, |w| set.min_k(w).unwrap_or(99));
            let legacy_ns =
                time_queries(&s.points, reps, |w| set.min_k_legacy_geom(w).unwrap_or(99));
            SuiteTiming {
                name: s.name,
                points: s.points.len(),
                bank_ns,
                legacy_ns,
            }
        })
        .collect();

    Measured {
        basis: basis.name.clone(),
        build_ms,
        atlas_load_ms,
        atlas_fingerprint,
        target_queries,
        suites: timings,
    }
}

fn check_atlas_pins(rows: &[Measured]) -> bool {
    let mut ok = true;
    for row in rows {
        let pinned = ATLAS_FNV.iter().find(|(n, _)| *n == row.basis);
        match (pinned, row.atlas_fingerprint) {
            (Some(&(_, want)), Some(got)) => {
                if want != got {
                    eprintln!(
                        "ATLAS DRIFT {}: fingerprint 0x{got:016X}, pinned 0x{want:016X}",
                        row.basis
                    );
                    ok = false;
                }
            }
            (Some(_), None) => {
                eprintln!(
                    "ATLAS MISSING {}: no embedded atlas decoded (run --regen-atlases)",
                    row.basis
                );
                ok = false;
            }
            (None, _) => {
                eprintln!("ATLAS: no pinned fingerprint for {}", row.basis);
                ok = false;
            }
        }
    }
    ok
}

/// Point-weighted hot-cache query speedup across every suite — the honest
/// "both walks sit near the floor on stock banks" column.
fn aggregate_hot_speedup(rows: &[Measured]) -> f64 {
    let (mut bank, mut legacy) = (0.0, 0.0);
    for r in rows {
        for s in &r.suites {
            bank += s.bank_ns * s.points as f64;
            legacy += s.legacy_ns * s.points as f64;
        }
    }
    if bank <= 0.0 {
        0.0
    } else {
        legacy / bank
    }
}

/// The gated number: total session time (setup + query volume) across all
/// stock bases, seed-era flow over banked flow.
fn aggregate_session_speedup(rows: &[Measured]) -> f64 {
    let legacy: f64 = rows.iter().map(Measured::legacy_session_ms).sum();
    let banked: f64 = rows.iter().map(Measured::banked_session_ms).sum();
    if banked <= 0.0 {
        0.0
    } else {
        legacy / banked
    }
}

fn write_json(path: &str, mode: &str, rows: &[Measured]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"coverage_runtime\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {POINT_SEED}, \"best_of\": {BEST_OF}}},\n"
    ));
    s.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let load = r
            .atlas_load_ms
            .map_or("null".to_owned(), |v| format!("{v:.3}"));
        let fp = r
            .atlas_fingerprint
            .map_or("null".to_owned(), |v| format!("\"0x{v:016X}\""));
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"build_ms\": {:.3}, \"atlas_load_ms\": {}, \
             \"atlas_fingerprint\": {}, \"target_queries\": {}, \
             \"legacy_session_ms\": {:.3}, \"banked_session_ms\": {:.3}, \
             \"session_speedup\": {:.1}, \"suites\": [",
            r.basis,
            r.build_ms,
            load,
            fp,
            r.target_queries,
            r.legacy_session_ms(),
            r.banked_session_ms(),
            r.session_speedup()
        ));
        for (j, t) in r.suites.iter().enumerate() {
            s.push_str(&format!(
                "{{\"suite\": \"{}\", \"points\": {}, \"bank_ns\": {:.1}, \
                 \"legacy_ns\": {:.1}, \"speedup\": {:.2}}}{}",
                t.name,
                t.points,
                t.bank_ns,
                t.legacy_ns,
                t.speedup(),
                if j + 1 == r.suites.len() { "" } else { ", " }
            ));
        }
        s.push_str(&format!(
            "]}}{}",
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"hot_query_speedup\": {:.2},\n  \"session_speedup\": {:.1}\n",
        aggregate_hot_speedup(rows),
        aggregate_session_speedup(rows)
    ));
    s.push_str("}\n");
    std::fs::write(path, s)
}

fn regen_atlases() {
    for (basis, opts) in stock_specs() {
        let t0 = Instant::now();
        let set = CoverageSet::build(basis.clone(), &opts);
        let bytes = encode(&set, &opts);
        let path = format!(
            "{}/../coverage/atlases/{}.atlas",
            env!("CARGO_MANIFEST_DIR"),
            basis.name
        );
        std::fs::write(&path, &bytes).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "    (\"{}\", 0x{:016X}), // {} bytes, built in {:.1}s",
            basis.name,
            fnv1a(&bytes),
            bytes.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    println!("atlases rewritten; update ATLAS_FNV with the lines above");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--regen-atlases") {
        regen_atlases();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_coverage.json".to_owned());

    let mode = if quick { "quick" } else { "full" };
    println!("coverage_runtime — banked vs legacy geometry, best-of-{BEST_OF} ({mode})\n");

    let rows: Vec<Measured> = stock_specs()
        .iter()
        .map(|(basis, opts)| measure(basis, opts, quick))
        .collect();

    let mut table: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        for t in &r.suites {
            table.push(vec![
                format!("{}/{}", r.basis, t.name),
                t.points.to_string(),
                format!("{:.0}", t.bank_ns),
                format!("{:.0}", t.legacy_ns),
                format!("{:.2}x", t.speedup()),
            ]);
        }
    }
    print_table(
        &["case", "points", "bank ns/q", "legacy ns/q", "speedup"],
        &table,
    );

    println!();
    let session: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.basis.clone(),
                format!("{:.1}", r.build_ms),
                r.atlas_load_ms
                    .map_or("-".to_owned(), |v| format!("{v:.3}")),
                r.target_queries.to_string(),
                format!("{:.1}", r.legacy_session_ms()),
                format!("{:.1}", r.banked_session_ms()),
                format!("{:.0}x", r.session_speedup()),
            ]
        })
        .collect();
    print_table(
        &[
            "basis",
            "build ms",
            "atlas ms",
            "queries",
            "legacy session ms",
            "banked session ms",
            "speedup",
        ],
        &session,
    );

    let hot = aggregate_hot_speedup(&rows);
    let agg = aggregate_session_speedup(&rows);
    println!("\nhot query speedup (point-weighted): {hot:.2}x");
    println!("session throughput speedup (gated, >= 2x): {agg:.1}x");

    let pins_ok = check_atlas_pins(&rows);
    match write_json(&out_path, mode, &rows) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if !pins_ok {
        eprintln!("coverage_runtime: atlas fingerprints drifted from the pins");
        std::process::exit(1);
    }
    if agg < 2.0 {
        eprintln!("coverage_runtime: session throughput speedup {agg:.2}x is below the 2x gate");
        std::process::exit(1);
    }
}
