//! Regenerates **Figure 12**: MIRAGE vs the SABRE baseline on the two
//! production topologies — 57-qubit heavy-hex and the 6×6 square lattice —
//! tracking critical-path depth, total gate cost, and SWAP count.
//!
//! Paper: heavy-hex −31.19% depth / −16.97% gates / −56.19% SWAPs;
//! square lattice −29.58% depth / −10.25% gates / −59.86% SWAPs.
//!
//! Usage: `fig12_topologies [heavy-hex|square|both]`

use mirage_bench::{geo_mean, pct_improvement, print_table, run_one};
use mirage_circuit::generators::paper_suite;
use mirage_core::{RouterKind, Target};
use mirage_topology::CouplingMap;

fn run_topology(label: &str, target: &Target) {
    println!("== Figure 12 — {label} ({}) ==\n", target.topology().name());
    let suite: Vec<_> = paper_suite()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("wstate") && !name.starts_with("bv"))
        .collect();

    let mut rows = Vec::new();
    let mut agg: [Vec<f64>; 6] = Default::default();
    for (name, circ) in &suite {
        let base = run_one(name, circ, target, RouterKind::Sabre, 0x1212);
        let mir = run_one(name, circ, target, RouterKind::Mirage, 0x1212);
        agg[0].push(base.depth);
        agg[1].push(mir.depth);
        agg[2].push(base.gate_cost);
        agg[3].push(mir.gate_cost);
        agg[4].push(base.swaps.max(1) as f64);
        agg[5].push(mir.swaps.max(1) as f64);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", base.depth),
            format!("{:.1}", mir.depth),
            format!("{:.1}", base.gate_cost),
            format!("{:.1}", mir.gate_cost),
            base.swaps.to_string(),
            mir.swaps.to_string(),
            format!("{:.1}%", 100.0 * mir.mirror_rate),
        ]);
        eprintln!("  done: {name}");
    }
    print_table(
        &[
            "circuit", "depth(Q)", "depth(M)", "cost(Q)", "cost(M)", "swaps(Q)", "swaps(M)",
            "mirror%",
        ],
        &rows,
    );
    println!(
        "\naverage depth reduction : {:.1}%",
        pct_improvement(geo_mean(&agg[0]), geo_mean(&agg[1]))
    );
    println!(
        "average cost reduction  : {:.1}%",
        pct_improvement(geo_mean(&agg[2]), geo_mean(&agg[3]))
    );
    println!(
        "average SWAP reduction  : {:.1}%",
        pct_improvement(geo_mean(&agg[4]), geo_mean(&agg[5]))
    );
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    if which == "heavy-hex" || which == "both" {
        run_topology(
            "Heavy-Hex 57Q",
            &Target::sqrt_iswap(CouplingMap::heavy_hex(5)),
        );
    }
    if which == "square" || which == "both" {
        run_topology(
            "Square-Lattice 6x6",
            &Target::sqrt_iswap(CouplingMap::grid(6, 6)),
        );
    }
    println!("Paper: heavy-hex -31.19% depth, -16.97% gates, -56.19% swaps;");
    println!("square  -29.58% depth, -10.25% gates, -59.86% swaps.");
}
