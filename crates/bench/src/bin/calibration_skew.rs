//! Calibration-skew sweep: how does MIRAGE's advantage over SABRE — and
//! its mirror acceptance — shift as a device drifts from uniform
//! calibration to one with 10× outlier edges?
//!
//! For each topology (line, grid, heavy-hex) and skew factor
//! (1× = uniform, 3×, 10× on a random quarter of the edges, base 2Q error
//! 0.5% per application), every benchmark circuit is transpiled twice:
//! SABRE with its swap-count post-selection and MIRAGE post-selecting on
//! [`Metric::EstimatedSuccess`] — the noise-aware metric — and the
//! predicted success probabilities are compared. This is the calibrated
//! analogue of the paper's Table III hardware comparison.
//!
//! Usage: `calibration_skew [--quick] [line|grid|heavy-hex|all]`

use mirage_bench::{eval_options, geo_mean, print_table};
use mirage_circuit::generators::{portfolio_qaoa, qft, two_local_full};
use mirage_circuit::Circuit;
use mirage_core::calibration::Calibration;
use mirage_core::trials::Metric;
use mirage_core::{transpile, RouterKind, Target, TranspileOptions};
use mirage_math::Rng;
use mirage_topology::CouplingMap;

const SKEW_FACTORS: [f64; 3] = [1.0, 3.0, 10.0];
const OUTLIER_FRACTION: f64 = 0.25;
const BASE_ERROR: f64 = 5e-3;

struct Config {
    quick: bool,
    which: String,
}

fn circuits(quick: bool) -> Vec<(String, Circuit)> {
    let n = if quick { 5 } else { 6 };
    vec![
        (format!("qft-{n}"), qft(n, false)),
        (format!("twolocal-{n}"), two_local_full(n, 1, 7)),
        (format!("qaoa-{n}"), portfolio_qaoa(n, 1, 7)),
    ]
}

fn options(quick: bool, router: RouterKind, seed: u64) -> TranspileOptions {
    let mut opts = if quick {
        TranspileOptions::quick(router, seed)
    } else {
        eval_options(router, seed)
    };
    // Noise-aware post-selection for MIRAGE; SABRE keeps its native
    // swap-count metric (the baseline a production compiler would run).
    if router == RouterKind::Mirage {
        opts = opts.with_metric(Metric::EstimatedSuccess);
    }
    // The point of the experiment is routing, not embedding.
    opts.use_vf2 = false;
    opts
}

fn run_topology(label: &str, topo: &CouplingMap, cfg: &Config) {
    println!(
        "== calibration skew — {label} ({}, {} edges) ==\n",
        topo.name(),
        topo.edges().len()
    );
    let mut rows = Vec::new();
    let mut shift_summary = Vec::new();
    for &factor in &SKEW_FACTORS {
        // One seed across all factors: the *same* quarter of the edges is
        // degraded at every skew level, so the sweep isolates the skew
        // magnitude from the (random) outlier placement.
        let cal = Calibration::skewed(
            topo,
            &mut Rng::new(0xCA11B),
            BASE_ERROR,
            OUTLIER_FRACTION,
            factor,
        )
        .expect("base error and factor are in range");
        let target = Target::sqrt_iswap(topo.clone())
            .with_calibration(cal)
            .expect("skewed calibration covers the topology");
        let mut suc_sabre = Vec::new();
        let mut suc_mirage = Vec::new();
        let mut mirror_rates = Vec::new();
        for (name, circ) in circuits(cfg.quick) {
            let sabre = transpile(&circ, &target, &options(cfg.quick, RouterKind::Sabre, 0xD1))
                .expect("sabre transpiles");
            let mirage = transpile(
                &circ,
                &target,
                &options(cfg.quick, RouterKind::Mirage, 0xD1),
            )
            .expect("mirage transpiles");
            suc_sabre.push(sabre.metrics.estimated_success);
            suc_mirage.push(mirage.metrics.estimated_success);
            mirror_rates.push(mirage.metrics.mirror_rate);
            rows.push(vec![
                format!("{factor:.0}x"),
                name,
                format!("{:.4}", sabre.metrics.estimated_success),
                format!("{:.4}", mirage.metrics.estimated_success),
                format!(
                    "{:+.1}%",
                    100.0 * (mirage.metrics.estimated_success - sabre.metrics.estimated_success)
                        / sabre.metrics.estimated_success.max(1e-12)
                ),
                format!("{:.0}%", 100.0 * mirage.metrics.mirror_rate),
                mirage.metrics.swaps_inserted.to_string(),
                sabre.metrics.swaps_inserted.to_string(),
            ]);
        }
        shift_summary.push((
            factor,
            geo_mean(&suc_sabre),
            geo_mean(&suc_mirage),
            mirror_rates.iter().sum::<f64>() / mirror_rates.len().max(1) as f64,
        ));
    }
    print_table(
        &[
            "skew", "circuit", "succ(Q)", "succ(M)", "delta", "mirror%", "swaps(M)", "swaps(Q)",
        ],
        &rows,
    );
    println!();
    for (factor, sabre, mirage, rate) in shift_summary {
        println!(
            "skew {factor:>4.0}x : geo-mean success SABRE {sabre:.4} vs MIRAGE {mirage:.4}, \
             mean mirror acceptance {:.0}%",
            100.0 * rate
        );
    }
    println!();
}

fn main() {
    let mut cfg = Config {
        quick: false,
        which: "all".into(),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            cfg.quick = true;
        } else {
            cfg.which = arg;
        }
    }
    let topologies: Vec<(&str, CouplingMap)> = if cfg.quick {
        vec![
            ("line", CouplingMap::line(6)),
            ("grid", CouplingMap::grid(3, 3)),
            ("heavy-hex", CouplingMap::heavy_hex(3)),
        ]
    } else {
        vec![
            ("line", CouplingMap::line(8)),
            ("grid", CouplingMap::grid(4, 4)),
            ("heavy-hex", CouplingMap::heavy_hex(3)),
        ]
    };
    for (label, topo) in &topologies {
        if cfg.which == "all" || cfg.which == *label {
            run_topology(label, topo, &cfg);
        }
    }
    println!(
        "{:.0}% of edges are outliers (duration and error x skew); mirror pricing is per-edge, \
         so the decomposition delta dominates the routing term on expensive couplers.",
        100.0 * OUTLIER_FRACTION
    );
}
