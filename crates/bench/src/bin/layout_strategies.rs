//! Layout-strategy shootout: does calibration-aware seeding beat the
//! paper's uniform-random layout trials on a noisy device?
//!
//! For each topology (a square grid and the IBM-style heavy-hex) a
//! [`Calibration::skewed`] device is built — 10× slower/noisier outlier
//! edges on a random quarter of the couplers, fixed seed — and every
//! benchmark circuit is routed through one [`TrialEngine`] at **equal
//! trial budget** under each layout strategy (and the balanced mix),
//! post-selecting on [`Metric::EstimatedSuccess`]. The table reports the
//! predicted success probability per strategy; the summary compares
//! noise-aware (and mixed) seeding against random seeding. Everything is
//! seed-deterministic.
//!
//! Usage: `layout_strategies [--quick] [grid|heavy-hex|all]`

use mirage_bench::{geo_mean, print_table};
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::{portfolio_qaoa, qft, two_local_full};
use mirage_circuit::Circuit;
use mirage_core::calibration::Calibration;
use mirage_core::placement::BALANCED_STRATEGY_MIX;
use mirage_core::trials::{Metric, TrialEngine, TrialOptions};
use mirage_core::{StrategyKind, Target};
use mirage_math::Rng;
use mirage_topology::CouplingMap;

const BASE_ERROR: f64 = 5e-3;
const OUTLIER_FRACTION: f64 = 0.25;
const SKEW_FACTOR: f64 = 10.0;
const SEED: u64 = 0x1A10;

struct Config {
    quick: bool,
    which: String,
}

fn circuits(quick: bool) -> Vec<(String, Circuit)> {
    let n = if quick { 5 } else { 6 };
    vec![
        (format!("qft-{n}"), qft(n, false)),
        (format!("twolocal-{n}"), two_local_full(n, 1, 7)),
        (format!("qaoa-{n}"), portfolio_qaoa(n, 1, 7)),
    ]
}

/// The compared seeding configurations: each one-hot strategy plus the
/// balanced mix.
fn lanes() -> Vec<(&'static str, [f64; 5])> {
    let mut lanes: Vec<(&'static str, [f64; 5])> = StrategyKind::ALL
        .iter()
        .map(|&k| (k.name(), k.one_hot()))
        .collect();
    lanes.push(("mixed", BALANCED_STRATEGY_MIX));
    lanes
}

fn options(quick: bool, mix: [f64; 5]) -> TrialOptions {
    let mut opts = TrialOptions::quick(Metric::EstimatedSuccess, SEED);
    opts.layout_trials = if quick { 4 } else { 8 };
    opts.routing_trials = if quick { 4 } else { 6 };
    opts.fwd_bwd_iters = if quick { 2 } else { 3 };
    opts.parallel = true;
    opts.strategy_mix = mix;
    opts
}

fn run_topology(label: &str, topo: &CouplingMap, cfg: &Config) -> Vec<(String, f64)> {
    let cal = Calibration::skewed(
        topo,
        &mut Rng::new(0xCA11B),
        BASE_ERROR,
        OUTLIER_FRACTION,
        SKEW_FACTOR,
    )
    .expect("base error and factor are in range");
    let target = Target::sqrt_iswap(topo.clone())
        .with_calibration(cal)
        .expect("skewed calibration covers the topology");
    println!(
        "== layout strategies — {label} ({}, {} edges, {:.0}% outliers x{:.0}) ==\n",
        topo.name(),
        topo.edges().len(),
        100.0 * OUTLIER_FRACTION,
        SKEW_FACTOR
    );

    let mut rows = Vec::new();
    // Geo-mean estimated success per lane across the circuit suite.
    let mut per_lane: Vec<(String, Vec<f64>)> = lanes()
        .iter()
        .map(|(n, _)| (n.to_string(), Vec::new()))
        .collect();
    for (name, circ) in circuits(cfg.quick) {
        let consolidated = consolidate(&circ);
        let engine = TrialEngine::new(&consolidated, &target);
        let mut row = vec![name.clone()];
        for (lane, (lane_name, mix)) in lanes().into_iter().enumerate() {
            let outcome = engine
                .run_detailed(true, &options(cfg.quick, mix))
                .expect("valid options");
            let success = outcome.best.estimated_success(&target);
            per_lane[lane].1.push(success);
            let marker = if lane_name == "mixed" {
                format!(" ({})", outcome.strategy.name())
            } else {
                String::new()
            };
            row.push(format!("{success:.4}{marker}"));
        }
        rows.push(row);
    }
    let mut header = vec!["circuit"];
    let lane_defs = lanes();
    for (name, _) in &lane_defs {
        header.push(name);
    }
    print_table(&header, &rows);
    println!();

    let summary: Vec<(String, f64)> = per_lane
        .into_iter()
        .map(|(name, xs)| (name, geo_mean(&xs)))
        .collect();
    for (name, g) in &summary {
        println!("{name:<16} geo-mean estimated success {g:.4}");
    }
    println!();
    summary
}

fn main() {
    let mut cfg = Config {
        quick: false,
        which: "all".into(),
    };
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            cfg.quick = true;
        } else {
            cfg.which = arg;
        }
    }
    let topologies: Vec<(&str, CouplingMap)> = vec![
        (
            "grid",
            if cfg.quick {
                CouplingMap::grid(3, 3)
            } else {
                CouplingMap::grid(4, 4)
            },
        ),
        ("heavy-hex", CouplingMap::heavy_hex(3)),
    ];
    let mut all_ok = true;
    for (label, topo) in &topologies {
        if cfg.which != "all" && cfg.which != *label {
            continue;
        }
        let summary = run_topology(label, topo, &cfg);
        let get = |name: &str| {
            summary
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, g)| g)
                .expect("lane present")
        };
        let random = get("random");
        let best_aware = get("noise-aware").max(get("mixed"));
        let ok = best_aware >= random;
        all_ok &= ok;
        println!(
            "{label}: noise-aware/mixed {best_aware:.4} vs random {random:.4} -> {}",
            if ok {
                "calibration-aware seeding wins"
            } else {
                "REGRESSION"
            }
        );
        println!();
    }
    println!(
        "verdict: calibration-aware seeding >= random at equal trial budget: {}",
        if all_ok { "yes" } else { "NO" }
    );
    // The CI smoke run gates on this: a regression must fail the build,
    // not just print a sad table.
    if !all_ok {
        std::process::exit(1);
    }
}
