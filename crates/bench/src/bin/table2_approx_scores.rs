//! Regenerates **Table II**: Haar scores and fidelities allowing
//! *approximate decomposition* (paper Algorithm 1), with and without
//! mirrors.
//!
//! The decomposition oracle is the real numerical optimizer from
//! `mirage-synth` (Nelder–Mead ansatz fitting); the fidelity threshold per
//! sample is the exact decomposition's circuit fidelity, exactly as in
//! Algorithm 1.
//!
//! Paper values: √iSWAP 1.031/0.9895 → 0.9950/0.9899;
//! ∛iSWAP 0.9433/0.9904 → 0.8900/0.9908;
//! ∜iSWAP 0.9165/0.9906 → 0.8453/0.9913.

use mirage_bench::{coverage_for, print_table};
use mirage_coverage::approx::approx_gate_costs;
use mirage_coverage::haar::FidelityModel;
use mirage_math::Mat4;
use mirage_synth::decompose::{fit_fidelity, DecompOptions};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let model = FidelityModel::paper_default();
    println!(
        "Table II — Haar scores with approximate decomposition ({samples} Monte Carlo samples)\n"
    );

    let mut rows = Vec::new();
    for (label, n, max_k) in [
        ("sqrt(iSWAP)", 2u32, 4),
        ("cbrt(iSWAP)", 3, 5),
        ("4th-root(iSWAP)", 4, 7),
    ] {
        let plain = coverage_for(n, false, max_k);
        let mirror = coverage_for(n, true, max_k);
        let basis = plain.basis.unitary;
        let opts = DecompOptions {
            restarts: 3,
            evals_per_restart: 3000,
            infidelity_target: 1e-7,
            seed: 0x7AB2 + u64::from(n),
        };
        let oracle = move |target: &Mat4, k: usize| -> Option<f64> {
            Some(fit_fidelity(target, &basis, k, &opts))
        };
        let a_plain = approx_gate_costs(&plain, &model, samples, 0xAB2 + u64::from(n), &oracle);
        let a_mirror = approx_gate_costs(&mirror, &model, samples, 0xAB2 + u64::from(n), &oracle);
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", a_plain.score),
            format!("{:.4}", a_plain.avg_fidelity),
            format!("{:.4}", a_mirror.score),
            format!("{:.4}", a_mirror.avg_fidelity),
        ]);
        println!(
            "  [{label}] approx acceptance: plain {:.1}%, mirror {:.1}%",
            100.0 * a_plain.approx_accept_rate,
            100.0 * a_mirror.approx_accept_rate
        );
    }
    println!();
    print_table(
        &[
            "Basis Gate",
            "Haar",
            "Fidelity",
            "Mirror Haar",
            "Mirror Fidelity",
        ],
        &rows,
    );
    println!("\nPaper: sqrt 1.031/0.9895 -> 0.9950/0.9899; cbrt 0.9433/0.9904 -> 0.8900/0.9908; 4th 0.9165/0.9906 -> 0.8453/0.9913");
}
