//! The routing-runtime perf gate: the persistent routing-throughput
//! trajectory.
//!
//! Times the optimized, scratch-reusing router
//! ([`mirage_core::router::route_with_scratch`]) on the QFT family
//! (n = 16 … 64, line topology — the paper's Fig. 13 runtime axis) plus a
//! two_local suite, best-of-3 wall times, and emits the machine-readable
//! `BENCH_routing.json` that future PRs are held against.
//!
//! One hard gate (nonzero exit on failure): **pinned fingerprints** —
//! every case's routed-circuit fingerprint, SWAP count, and mirror count
//! must match the sanity table below. The pins were originally cut against
//! the seed-era `legacy::route` (bit-identical by construction) and have
//! survived three re-anchor cycles; the legacy module itself is now a
//! test-only fixture inside `mirage-core` (`route_matches_legacy_*`
//! sweeps), so this bin pins outputs rather than re-timing the old path.
//! A silent behavior change cannot pass off as a speedup.
//!
//! Usage: `routing_runtime [--quick] [--out PATH] [--print-fingerprints]`

use mirage_bench::print_table;
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::{qft, two_local_full, two_local_linear};
use mirage_circuit::{Circuit, Dag};
use mirage_core::layout::Layout;
use mirage_core::router::{
    node_coords, route_with_scratch, Aggression, RoutedCircuit, RouterConfig, RouterScratch,
};
use mirage_core::Target;
use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::time::Instant;

const ROUTE_SEED: u64 = 0x1313;
const BEST_OF: usize = 3;

/// name, fingerprint, swaps, mirrors — pinned to the pre-rewrite router's
/// output (bit-identical by construction; regenerate with
/// `--print-fingerprints` after an intentional behavior change).
const SANITY: &[(&str, u64, usize, usize)] = &[
    ("qft-16", 0xC4736293D5E6AFA8, 27, 91),
    ("qft-24", 0xEDCA2F0A70B12FE9, 33, 241),
    ("qft-32", 0x831BAE8487AD27B8, 39, 455),
    ("qft-48", 0xDF9CFA2B7FE470CB, 51, 1075),
    ("qft-64", 0x3FFF2B7904DD1A08, 63, 1951),
    ("twolocal-full-12", 0xF1F44696F4BB94A2, 7, 127),
    ("twolocal-full-16", 0xCE22E0695E2D8363, 3, 237),
    ("twolocal-linear-24", 0x551A34CDC86E5D27, 0, 1),
];

struct Case {
    name: &'static str,
    n_qubits: usize,
    circuit: Circuit,
}

fn cases(quick: bool) -> Vec<Case> {
    if quick {
        return vec![Case {
            name: "qft-32",
            n_qubits: 32,
            circuit: qft(32, false),
        }];
    }
    vec![
        Case {
            name: "qft-16",
            n_qubits: 16,
            circuit: qft(16, false),
        },
        Case {
            name: "qft-24",
            n_qubits: 24,
            circuit: qft(24, false),
        },
        Case {
            name: "qft-32",
            n_qubits: 32,
            circuit: qft(32, false),
        },
        Case {
            name: "qft-48",
            n_qubits: 48,
            circuit: qft(48, false),
        },
        Case {
            name: "qft-64",
            n_qubits: 64,
            circuit: qft(64, false),
        },
        Case {
            name: "twolocal-full-12",
            n_qubits: 12,
            circuit: two_local_full(12, 2, 0xB12),
        },
        Case {
            name: "twolocal-full-16",
            n_qubits: 16,
            circuit: two_local_full(16, 2, 0xB16),
        },
        Case {
            name: "twolocal-linear-24",
            n_qubits: 24,
            circuit: two_local_linear(24, 4, 0xB24),
        },
    ]
}

struct Measured {
    name: &'static str,
    n_qubits: usize,
    twoq_gates: usize,
    optimized_ms: f64,
    swaps: usize,
    mirrors: usize,
    fingerprint: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_contention: u64,
}

impl Measured {
    /// Routed 2Q gates per second — the machine-portable throughput view.
    fn gates_per_s(&self) -> f64 {
        if self.optimized_ms <= 0.0 {
            0.0
        } else {
            self.twoq_gates as f64 / (self.optimized_ms / 1e3)
        }
    }
}

fn route_optimized(
    dag: &Dag,
    coords: &[Option<mirage_weyl::coords::WeylCoord>],
    target: &Target,
    config: &RouterConfig,
    scratch: &mut RouterScratch,
) -> RoutedCircuit {
    let mut rng = Rng::new(ROUTE_SEED);
    let layout = Layout::trivial(dag.n_qubits, target.n_qubits());
    route_with_scratch(dag, coords, target, layout, config, &mut rng, scratch)
}

fn measure(case: &Case) -> Measured {
    let cc = consolidate(&case.circuit);
    let dag = Dag::from_circuit(&cc);
    let coords = node_coords(&dag);
    let target = Target::sqrt_iswap(CouplingMap::line(case.n_qubits));
    let config = RouterConfig {
        aggression: Some(Aggression::A2),
        ..RouterConfig::default()
    };
    let mut scratch = RouterScratch::new();

    // Warm-up pass: fills the target's cost cache and sizes the scratch, so
    // the timed runs are steady-state; its output feeds the fingerprint pin.
    let routed = route_optimized(&dag, &coords, &target, &config, &mut scratch);

    let time_best_of = |f: &mut dyn FnMut() -> RoutedCircuit| -> f64 {
        (0..BEST_OF)
            .map(|_| {
                let t0 = Instant::now();
                let r = f();
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(r.swaps_inserted);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let optimized_ms =
        time_best_of(&mut || route_optimized(&dag, &coords, &target, &config, &mut scratch));

    let (cache_hits, cache_misses) = target.cache_stats();
    Measured {
        name: case.name,
        n_qubits: case.n_qubits,
        twoq_gates: cc.two_qubit_gate_count(),
        optimized_ms,
        swaps: routed.swaps_inserted,
        mirrors: routed.mirrors_accepted,
        fingerprint: routed.circuit.fingerprint(),
        cache_hits,
        cache_misses,
        cache_contention: target.cache().contention(),
    }
}

fn check_sanity(rows: &[Measured]) -> bool {
    let mut ok = true;
    for row in rows {
        match SANITY.iter().find(|(name, ..)| *name == row.name) {
            Some(&(_, fp, swaps, mirrors)) => {
                if (row.fingerprint, row.swaps, row.mirrors) != (fp, swaps, mirrors) {
                    eprintln!(
                        "SANITY DRIFT {}: got fingerprint 0x{:016X} / {} swaps / {} mirrors, \
                         pinned 0x{fp:016X} / {swaps} / {mirrors}",
                        row.name, row.fingerprint, row.swaps, row.mirrors
                    );
                    ok = false;
                }
            }
            None => {
                eprintln!("SANITY: no pinned entry for {}", row.name);
                ok = false;
            }
        }
    }
    ok
}

fn json_escape_free(name: &str) -> &str {
    // Case names are static identifiers; keep the emitter honest anyway.
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
        "case name needs JSON escaping: {name}"
    );
    name
}

fn write_json(path: &str, mode: &str, rows: &[Measured]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"routing_runtime\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"topology\": \"line\", \"aggression\": \"A2\", \"seed\": {ROUTE_SEED}, \"best_of\": {BEST_OF}}},\n"
    ));
    s.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_qubits\": {}, \"twoq_gates\": {}, \
             \"optimized_ms\": {:.3}, \"gates_per_s\": {:.0}, \
             \"swaps\": {}, \"mirrors\": {}, \"fingerprint\": \"0x{:016X}\", \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_contention\": {}}}{}",
            json_escape_free(r.name),
            r.n_qubits,
            r.twoq_gates,
            r.optimized_ms,
            r.gates_per_s(),
            r.swaps,
            r.mirrors,
            r.fingerprint,
            r.cache_hits,
            r.cache_misses,
            r.cache_contention,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let print_fingerprints = args.iter().any(|a| a == "--print-fingerprints");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_routing.json".to_owned());

    let mode = if quick { "quick" } else { "full" };
    println!("routing_runtime — line topology, A2, best-of-{BEST_OF} ({mode})\n");

    let rows: Vec<Measured> = cases(quick).iter().map(measure).collect();

    if print_fingerprints {
        println!("const SANITY: &[(&str, u64, usize, usize)] = &[");
        for r in &rows {
            println!(
                "    (\"{}\", 0x{:016X}, {}, {}),",
                r.name, r.fingerprint, r.swaps, r.mirrors
            );
        }
        println!("];");
        return;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.n_qubits.to_string(),
                r.twoq_gates.to_string(),
                format!("{:.2}", r.optimized_ms),
                format!("{:.0}", r.gates_per_s()),
                r.swaps.to_string(),
                r.mirrors.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "case",
            "qubits",
            "2q",
            "ms",
            "2q-gates/s",
            "swaps",
            "mirrors",
        ],
        &table,
    );

    let (h, m, c) = rows.iter().fold((0u64, 0u64, 0u64), |acc, r| {
        (
            acc.0 + r.cache_hits,
            acc.1 + r.cache_misses,
            acc.2 + r.cache_contention,
        )
    });
    println!("\ncache_stats: hits={h} misses={m} contention={c} (shared cost cache, all cases)");

    let sanity_ok = check_sanity(&rows);
    match write_json(&out_path, mode, &rows) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if !sanity_ok {
        eprintln!("routing_runtime: sanity columns drifted from the pinned fingerprints");
        std::process::exit(1);
    }
}
