//! Regenerates **Figure 10**: independent trials at *fixed* aggression
//! levels on wstate n27, bigadder n18, qft n18, and bv n30 — showing that
//! no single aggression setting wins everywhere, motivating the 5/45/45/5
//! trial mix.

use mirage_bench::{eval_options, print_table};
use mirage_circuit::generators::{bv, cuccaro_adder, qft, wstate};
use mirage_core::{transpile, RouterKind, Target};
use mirage_topology::CouplingMap;

fn main() {
    println!("Figure 10 — fixed aggression levels, 6x6 square lattice\n");
    let target = Target::sqrt_iswap(CouplingMap::grid(6, 6));
    let circuits = vec![
        ("wstate_n27", wstate(27)),
        ("bigadder_n18", cuccaro_adder(8)),
        ("qft_n18", qft(18, false)),
        ("bv_n30", bv(30, 18)),
    ];

    let mut rows = Vec::new();
    for (name, circ) in &circuits {
        let mut row = vec![name.to_string()];
        // Baseline (Qiskit/SABRE analogue).
        let mut opts = eval_options(RouterKind::Sabre, 0x1010);
        opts.use_vf2 = false;
        let base = transpile(circ, &target, &opts).expect("transpiles");
        row.push(format!("{:.1}", base.metrics.depth_estimate));
        // Fixed aggression a0..a3.
        for a in 0..4usize {
            let mut mix = [0.0; 4];
            mix[a] = 1.0;
            let mut opts = eval_options(RouterKind::Mirage, 0x1010 + a as u64);
            opts.use_vf2 = false;
            opts.trials.aggression_mix = mix;
            let out = transpile(circ, &target, &opts).expect("transpiles");
            row.push(format!("{:.1}", out.metrics.depth_estimate));
        }
        rows.push(row);
    }
    print_table(
        &[
            "circuit",
            "Qiskit-like",
            "Mirage-a0",
            "Mirage-a1",
            "Mirage-a2",
            "Mirage-a3",
        ],
        &rows,
    );
    println!("\nPaper: no single aggression strategy is universally optimal,");
    println!("supporting the 5%/45%/45%/5% trial distribution.");
}
