//! Regenerates **Figure 3**: coverage of the `k = 2` monodromy polytopes
//! for CNOT and √iSWAP, standard vs mirror-inclusive.
//!
//! Paper: the CNOT regions are planar (0% Haar volume); √iSWAP covers
//! 79.0% standard and 94.4% with mirrors.

use mirage_bench::print_table;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("Figure 3 — k = 2 coverage, CNOT vs sqrt(iSWAP) ({samples} Haar samples)\n");

    let mut rows = Vec::new();
    for (label, basis) in [
        ("CNOT", BasisGate::cnot()),
        ("sqrt(iSWAP)", BasisGate::iswap_root(2)),
    ] {
        for mirrors in [false, true] {
            let opts = CoverageOptions {
                max_k: 2,
                samples_per_k: 4000,
                inflation: 0.01,
                mirrors,
                seed: 0xF13,
            };
            let set = CoverageSet::build(basis.clone(), &opts);
            let cov = set.haar_coverage(2, samples, 0x31F);
            let ranks: Vec<String> = set.levels[1]
                .regions
                .iter()
                .map(|r| r.rank.to_string())
                .collect();
            rows.push(vec![
                label.to_string(),
                if mirrors { "mirror" } else { "standard" }.to_string(),
                format!("{:.1}%", 100.0 * cov),
                format!("[{}]", ranks.join(",")),
            ]);
        }
    }
    print_table(
        &["Basis", "Polytope", "Haar coverage", "Region ranks"],
        &rows,
    );
    println!("\nPaper: CNOT planar 0%; sqrt(iSWAP) 79.0% standard, 94.4% with mirrors.");
}
