//! Regenerates **Figure 11**: the post-selection metric study — Qiskit
//! baseline vs MIRAGE selecting trials by fewest SWAPs vs MIRAGE selecting
//! by estimated depth, on the 13-circuit suite over the 6×6 lattice.
//!
//! Paper: minimizing SWAPs gives −24.1% average depth; optimizing depth
//! directly adds another 7.5% for −29.5% total, with total gate count
//! essentially unchanged (+0.4%).

use mirage_bench::{geo_mean, pct_improvement, print_table, run_one};
use mirage_circuit::generators::paper_suite;
use mirage_core::{RouterKind, Target};
use mirage_topology::CouplingMap;

fn main() {
    println!("Figure 11 — post-selection metric comparison, 6x6 square lattice\n");
    let target = Target::sqrt_iswap(CouplingMap::grid(6, 6));
    let suite: Vec<_> = paper_suite()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("wstate") && !name.starts_with("bv"))
        .collect();

    let mut rows = Vec::new();
    let mut depths = [Vec::new(), Vec::new(), Vec::new()];
    let mut costs = [Vec::new(), Vec::new(), Vec::new()];
    for (name, circ) in &suite {
        let kinds = [
            RouterKind::Sabre,
            RouterKind::MirageSwaps,
            RouterKind::Mirage,
        ];
        let mut cells = vec![name.to_string()];
        for (i, kind) in kinds.iter().enumerate() {
            let row = run_one(name, circ, &target, *kind, 0x1111);
            depths[i].push(row.depth);
            costs[i].push(row.gate_cost);
            cells.push(format!("{:.1}", row.depth));
        }
        rows.push(cells);
        eprintln!("  done: {name}");
    }
    print_table(
        &["circuit", "Qiskit", "MIRAGE-Swaps", "MIRAGE-Depth"],
        &rows,
    );

    let g = [
        geo_mean(&depths[0]),
        geo_mean(&depths[1]),
        geo_mean(&depths[2]),
    ];
    let c = [
        geo_mean(&costs[0]),
        geo_mean(&costs[1]),
        geo_mean(&costs[2]),
    ];
    println!("\ngeo-mean depth: qiskit {:.1}, mirage-swaps {:.1} ({:+.1}%), mirage-depth {:.1} ({:+.1}%)",
        g[0], g[1], -pct_improvement(g[0], g[1]), g[2], -pct_improvement(g[0], g[2]));
    println!(
        "geo-mean gate cost change (depth metric): {:+.1}%",
        -pct_improvement(c[0], c[2])
    );
    println!("\nPaper: swap metric -24.1% depth; depth metric -29.5%; gates +0.4%.");
}
