//! Regenerates **Figure 4**: `k = 2` coverage for ∛iSWAP and ∜iSWAP, plus
//! the maximum-depth observation: ∜iSWAP needs up to `k = 6` without
//! mirrors but never more than `k = 4` with them.

use mirage_bench::{coverage_for, print_table};
use mirage_weyl::coords::WeylCoord;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("Figure 4 — fractional iSWAP coverage ({samples} Haar samples)\n");

    let mut rows = Vec::new();
    for (label, n, max_k) in [("cbrt(iSWAP)", 3u32, 5), ("4th-root(iSWAP)", 4, 7)] {
        for mirrors in [false, true] {
            let set = coverage_for(n, mirrors, max_k);
            let cov2 = set.haar_coverage(2, samples, 0x41F);
            let full_at = set
                .levels
                .iter()
                .find(|l| l.full)
                .map(|l| l.k.to_string())
                .unwrap_or_else(|| format!(">{}", set.max_level().k));
            let k_swap = set
                .min_k(&WeylCoord::SWAP)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into());
            let k_cnot = set
                .min_k(&WeylCoord::CNOT)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into());
            rows.push(vec![
                label.to_string(),
                if mirrors { "mirror" } else { "standard" }.to_string(),
                format!("{:.1}%", 100.0 * cov2),
                full_at,
                k_cnot,
                k_swap,
            ]);
        }
    }
    print_table(
        &[
            "Basis",
            "Polytope",
            "k=2 coverage",
            "full at k",
            "k(CNOT)",
            "k(SWAP)",
        ],
        &rows,
    );
    println!("\nPaper: 4th-root needs k=6 standard, never exceeds k=4 with mirrors;");
    println!("CPHASE family reachable early in both, CNOT not until k = 1/alpha.");
}
