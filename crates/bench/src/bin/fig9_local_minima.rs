//! Regenerates **Figure 9**: the local-minimum example — from one initial
//! layout, different greedy choices land at depths 7 vs 6 pulses; the
//! aggression mix lets MIRAGE find the better route.

use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::two_local_full;
use mirage_circuit::Dag;
use mirage_core::layout::Layout;
use mirage_core::router::{node_coords, route, Aggression, RouterConfig};
use mirage_core::Target;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_math::Rng;
use std::sync::Arc;

fn main() {
    println!("Figure 9 — greedy local minima from a fixed initial layout\n");
    let cov = Arc::new(CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 2500,
            inflation: 0.012,
            mirrors: false,
            seed: 0x919,
        },
    ));
    // The 4-qubit sub-circuit of Fig. 8a, reordered so the first gate needs
    // no SWAPs (paper setup).
    let circ = consolidate(&two_local_full(4, 1, 0xF19));
    let target = Target::with_coverage(mirage_topology::CouplingMap::line(4), cov);
    let dag = Dag::from_circuit(&circ);
    let coords = node_coords(&dag);

    println!("route  aggression  seed  depth(pulses)  swaps  mirrors");
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for aggr in [Aggression::A1, Aggression::A2] {
        for seed in 0..6u64 {
            let config = RouterConfig {
                aggression: Some(aggr),
                ..RouterConfig::default()
            };
            let mut rng = Rng::new(0x5EED9 + seed);
            let r = route(
                &dag,
                &coords,
                &target,
                Layout::trivial(4, 4),
                &config,
                &mut rng,
            );
            let d = target.depth_estimate(&r.circuit) / 0.5;
            best = best.min(d);
            worst = worst.max(d);
            println!(
                "{:>5}  {:>10?}  {:>4}  {:>13.0}  {:>5}  {:>7}",
                seed, aggr, seed, d, r.swaps_inserted, r.mirrors_accepted
            );
        }
    }
    println!("\nbest depth {best:.0} vs worst {worst:.0} pulses from the same layout");
    println!("Paper: the greedy-optimal first choice dead-ends at 7 pulses;");
    println!("an initially sub-optimal choice reaches the 6-pulse optimum.");
}
