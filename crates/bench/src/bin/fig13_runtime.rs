//! Regenerates **Figure 13b**: transpiler runtime scaling on QFT circuits
//! (n = 16 … 64).
//!
//! Substitution note (DESIGN.md): the paper compares its Python MIRAGE
//! against Python Qiskit and reports a 47.9% speedup at QFT-64 thanks to
//! the caching of Fig. 13a. Both sides here are Rust, so we report the
//! reproducible part of the claim — the effect of the coordinate cache —
//! plus MIRAGE vs the SABRE baseline at equal trial counts. The "cold
//! cache" column routes on a target whose shared cache holds a single
//! coordinate class in total, forcing a polytope scan on effectively
//! every query.

use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::qft;
use mirage_circuit::Dag;
use mirage_core::layout::Layout;
use mirage_core::router::{node_coords, route, Aggression, RouterConfig};
use mirage_core::Target;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("Figure 13b — QFT routing runtime (single trial, line topology)\n");
    let cov = Arc::new(CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 2500,
            inflation: 0.012,
            mirrors: false,
            seed: 0x13B,
        },
    ));

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "n", "sabre (ms)", "mirage (ms)", "cold-cache", "hit-rate"
    );
    for &n in &[16usize, 24, 32, 48, 64] {
        let circ = consolidate(&qft(n, false));
        let dag = Dag::from_circuit(&circ);
        let coords = node_coords(&dag);

        let time_router = |aggression: Option<Aggression>, cache_cap: usize| {
            let target = Target::with_coverage(CouplingMap::line(n), cov.clone())
                .with_cache_capacity(cache_cap);
            let config = RouterConfig {
                aggression,
                ..RouterConfig::default()
            };
            let mut rng = Rng::new(0x1313);
            let t0 = Instant::now();
            let r = route(
                &dag,
                &coords,
                &target,
                Layout::trivial(n, n),
                &config,
                &mut rng,
            );
            (
                t0.elapsed().as_secs_f64() * 1e3,
                target.cache().hit_rate(),
                r,
            )
        };

        let (t_sabre, _, _) = time_router(None, 8192);
        let (t_mirage, hit, _) = time_router(Some(Aggression::A2), 8192);
        // "Cold cache": a single-entry cache thrashes on every new class —
        // the pre-Fig.13a behaviour.
        let (t_cold, _, _) = time_router(Some(Aggression::A2), 1);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>9.1}%",
            n,
            t_sabre,
            t_mirage,
            t_cold,
            100.0 * hit
        );
    }
    println!("\nPaper: MIRAGE (with caching) ran 47.9% faster than Python Qiskit at QFT-64;");
    println!("here the cache benefit shows as cold-cache vs warm-cache MIRAGE time.");
}
