//! Regenerates **Table I**: Haar scores and average fidelities for the
//! iSWAP fractions, exact decomposition, with and without mirror gates.
//!
//! Paper values for reference:
//!
//! | basis | Haar | Fidelity | Mirror Haar | Mirror Fidelity |
//! |-------|------|----------|-------------|-----------------|
//! | √iSWAP | 1.105 | 0.9890 | 1.029 | 0.9897 |
//! | ∛iSWAP | 0.9907 | 0.9901 | 0.9545 | 0.9904 |
//! | ∜iSWAP | 0.9599 | 0.9904 | 0.8997 | 0.9910 |

use mirage_bench::{coverage_for, print_table};
use mirage_coverage::haar::{haar_score, FidelityModel};

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let model = FidelityModel::paper_default();
    println!("Table I — Haar scores, exact decomposition ({samples} Haar samples)\n");

    let mut rows = Vec::new();
    for (label, n, max_k) in [
        ("sqrt(iSWAP)", 2u32, 4),
        ("cbrt(iSWAP)", 3, 5),
        ("4th-root(iSWAP)", 4, 7),
    ] {
        let plain = coverage_for(n, false, max_k);
        let mirror = coverage_for(n, true, max_k);
        let hs_plain = haar_score(&plain, &model, samples, 0xAB0 + u64::from(n));
        let hs_mirror = haar_score(&mirror, &model, samples, 0xAB0 + u64::from(n));
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", hs_plain.score),
            format!("{:.4}", hs_plain.avg_fidelity),
            format!("{:.4}", hs_mirror.score),
            format!("{:.4}", hs_mirror.avg_fidelity),
        ]);
    }
    print_table(
        &[
            "Basis Gate",
            "Haar",
            "Fidelity",
            "Mirror Haar",
            "Mirror Fidelity",
        ],
        &rows,
    );
    println!("\nPaper: sqrt 1.105/0.9890 -> 1.029/0.9897; cbrt 0.9907/0.9901 -> 0.9545/0.9904; 4th 0.9599/0.9904 -> 0.8997/0.9910");
}
