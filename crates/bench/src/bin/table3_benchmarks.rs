//! Regenerates **Table III**: the benchmark-circuit inventory — name,
//! qubits, two-qubit gates (CX-equivalent accounting), and class.

use mirage_bench::print_table;
use mirage_circuit::generators::{cx_equivalent_count, paper_suite};

fn main() {
    println!("Table III — benchmark circuits (CX-equivalent 2Q counts)\n");
    let classes = [
        ("wstate_n27", "Entanglement", 52),
        ("qftentangled_n16", "Hidden Subgroup", 279),
        ("qpeexact_n16", "Hidden Subgroup", 261),
        ("ae_n16", "Hidden Subgroup", 240),
        ("qft_n18", "Hidden Subgroup", 306),
        ("bv_n30", "Hidden Subgroup", 18),
        ("multiplier_n15", "Arithmetic", 246),
        ("bigadder_n18", "Arithmetic", 130),
        ("qec9xz_n17", "EC", 32),
        ("seca_n11", "EC", 84),
        ("qram_n20", "Memory", 92),
        ("sat_n11", "Search/QML", 252),
        ("portfolioqaoa_n16", "QML", 720),
        ("knn_n25", "QML", 96),
        ("swap_test_n25", "QML", 96),
    ];
    let suite = paper_suite();
    let mut rows = Vec::new();
    for (name, circ) in &suite {
        let (_, class, paper) = classes
            .iter()
            .find(|(n, _, _)| n == name)
            .expect("every suite circuit is classified");
        rows.push(vec![
            name.to_string(),
            circ.n_qubits.to_string(),
            circ.two_qubit_gate_count().to_string(),
            cx_equivalent_count(circ).to_string(),
            paper.to_string(),
            class.to_string(),
        ]);
    }
    print_table(
        &[
            "name",
            "qubits",
            "2Q (raw)",
            "2Q (CX-equiv)",
            "paper",
            "class",
        ],
        &rows,
    );
}
