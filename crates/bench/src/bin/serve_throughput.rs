//! `serve_throughput` — jobs/sec scaling of the batch transpilation
//! service, a single big job fanned across cores, and a mid-run
//! calibration hot-swap.
//!
//! Three experiments over seed-deterministic workloads:
//!
//! 1. **Worker scaling** — the fixed batch runs on a fresh
//!    `TranspileService` with 1, 2, then 4 workers; the table reports
//!    jobs/sec and the speedup over the single worker. Every batch job
//!    carries `trials.parallel = false`, so the speedup is pure
//!    pool-level parallelism. On hosts with at least 4 hardware threads
//!    the run **exits nonzero** when the 4-worker pool fails to reach the
//!    required speedup over the single worker — 2× in `--quick` (the CI
//!    smoke gate, tolerant of shared runners) and 2.5× in the full run
//!    (the acceptance bar, for dedicated hardware); hosts with fewer
//!    threads report the numbers but skip the gate — there is no
//!    parallelism to measure. Each pool size is measured twice and the
//!    better run kept, so one noisy-neighbor window cannot fail the gate.
//! 2. **Single big job** — the headline of the deterministic-parallel
//!    trial engine: one device-filling QFT with a paper-scale trial
//!    budget, the workload pool-level concurrency can do nothing for.
//!    The job runs once with the serial trial loop and once with
//!    `trials.parallel = true` at 4 threads; the results must be
//!    bit-identical (the engine's pre-split seeds + fixed reduction
//!    order), and on ≥ 4-thread hosts the parallel run must be ≥ 1.5×
//!    faster (gate skipped below 4 threads).
//! 3. **Calibration hot-swap** — one service stays up while the device
//!    "drifts": the first half of the batch is scored under the boot
//!    calibration, then a strictly noisier calibration is swapped in
//!    (`Target::swap_calibration` — no rebuild, no restart) and the second
//!    half runs. The run exits nonzero unless every post-swap job records
//!    the new calibration generation and the predicted success drops.
//!
//! Usage: `serve_throughput [--quick] [--workers N]`

use mirage_circuit::generators::{portfolio_qaoa, qft, two_local_full};
use mirage_circuit::Circuit;
use mirage_core::calibration::Calibration;
use mirage_core::trials::Metric;
use mirage_core::{RouterKind, Target, TranspileOptions};
use mirage_math::Rng;
use mirage_serve::{TranspileJob, TranspileService};
use mirage_topology::CouplingMap;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0x5E27E;

struct Config {
    quick: bool,
    max_workers: usize,
}

fn topology(cfg: &Config) -> CouplingMap {
    if cfg.quick {
        CouplingMap::grid(3, 3)
    } else {
        CouplingMap::grid(4, 4)
    }
}

fn boot_calibration(topo: &CouplingMap) -> Calibration {
    Calibration::skewed(topo, &mut Rng::new(0xB007), 5e-3, 0.25, 4.0)
        .expect("base error and factor are in range")
}

/// The snapshot the hot-swap installs: the boot device degraded to a 4×
/// higher error floor, then perturbed per-edge/per-qubit by
/// [`Calibration::drifted`] (±15%, seeded). The floor keeps every edge
/// strictly noisier than boot — so predicted success must drop for every
/// job — while the drift makes it a realistic re-calibration rather than a
/// uniform rescale.
fn drifted_calibration(topo: &CouplingMap) -> Calibration {
    Calibration::skewed(topo, &mut Rng::new(0xB007), 2e-2, 0.25, 4.0)
        .expect("base error and factor are in range")
        .drifted(&mut Rng::new(0xD21F7), 0.15)
}

/// The fixed batch: a cycle of routing-heavy benchmark circuits, one job
/// per (circuit, repetition) with its own seed.
fn batch(cfg: &Config) -> Vec<TranspileJob> {
    let n = if cfg.quick { 6 } else { 7 };
    let reps = if cfg.quick { 4 } else { 6 };
    let suite: Vec<(String, Circuit)> = vec![
        (format!("qft-{n}"), qft(n, false)),
        (format!("twolocal-{n}"), two_local_full(n, 1, 7)),
        (format!("qaoa-{n}"), portfolio_qaoa(n, 1, 7)),
    ];
    let mut opts =
        TranspileOptions::quick(RouterKind::Mirage, SEED).with_metric(Metric::EstimatedSuccess);
    opts.use_vf2 = false; // every job must pay for routing, not embed away
    opts.trials.layout_trials = if cfg.quick { 4 } else { 6 };
    opts.trials.routing_trials = if cfg.quick { 4 } else { 6 };
    opts.trials.fwd_bwd_iters = 3;
    let mut jobs = Vec::new();
    for rep in 0..reps {
        for (name, circuit) in &suite {
            jobs.push(
                TranspileJob::new(format!("{name}#{rep}"), circuit.clone(), opts.clone())
                    .with_seed(SEED + jobs.len() as u64),
            );
        }
    }
    jobs
}

fn fresh_target(cfg: &Config) -> Arc<Target> {
    let topo = topology(cfg);
    let cal = boot_calibration(&topo);
    Arc::new(
        Target::sqrt_iswap(topo)
            .with_calibration(cal)
            .expect("calibration covers the topology"),
    )
}

/// Run the fixed batch once on a fresh service and return (jobs/sec,
/// circuits).
fn measure_once(cfg: &Config, workers: usize) -> (f64, Vec<Circuit>) {
    let service = TranspileService::new(fresh_target(cfg), workers);
    let jobs = batch(cfg);
    let n = jobs.len();
    let start = Instant::now();
    let results = service.run_batch(jobs).expect("service is live");
    let elapsed = start.elapsed();
    service.shutdown();
    let circuits = results
        .into_iter()
        .map(|r| r.outcome.expect("benchmark jobs succeed").circuit)
        .collect();
    (n as f64 / elapsed.as_secs_f64().max(1e-9), circuits)
}

/// Best of two runs: a throughput gate on shared CI runners must not fail
/// because a noisy neighbor landed on exactly one measurement window.
fn measure(cfg: &Config, workers: usize) -> (f64, Vec<Circuit>) {
    let (t1, circuits) = measure_once(cfg, workers);
    let (t2, again) = measure_once(cfg, workers);
    assert_eq!(circuits, again, "same batch, same seeds, same results");
    (t1.max(t2), circuits)
}

fn scaling_experiment(cfg: &Config) -> bool {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "== serve_throughput — worker scaling ({} jobs, host parallelism {parallelism}) ==\n",
        batch(cfg).len()
    );
    let mut pool_sizes = vec![1usize, 2, 4];
    pool_sizes.retain(|&w| w <= cfg.max_workers);
    let mut baseline = 0.0;
    let mut baseline_circuits: Vec<Circuit> = Vec::new();
    let mut identical = true;
    let mut quad_speedup = None;
    println!(
        "{:>8} {:>10} {:>9}  results",
        "workers", "jobs/sec", "speedup"
    );
    for &workers in &pool_sizes {
        let (throughput, circuits) = measure(cfg, workers);
        if workers == 1 {
            baseline = throughput;
            baseline_circuits = circuits.clone();
        }
        let same = circuits == baseline_circuits;
        identical &= same;
        let speedup = throughput / baseline;
        if workers == 4 {
            quad_speedup = Some(speedup);
        }
        println!(
            "{workers:>8} {throughput:>10.2} {speedup:>8.2}x  {}",
            if same { "bit-identical" } else { "DIVERGED" }
        );
    }
    println!();
    if !identical {
        println!("FAIL: results changed with the worker count");
        return false;
    }
    match quad_speedup {
        Some(speedup) if parallelism >= 4 => {
            // The CI smoke (--quick, shared runners) gates the satellite's
            // 2x floor; the full run enforces the stricter 2.5x acceptance
            // bar on dedicated hardware.
            let required = if cfg.quick { 2.0 } else { 2.5 };
            let ok = speedup >= required;
            println!(
                "4-worker speedup {speedup:.2}x vs required {required:.2}x -> {}",
                if ok { "ok" } else { "FAIL" }
            );
            ok
        }
        Some(speedup) => {
            println!(
                "4-worker speedup {speedup:.2}x (host has {parallelism} threads; \
                 scaling gate skipped — nothing to scale onto)"
            );
            true
        }
        None => true,
    }
}

/// One big job, serial in-job vs parallel in-job trials. Returns false on
/// divergence or (on capable hosts) insufficient speedup.
fn single_big_job_experiment(cfg: &Config) -> bool {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let topo = topology(cfg);
    let n = topo.n_qubits();
    println!("\n== serve_throughput — single big job (qft-{n}, in-job trial parallelism) ==\n");
    let circuit = qft(n, false);
    let mut opts =
        TranspileOptions::quick(RouterKind::Mirage, SEED).with_metric(Metric::EstimatedSuccess);
    opts.use_vf2 = false;
    opts.trials.layout_trials = 8;
    opts.trials.routing_trials = if cfg.quick { 4 } else { 8 };
    opts.trials.fwd_bwd_iters = 3;

    let run_once = |parallel: bool| {
        let service = TranspileService::new(fresh_target(cfg), 1);
        let mut o = opts.clone();
        o.trials.parallel = parallel;
        o.trials.threads = if parallel { 4 } else { 0 };
        let job =
            TranspileJob::new(format!("qft-{n}-big"), circuit.clone(), o).with_seed(SEED ^ 0xB16);
        let start = Instant::now();
        let results = service.run_batch(vec![job]).expect("service is live");
        let elapsed = start.elapsed().as_secs_f64();
        service.shutdown();
        let out = results
            .into_iter()
            .next()
            .unwrap()
            .outcome
            .expect("big job succeeds");
        (elapsed, out.circuit)
    };
    // Best of two, like the scaling experiment: one noisy window must not
    // fail the gate.
    let run = |parallel: bool| {
        let (t1, circuit) = run_once(parallel);
        let (t2, again) = run_once(parallel);
        assert_eq!(circuit, again, "same job, same seed, same result");
        (t1.min(t2), circuit)
    };

    let (serial_s, serial_circuit) = run(false);
    let (parallel_s, parallel_circuit) = run(true);
    let identical = serial_circuit == parallel_circuit;
    let speedup = serial_s / parallel_s.max(1e-9);
    println!("serial in-job trials   : {:>7.2} ms", serial_s * 1e3);
    println!(
        "parallel in-job trials : {:>7.2} ms (4 threads)  {}",
        parallel_s * 1e3,
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        println!("FAIL: in-job parallelism changed the result");
        return false;
    }
    if parallelism >= 4 {
        let ok = speedup >= 1.5;
        println!(
            "single-big-job speedup {speedup:.2}x vs required 1.50x -> {}",
            if ok { "ok" } else { "FAIL" }
        );
        ok
    } else {
        println!(
            "single-big-job speedup {speedup:.2}x (host has {parallelism} threads; \
             gate skipped — nothing to scale onto)"
        );
        true
    }
}

fn hot_swap_experiment(cfg: &Config) -> bool {
    let workers = cfg.max_workers.min(4);
    println!("\n== serve_throughput — mid-run calibration hot-swap ({workers} workers) ==\n");
    let target = fresh_target(cfg);
    let topo = target.topology().clone();
    let service = TranspileService::new(Arc::clone(&target), workers);
    let jobs = batch(cfg);
    let half = jobs.len() / 2;
    let mut jobs = jobs.into_iter();

    let first: Vec<_> = (&mut jobs).take(half).collect();
    let first_results = service.run_batch(first).expect("service is live");

    let generation = service
        .swap_calibration(Arc::new(drifted_calibration(&topo)))
        .expect("drifted calibration covers the topology");

    let second: Vec<_> = jobs.collect();
    let second_results = service.run_batch(second).expect("service is live");
    let stats = service.shutdown();

    let mean_success = |results: &[mirage_serve::JobResult]| {
        let xs: Vec<f64> = results
            .iter()
            .map(|r| {
                r.outcome
                    .as_ref()
                    .expect("benchmark jobs succeed")
                    .metrics
                    .estimated_success
            })
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let before = mean_success(&first_results);
    let after = mean_success(&second_results);
    let generations_ok = first_results.iter().all(|r| r.generation == 0)
        && second_results.iter().all(|r| r.generation == 1)
        && generation == 1;
    println!(
        "jobs under boot calibration : {:>3}  mean estimated success {before:.4}",
        first_results.len()
    );
    println!(
        "jobs under drifted snapshot : {:>3}  mean estimated success {after:.4}",
        second_results.len()
    );
    println!(
        "service stayed up: {} jobs total, generation 0 -> {generation}, no rebuild",
        stats.jobs
    );
    let ok = generations_ok && after < before;
    println!(
        "hot-swap verdict: post-swap jobs see the noisier device -> {}",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

fn main() {
    let mut cfg = Config {
        quick: false,
        max_workers: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--workers" => {
                cfg.max_workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w >= 1)
                    .expect("--workers needs an integer >= 1");
            }
            other => panic!("unknown argument '{other}'"),
        }
    }
    // Build the shared coverage set once, outside every timed region.
    let _ = fresh_target(&cfg).gate_cost(&mirage_weyl::coords::WeylCoord::CNOT);

    let scaling_ok = scaling_experiment(&cfg);
    let big_job_ok = single_big_job_experiment(&cfg);
    let swap_ok = hot_swap_experiment(&cfg);
    if !(scaling_ok && big_job_ok && swap_ok) {
        std::process::exit(1);
    }
}
