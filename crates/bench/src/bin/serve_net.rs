//! `serve_net` — loopback throughput and fault behaviour of the
//! framed-TCP network front, and emits the machine-readable
//! `BENCH_serve.json`.
//!
//! Two experiments over a seed-deterministic workload:
//!
//! 1. **Loopback scaling** — the fixed batch is pushed through a real
//!    `NetServer` on 127.0.0.1 by concurrent client connections, with 1,
//!    2, then 4 pool workers. Every run's results (fingerprint AND the
//!    returned QASM text) must be bit-identical to an in-process
//!    `TranspileService::run_batch` with the same seeds — the wire is a
//!    transport, never a perturbation; the run **exits nonzero** on any
//!    divergence. On hosts with at least 4 hardware threads the 4-worker
//!    pool must also beat the single worker by 1.5× in `--quick` (the CI
//!    smoke gate) and 2.0× in the full run; hosts with fewer threads
//!    report the numbers but skip the speedup gate. Each pool size is
//!    measured twice and the better run kept.
//! 2. **Fault smoke** — the protocol-hardening claims, re-checked from
//!    outside the test suite: garbage bytes get a typed `ProtocolError`,
//!    an oversized frame is refused from its header alone, a client that
//!    overfills its per-client admission budget gets `Busy` while another
//!    client is still admitted, an expired deadline comes back
//!    as a typed failure, and an injected worker panic fails exactly its
//!    own job while the connection keeps serving. Any silent hang or
//!    panic fails the run.
//! 3. **Chaos smoke** (`--chaos`) — a slice of the workload is pushed
//!    through a `ChaosTransport` under several fault-plan seeds, with
//!    the retrying client reconnecting through drops, truncations, and
//!    corruptions. Every job must reach a terminal state and come back
//!    bit-identical to the fault-free reference; verdicts land in the
//!    JSON next to the fault smoke.
//!
//! Usage: `serve_net [--quick] [--workers N] [--chaos] [--out BENCH_serve.json]`

use mirage_circuit::generators::{portfolio_qaoa, qft, two_local_full};
use mirage_circuit::qasm::to_qasm;
use mirage_core::{RouterKind, Target};
use mirage_serve::net::frame;
use mirage_serve::net::proto::{Request, Response};
use mirage_serve::net::{
    ChaosConfig, ChaosConnector, ChaosPlan, ClientError, FailureKind, NetClient, NetServer,
    RetryPolicy, ServeConfig, SubmitRequest, TcpConnector, WireOptions, DEFAULT_MAX_PAYLOAD,
};
use mirage_serve::{InjectedFault, Lane, TranspileJob, TranspileService};
use mirage_topology::CouplingMap;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0x5EA1;

struct Config {
    quick: bool,
    max_workers: usize,
}

fn topology(cfg: &Config) -> CouplingMap {
    if cfg.quick {
        CouplingMap::grid(3, 3)
    } else {
        CouplingMap::grid(4, 4)
    }
}

fn fresh_target(cfg: &Config) -> Arc<Target> {
    Arc::new(Target::sqrt_iswap(topology(cfg)))
}

fn wire_options(cfg: &Config) -> WireOptions {
    let mut wire = WireOptions::quick(RouterKind::Mirage);
    let trials = if cfg.quick { 3 } else { 6 };
    wire.layout_trials = trials;
    wire.routing_trials = trials;
    wire.fwd_bwd_iters = 3;
    wire.use_vf2 = false; // every job must pay for routing, not embed away
    wire.parallel = false; // pool-level scaling only: serial in-job trials
    wire
}

/// The fixed workload: a cycle of routing-heavy benchmark circuits, one
/// request per (circuit, repetition) with its own seed.
fn requests(cfg: &Config) -> Vec<SubmitRequest> {
    let n = topology(cfg).n_qubits() - 2;
    let reps = if cfg.quick { 4 } else { 6 };
    let wire = wire_options(cfg);
    let suite = vec![
        (format!("qft-{n}"), to_qasm(&qft(n, false))),
        (format!("twolocal-{n}"), to_qasm(&two_local_full(n, 1, 7))),
        (format!("qaoa-{n}"), to_qasm(&portfolio_qaoa(n, 1, 7))),
    ];
    let mut out = Vec::new();
    for rep in 0..reps {
        for (name, qasm) in &suite {
            out.push(SubmitRequest {
                label: format!("{name}#{rep}"),
                qasm: qasm.clone(),
                seed: SEED + out.len() as u64,
                lane: Lane::Batch,
                deadline_ms: None,
                options: wire.clone(),
                fault: None,
            });
        }
    }
    out
}

/// What each job must come back as, regardless of transport or pool size.
type Results = BTreeMap<String, (u64, String)>;

/// The in-process reference: the same jobs through `run_batch` directly,
/// no sockets anywhere.
fn reference(cfg: &Config) -> Results {
    let service = TranspileService::new(fresh_target(cfg), 1);
    let jobs: Vec<TranspileJob> = requests(cfg)
        .into_iter()
        .map(|r| {
            let circuit = mirage_circuit::qasm::from_qasm(&r.qasm).expect("workload parses");
            TranspileJob::new(r.label, circuit, r.options.to_options(r.seed))
        })
        .collect();
    let results = service.run_batch(jobs).expect("service is live");
    service.shutdown();
    results
        .into_iter()
        .map(|r| {
            let out = r.outcome.expect("benchmark jobs succeed");
            (r.label, (out.circuit.fingerprint(), to_qasm(&out.circuit)))
        })
        .collect()
}

/// Push the workload through a loopback server once and return (jobs/sec,
/// per-label results). `clients` concurrent connections each carry a
/// strided share of the batch.
fn measure_once(cfg: &Config, workers: usize, clients: usize) -> (f64, Results) {
    let server = NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &ServeConfig::new(workers))
        .expect("loopback bind");
    let addr = server.local_addr();
    let batch = requests(cfg);
    let n = batch.len();
    let start = Instant::now();
    let collected: Results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let share: Vec<SubmitRequest> = batch
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == c)
                    .map(|(_, r)| r.clone())
                    .collect();
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("loopback connect");
                    share
                        .into_iter()
                        .map(|r| {
                            let label = r.label.clone();
                            let done = client.submit(r).expect("benchmark jobs succeed").done;
                            (label, (done.fingerprint, done.qasm))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    server.shutdown();
    assert_eq!(collected.len(), n, "every job must come back exactly once");
    (n as f64 / elapsed.as_secs_f64().max(1e-9), collected)
}

/// Best of two runs: a throughput gate on shared CI runners must not fail
/// because a noisy neighbor landed on exactly one measurement window.
fn measure(cfg: &Config, workers: usize, clients: usize) -> (f64, Results) {
    let (t1, results) = measure_once(cfg, workers, clients);
    let (t2, again) = measure_once(cfg, workers, clients);
    assert_eq!(results, again, "same batch, same seeds, same results");
    (t1.max(t2), results)
}

struct Case {
    workers: usize,
    jobs_per_sec: f64,
    speedup: f64,
    bit_identical: bool,
}

fn scaling_experiment(cfg: &Config, cases: &mut Vec<Case>) -> bool {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let batch_len = requests(cfg).len();
    let clients = 4.min(batch_len);
    println!(
        "== serve_net — loopback scaling ({batch_len} jobs over {clients} connections, \
         host parallelism {parallelism}) ==\n"
    );
    let expected = reference(cfg);
    let mut pool_sizes = vec![1usize, 2, 4];
    pool_sizes.retain(|&w| w <= cfg.max_workers);
    let mut baseline = 0.0;
    let mut identical = true;
    let mut quad_speedup = None;
    println!(
        "{:>8} {:>10} {:>9}  vs in-process",
        "workers", "jobs/sec", "speedup"
    );
    for &workers in &pool_sizes {
        let (throughput, results) = measure(cfg, workers, clients);
        if workers == 1 {
            baseline = throughput;
        }
        let same = results == expected;
        identical &= same;
        let speedup = throughput / baseline;
        if workers == 4 {
            quad_speedup = Some(speedup);
        }
        println!(
            "{workers:>8} {throughput:>10.2} {speedup:>8.2}x  {}",
            if same { "bit-identical" } else { "DIVERGED" }
        );
        cases.push(Case {
            workers,
            jobs_per_sec: throughput,
            speedup,
            bit_identical: same,
        });
    }
    println!();
    if !identical {
        println!("FAIL: loopback results diverged from the in-process service");
        return false;
    }
    match quad_speedup {
        Some(speedup) if parallelism >= 4 => {
            let required = if cfg.quick { 1.5 } else { 2.0 };
            let ok = speedup >= required;
            println!(
                "4-worker loopback speedup {speedup:.2}x vs required {required:.2}x -> {}",
                if ok { "ok" } else { "FAIL" }
            );
            ok
        }
        Some(speedup) => {
            println!(
                "4-worker loopback speedup {speedup:.2}x (host has {parallelism} threads; \
                 scaling gate skipped — nothing to scale onto)"
            );
            true
        }
        None => true,
    }
}

/// A request slow enough (full-device QFT, elevated trial budget) to keep
/// a single worker busy while faults are staged behind it.
fn slow_request(cfg: &Config) -> SubmitRequest {
    let n = topology(cfg).n_qubits();
    let mut wire = wire_options(cfg);
    wire.layout_trials = 6;
    wire.routing_trials = 8;
    SubmitRequest {
        label: format!("slow-qft-{n}"),
        qasm: to_qasm(&qft(n, false)),
        seed: SEED ^ 0x51_0e,
        lane: Lane::Batch,
        deadline_ms: None,
        options: wire,
        fault: None,
    }
}

/// Raw-socket submit: send and return the stream for manual response
/// reads (staging faults needs sub-conversation control the blocking
/// client deliberately doesn't expose).
fn raw_submit(addr: SocketAddr, submit: SubmitRequest) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    frame::write_frame(&mut stream, &Request::Submit(submit).encode()).expect("send");
    stream
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = frame::read_frame(stream, DEFAULT_MAX_PAYLOAD).expect("read frame");
    Response::decode(&payload).expect("decode response")
}

/// Occupy the single worker: submit the slow job and consume its Queued
/// and Running edges so the caller knows the pool is busy.
fn occupy_worker(addr: SocketAddr, cfg: &Config) -> TcpStream {
    let mut stream = raw_submit(addr, slow_request(cfg));
    match read_response(&mut stream) {
        Response::Queued { .. } => {}
        other => panic!("expected Queued, got {other:?}"),
    }
    match read_response(&mut stream) {
        Response::Running { .. } => {}
        other => panic!("expected Running, got {other:?}"),
    }
    stream
}

struct FaultVerdicts {
    garbage: bool,
    oversized: bool,
    busy: bool,
    deadline: bool,
    panic: bool,
}

fn fault_smoke(cfg: &Config) -> FaultVerdicts {
    use std::io::Write;
    println!("\n== serve_net — fault smoke (1 worker, 1 job/lane) ==\n");

    // Garbage bytes: a typed ProtocolError, not a hang or a crash.
    let garbage = {
        let server =
            NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let verdict = matches!(read_response(&mut stream), Response::ProtocolError { .. });
        server.shutdown();
        verdict
    };
    println!(
        "garbage bytes     -> typed ProtocolError : {}",
        if garbage { "ok" } else { "FAIL" }
    );

    // Oversized frame: refused from the 14-byte header alone.
    let oversized = {
        let config = ServeConfig::new(1).with_max_payload(1024);
        let server = NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let frame = frame::encode_frame(&vec![0u8; 4096]);
        stream.write_all(&frame).unwrap();
        let verdict = matches!(read_response(&mut stream), Response::ProtocolError { .. });
        server.shutdown();
        verdict
    };
    println!(
        "oversized frame   -> refused from header : {}",
        if oversized { "ok" } else { "FAIL" }
    );

    // Full per-client budget: a typed Busy answer for the flooder,
    // immediately and without blocking — while a different client's
    // budget is untouched and its submit is still admitted.
    let busy = {
        let config = ServeConfig::new(1).with_queue_capacity(1);
        let server = NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &config).unwrap();
        let addr = server.local_addr();
        let _slow = occupy_worker(addr, cfg);
        let mut filler = raw_submit(addr, slow_request(cfg));
        let filler_queued = matches!(read_response(&mut filler), Response::Queued { .. });
        // Admission is bounded per client: the same connection's next
        // submit overflows its budget (pipelined on the same socket).
        let mut probe = slow_request(cfg);
        probe.label = "busy-probe".to_owned();
        frame::write_frame(&mut filler, &Request::Submit(probe).encode()).expect("send");
        let bounced = loop {
            match read_response(&mut filler) {
                Response::Busy {
                    lane: Lane::Batch,
                    capacity: 1,
                } => break true,
                Response::Running { .. } => continue,
                other => {
                    println!("  expected Busy on the flooding connection, got {other:?}");
                    break false;
                }
            }
        };
        let mut other = raw_submit(addr, slow_request(cfg));
        let other_admitted = matches!(read_response(&mut other), Response::Queued { .. });
        let verdict = filler_queued && bounced && other_admitted;
        server.shutdown();
        verdict
    };
    println!(
        "full client budget -> typed Busy, fair   : {}",
        if busy { "ok" } else { "FAIL" }
    );

    // Expired deadline: enforced at dequeue, reported as a typed failure.
    let deadline = {
        let server =
            NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &ServeConfig::new(1)).unwrap();
        let addr = server.local_addr();
        let _slow = occupy_worker(addr, cfg);
        let mut client = NetClient::connect(addr).unwrap();
        let mut submit = slow_request(cfg);
        submit.label = "doomed".to_owned();
        submit.deadline_ms = Some(1);
        let verdict = matches!(
            client.submit(submit),
            Err(ClientError::Failed {
                kind: FailureKind::DeadlineExceeded,
                ..
            })
        );
        server.shutdown();
        verdict
    };
    println!(
        "expired deadline  -> typed failure       : {}",
        if deadline { "ok" } else { "FAIL" }
    );

    // Injected worker panic: exactly its own job fails, typed; the same
    // connection (and the respawned pool) keeps serving.
    let panic = {
        let config = ServeConfig::new(1).with_chaos();
        let server = NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &config).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let mut boom = requests(cfg).remove(0);
        boom.label = "boom".to_owned();
        boom.fault = Some(InjectedFault::Panic);
        let failed_typed = matches!(
            client.submit(boom),
            Err(ClientError::Failed {
                kind: FailureKind::WorkerPanicked,
                ..
            })
        );
        let mut survivor = requests(cfg).remove(1);
        survivor.label = "after-boom".to_owned();
        let survived = client.submit(survivor).is_ok();
        server.shutdown();
        failed_typed && survived
    };
    println!(
        "worker panic      -> typed, job-isolated : {}",
        if panic { "ok" } else { "FAIL" }
    );

    FaultVerdicts {
        garbage,
        oversized,
        busy,
        deadline,
        panic,
    }
}

/// One chaos-seed verdict for the JSON report.
struct ChaosCase {
    seed: u64,
    frames: u64,
    faults: u64,
    retries: u64,
    terminal: bool,
    bit_identical: bool,
}

/// Push a slice of the workload through a fault-injecting transport under
/// several plan seeds. The gate: every job reaches a terminal state (no
/// hangs, no unanswered submissions) and every result is bit-identical to
/// the fault-free reference.
fn chaos_experiment(cfg: &Config) -> (Vec<ChaosCase>, bool) {
    println!("\n== serve_net — chaos transport smoke (2 workers, retrying client) ==\n");
    let server = NetServer::bind(fresh_target(cfg), "127.0.0.1:0", &ServeConfig::new(2))
        .expect("loopback bind");
    let addr = server.local_addr();
    let batch: Vec<SubmitRequest> = requests(cfg).into_iter().take(6).collect();

    // Fault-free reference over the same slice, in-process.
    let service = TranspileService::new(fresh_target(cfg), 1);
    let jobs: Vec<TranspileJob> = batch
        .iter()
        .map(|r| {
            let circuit = mirage_circuit::qasm::from_qasm(&r.qasm).expect("workload parses");
            TranspileJob::new(r.label.clone(), circuit, r.options.to_options(r.seed))
        })
        .collect();
    let expected: Results = service
        .run_batch(jobs)
        .expect("service is live")
        .into_iter()
        .map(|r| {
            let out = r.outcome.expect("benchmark jobs succeed");
            (r.label, (out.circuit.fingerprint(), to_qasm(&out.circuit)))
        })
        .collect();
    service.shutdown();

    println!(
        "{:>12} {:>7} {:>7} {:>8}  verdict",
        "seed", "frames", "faults", "retries"
    );
    let mut cases = Vec::new();
    let mut all_ok = true;
    for seed in [0xC4A0_5EEDu64, 7, 1234] {
        let plan = ChaosPlan::new(ChaosConfig::new(seed));
        let connector =
            ChaosConnector::new(TcpConnector::new(addr).expect("resolve"), plan.clone());
        let policy = RetryPolicy::new(12).with_seed(seed);
        let mut client =
            NetClient::with_connector(Box::new(connector), policy).expect("chaos connect");
        let mut terminal = true;
        let mut identical = true;
        for request in &batch {
            let label = request.label.clone();
            match client.submit(request.clone()) {
                Ok(outcome) => {
                    let (fingerprint, qasm) = &expected[&label];
                    identical &=
                        outcome.done.fingerprint == *fingerprint && outcome.done.qasm == *qasm;
                }
                Err(e) => {
                    // A typed error is still terminal, but the retrying
                    // client is expected to push through a bounded plan.
                    terminal = false;
                    println!("  job {label} did not complete under seed {seed}: {e}");
                }
            }
        }
        let stats = plan.stats();
        let ok = terminal && identical;
        all_ok &= ok;
        println!(
            "{:>12} {:>7} {:>7} {:>8}  {}",
            seed,
            stats.frames,
            stats.faults(),
            client.retries(),
            if ok { "bit-identical" } else { "FAIL" }
        );
        cases.push(ChaosCase {
            seed,
            frames: stats.frames,
            faults: stats.faults(),
            retries: client.retries(),
            terminal,
            bit_identical: identical,
        });
    }
    server.shutdown();
    (cases, all_ok)
}

fn verdict_str(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "FAIL"
    }
}

fn write_json(
    path: &str,
    cfg: &Config,
    cases: &[Case],
    faults: &FaultVerdicts,
    chaos: Option<&[ChaosCase]>,
) -> std::io::Result<()> {
    let topo = topology(cfg);
    let mode = if cfg.quick { "quick" } else { "full" };
    let jobs = requests(cfg).len();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serve_net\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"n_qubits\": {}, \"router\": \"mirage\", \"seed\": {SEED}, \
         \"jobs\": {jobs}, \"clients\": {}}},\n",
        topo.n_qubits(),
        4.min(jobs)
    ));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"jobs_per_sec\": {:.2}, \"speedup\": {:.2}, \
             \"bit_identical\": {}}}{}",
            c.workers,
            c.jobs_per_sec,
            c.speedup,
            c.bit_identical,
            if i + 1 == cases.len() { "\n" } else { ",\n" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"faults\": {{\"garbage\": \"{}\", \"oversized\": \"{}\", \"busy\": \"{}\", \
         \"deadline\": \"{}\", \"panic\": \"{}\"}},\n",
        verdict_str(faults.garbage),
        verdict_str(faults.oversized),
        verdict_str(faults.busy),
        verdict_str(faults.deadline),
        verdict_str(faults.panic)
    ));
    match chaos {
        None => s.push_str("  \"chaos\": \"skipped\"\n"),
        Some(cases) => {
            s.push_str("  \"chaos\": [\n");
            for (i, c) in cases.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"seed\": {}, \"frames\": {}, \"faults\": {}, \"retries\": {}, \
                     \"terminal\": {}, \"bit_identical\": {}}}{}",
                    c.seed,
                    c.frames,
                    c.faults,
                    c.retries,
                    c.terminal,
                    c.bit_identical,
                    if i + 1 == cases.len() { "\n" } else { ",\n" }
                ));
            }
            s.push_str("  ]\n");
        }
    }
    s.push_str("}\n");
    std::fs::write(path, s)
}

fn main() {
    let mut cfg = Config {
        quick: false,
        max_workers: 4,
    };
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut run_chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--chaos" => run_chaos = true,
            "--workers" => {
                cfg.max_workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w >= 1)
                    .expect("--workers needs an integer >= 1");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    // Build the shared coverage set once, outside every timed region.
    let _ = fresh_target(&cfg).gate_cost(&mirage_weyl::coords::WeylCoord::CNOT);

    let mut cases = Vec::new();
    let scaling_ok = scaling_experiment(&cfg, &mut cases);
    let faults = fault_smoke(&cfg);
    let faults_ok =
        faults.garbage && faults.oversized && faults.busy && faults.deadline && faults.panic;
    let (chaos_cases, chaos_ok) = if run_chaos {
        let (cases, ok) = chaos_experiment(&cfg);
        (Some(cases), ok)
    } else {
        (None, true)
    };

    match write_json(&out_path, &cfg, &cases, &faults, chaos_cases.as_deref()) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            println!("\nFAIL: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    if !(scaling_ok && faults_ok && chaos_ok) {
        std::process::exit(1);
    }
}
