//! Ablation harness: sweep the mirror-decision weight λ (how strongly the
//! lookahead distance term counts against the decomposition-cost delta) and
//! the front-term normalization, printing depth/SWAPs/acceptance for
//! representative circuits. Used to pick the shipped default (DESIGN.md
//! ablation notes).

use mirage_bench::eval_options;
use mirage_circuit::generators::{portfolio_qaoa, qft, seca, swap_test};
use mirage_core::{transpile, RouterKind, Target};
use mirage_topology::CouplingMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "square".into());
    let target = Target::sqrt_iswap(if which == "heavy-hex" {
        CouplingMap::heavy_hex(5)
    } else {
        CouplingMap::grid(6, 6)
    });
    let circuits = vec![
        ("qft_n18", qft(18, false)),
        ("seca_n11", seca()),
        ("portfolioqaoa_n16", portfolio_qaoa(16, 3, 99)),
        ("swap_test_n25", swap_test(25)),
    ];
    println!(
        "{:<20} {:>7} {:>9} {:>7} {:>8}",
        "circuit", "lambda", "depth", "swaps", "mirror%"
    );
    for (name, circ) in &circuits {
        // Baseline.
        let mut opts = eval_options(RouterKind::Sabre, 0x7E57);
        opts.use_vf2 = false;
        let base = transpile(circ, &target, &opts).unwrap();
        println!(
            "{:<20} {:>7} {:>9.1} {:>7} {:>8}",
            name, "sabre", base.metrics.depth_estimate, base.metrics.swaps_inserted, "-"
        );
        for lambda in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
            let mut opts = eval_options(RouterKind::Mirage, 0x7E57);
            opts.use_vf2 = false;
            opts.trials.mirror_lambda = Some(lambda);
            let out = transpile(circ, &target, &opts).unwrap();
            println!(
                "{:<20} {:>7.1} {:>9.1} {:>7} {:>7.1}%",
                name,
                lambda,
                out.metrics.depth_estimate,
                out.metrics.swaps_inserted,
                100.0 * out.metrics.mirror_rate
            );
        }
        println!();
    }
}
