//! Micro-benchmark for the Weyl-coordinate kernels (the hot path the
//! paper profiles in §VI-C: unitary→coordinate conversion).
//!
//! Run with `cargo bench --bench coordinates`.

use mirage_bench::timing::bench;
use mirage_gates::haar_2q;
use mirage_math::Rng;
use mirage_weyl::coords::coords_of;
use mirage_weyl::kak::kak_decompose;
use mirage_weyl::mirror::mirror_coord;
use std::hint::black_box;

fn main() {
    let mut rng = Rng::new(0xC003D5);
    let gates: Vec<_> = (0..64).map(|_| haar_2q(&mut rng)).collect();

    let mut i = 0;
    bench("weyl/coords_of_haar", || {
        i = (i + 1) % gates.len();
        coords_of(black_box(&gates[i]))
    });

    let mut j = 0;
    bench("weyl/kak_decompose_haar", || {
        j = (j + 1) % gates.len();
        kak_decompose(black_box(&gates[j])).expect("unitary input")
    });

    let w = coords_of(&gates[0]);
    bench("weyl/mirror_eq1", || mirror_coord(black_box(&w)));
}
