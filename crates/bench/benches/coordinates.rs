//! Criterion benchmark for the Weyl-coordinate kernels (the hot path the
//! paper profiles in §VI-C: unitary→coordinate conversion).

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_gates::haar_2q;
use mirage_math::Rng;
use mirage_weyl::coords::coords_of;
use mirage_weyl::kak::kak_decompose;
use mirage_weyl::mirror::mirror_coord;
use std::hint::black_box;

fn bench_coords(c: &mut Criterion) {
    let mut rng = Rng::new(0xC003D5);
    let gates: Vec<_> = (0..64).map(|_| haar_2q(&mut rng)).collect();

    c.bench_function("weyl/coords_of_haar", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % gates.len();
            coords_of(black_box(&gates[i]))
        })
    });

    c.bench_function("weyl/kak_decompose_haar", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % gates.len();
            kak_decompose(black_box(&gates[i])).expect("unitary input")
        })
    });

    let w = coords_of(&gates[0]);
    c.bench_function("weyl/mirror_eq1", |b| b.iter(|| mirror_coord(black_box(&w))));
}

criterion_group!(benches, bench_coords);
criterion_main!(benches);
