//! Micro-benchmark for the calibration layer: success-metric scoring and
//! calibrated routing must stay cheap relative to uncalibrated routing,
//! since every trial of a `Metric::EstimatedSuccess` run re-scores its
//! candidate.
//!
//! Run with `cargo bench --bench calibration`.

use mirage_bench::timing::bench;
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::qft;
use mirage_circuit::Dag;
use mirage_core::calibration::Calibration;
use mirage_core::layout::Layout;
use mirage_core::router::{node_coords, route, Aggression, RouterConfig};
use mirage_core::Target;
use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::hint::black_box;

fn main() {
    let topo = CouplingMap::line(12);
    let uniform = Target::sqrt_iswap(topo.clone());
    let calibrated = Target::sqrt_iswap(topo.clone())
        .with_calibration(Calibration::synthetic(&topo, &mut Rng::new(0xBE)))
        .expect("synthetic calibration covers the topology");

    let circ = consolidate(&qft(12, false));
    let dag = Dag::from_circuit(&circ);
    let coords = node_coords(&dag);
    let config = RouterConfig {
        aggression: Some(Aggression::A2),
        ..RouterConfig::default()
    };

    // Warm both cost caches so the comparison isolates the per-edge work.
    let warm = |target: &Target, name: &str| {
        let mut rng = Rng::new(1);
        let routed = route(
            &dag,
            &coords,
            target,
            Layout::trivial(circ.n_qubits, target.n_qubits()),
            &config,
            &mut rng,
        );
        bench(&format!("route/mirage-a2/{name}"), || {
            let mut rng = Rng::new(2);
            route(
                &dag,
                &coords,
                black_box(target),
                Layout::trivial(circ.n_qubits, target.n_qubits()),
                &config,
                &mut rng,
            )
        });
        bench(&format!("score/depth/{name}"), || {
            target.depth_estimate(black_box(&routed.circuit))
        });
        bench(&format!("score/log-success/{name}"), || {
            routed.log_success(black_box(target))
        });
        routed
    };
    let _ = warm(&uniform, "uniform");
    let routed = warm(&calibrated, "calibrated");

    // Text round-trip throughput (CLI load path).
    let cal = Calibration::synthetic(&CouplingMap::heavy_hex(5), &mut Rng::new(3));
    bench("calibration/to-text/heavy-hex-5", || cal.to_text());
    let text = cal.to_text();
    bench("calibration/from-text/heavy-hex-5", || {
        Calibration::from_text(black_box(&text)).expect("round-trip parses")
    });

    eprintln!(
        "sanity: calibrated qft-12 success {:.4}",
        routed.estimated_success(&calibrated)
    );
}
