//! Criterion benchmark for routing throughput: SABRE vs MIRAGE single
//! trials on representative circuits (supports the Fig. 13b runtime
//! discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::{qft, two_local_full};
use mirage_circuit::Dag;
use mirage_core::layout::Layout;
use mirage_core::router::{node_coords, route, Aggression, RouterConfig};
use mirage_coverage::cache::CostCache;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::hint::black_box;

fn build_set() -> CoverageSet {
    CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: false,
            seed: 0x40073,
        },
    )
}

fn bench_routing(c: &mut Criterion) {
    let cov = build_set();
    let cases = vec![
        ("qft16/line", consolidate(&qft(16, false)), CouplingMap::line(16)),
        (
            "twolocal8/grid",
            consolidate(&two_local_full(8, 1, 5)),
            CouplingMap::grid(3, 3),
        ),
    ];
    for (name, circ, topo) in cases {
        let dag = Dag::from_circuit(&circ);
        let coords = node_coords(&dag);
        for (router, aggression) in [("sabre", None), ("mirage", Some(Aggression::A2))] {
            c.bench_function(&format!("route/{name}/{router}"), |b| {
                b.iter(|| {
                    let config = RouterConfig {
                        aggression,
                        ..RouterConfig::default()
                    };
                    let mut cache = CostCache::new(4096);
                    let mut rng = Rng::new(7);
                    route(
                        black_box(&dag),
                        &coords,
                        &topo,
                        Layout::trivial(circ.n_qubits, topo.n_qubits()),
                        &cov,
                        &mut cache,
                        &config,
                        &mut rng,
                    )
                })
            });
        }
    }
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
