//! Micro-benchmark for routing throughput: SABRE vs MIRAGE single trials
//! on representative circuits (supports the Fig. 13b runtime discussion),
//! plus the scratch-reuse comparison behind the allocation-free hot-path
//! rewrite (`routing_runtime` is the end-to-end gate; this is the per-call
//! view). The seed-era `legacy::route` rung is gone with the module — it
//! is a test-only fixture now.
//!
//! Run with `cargo bench --bench routing`.

use mirage_bench::timing::bench;
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::{qft, two_local_full};
use mirage_circuit::Dag;
use mirage_core::layout::Layout;
use mirage_core::router::{
    node_coords, route, route_with_scratch, Aggression, RouterConfig, RouterScratch,
};
use mirage_core::Target;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::hint::black_box;
use std::sync::Arc;

fn build_set() -> Arc<CoverageSet> {
    Arc::new(CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: false,
            seed: 0x40073,
        },
    ))
}

fn main() {
    let cov = build_set();
    let cases = vec![
        (
            "qft16/line",
            consolidate(&qft(16, false)),
            CouplingMap::line(16),
        ),
        (
            "twolocal8/grid",
            consolidate(&two_local_full(8, 1, 5)),
            CouplingMap::grid(3, 3),
        ),
    ];
    for (name, circ, topo) in cases {
        let target = Target::with_coverage(topo, cov.clone());
        let dag = Dag::from_circuit(&circ);
        let coords = node_coords(&dag);
        for (router, aggression) in [("sabre", None), ("mirage", Some(Aggression::A2))] {
            bench(&format!("route/{name}/{router}"), || {
                let config = RouterConfig {
                    aggression,
                    ..RouterConfig::default()
                };
                let mut rng = Rng::new(7);
                route(
                    black_box(&dag),
                    &coords,
                    &target,
                    Layout::trivial(circ.n_qubits, target.n_qubits()),
                    &config,
                    &mut rng,
                )
            });
        }
        // The hot-path ladder on the MIRAGE configuration: optimized with
        // a fresh scratch per call vs one reused scratch (the TrialEngine /
        // serve steady state).
        let config = RouterConfig {
            aggression: Some(Aggression::A2),
            ..RouterConfig::default()
        };
        let mut scratch = RouterScratch::new();
        bench(&format!("route/{name}/mirage-scratch-reuse"), || {
            let mut rng = Rng::new(7);
            route_with_scratch(
                black_box(&dag),
                &coords,
                &target,
                Layout::trivial(circ.n_qubits, target.n_qubits()),
                &config,
                &mut rng,
                &mut scratch,
            )
        });
    }
}
