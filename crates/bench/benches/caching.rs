//! Criterion micro-benchmark for the Fig. 13a caching design: coordinate
//! cost lookups with and without the LRU cache, and block consolidation
//! with exterior-1Q stripping.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::qft;
use mirage_coverage::cache::CostCache;
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_weyl::coords::{coords_of, WeylCoord};
use std::hint::black_box;

fn build_set() -> CoverageSet {
    CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: false,
            seed: 0xCAC4E,
        },
    )
}

fn bench_cost_lookup(c: &mut Criterion) {
    let set = build_set();
    let coords: Vec<WeylCoord> = consolidate(&qft(12, false))
        .instructions
        .iter()
        .filter(|i| i.gate.is_two_qubit())
        .map(|i| coords_of(&i.gate.matrix2()))
        .collect();

    c.bench_function("cost_lookup/uncached", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for w in &coords {
                total += set.cost_or_max(black_box(w));
            }
            total
        })
    });

    c.bench_function("cost_lookup/lru_cached", |b| {
        let mut cache = CostCache::new(4096);
        b.iter(|| {
            let mut total = 0.0;
            for w in &coords {
                total += cache.get_or_insert_with(black_box(w), || set.cost_or_max(w));
            }
            total
        })
    });
}

fn bench_consolidation(c: &mut Criterion) {
    let circ = qft(16, true);
    c.bench_function("consolidate/qft16", |b| {
        b.iter(|| consolidate(black_box(&circ)))
    });
}

fn bench_coords(c: &mut Criterion) {
    let u = mirage_gates::cns();
    c.bench_function("coords_of/cns", |b| b.iter(|| coords_of(black_box(&u))));
}

criterion_group!(benches, bench_cost_lookup, bench_consolidation, bench_coords);
criterion_main!(benches);
