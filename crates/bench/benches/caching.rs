//! Micro-benchmark for the Fig. 13a caching design: coordinate cost
//! lookups uncached, through the single-threaded LRU, and through the
//! sharded shared cache a `Target` carries; plus block consolidation with
//! exterior-1Q stripping.
//!
//! Run with `cargo bench --bench caching`.

use mirage_bench::timing::bench;
use mirage_circuit::consolidate::consolidate;
use mirage_circuit::generators::qft;
use mirage_coverage::cache::{CostCache, SharedCostCache};
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_weyl::coords::{coords_of, WeylCoord};
use std::hint::black_box;

fn build_set() -> CoverageSet {
    CoverageSet::build(
        BasisGate::iswap_root(2),
        &CoverageOptions {
            max_k: 3,
            samples_per_k: 1500,
            inflation: 0.012,
            mirrors: false,
            seed: 0xCAC4E,
        },
    )
}

fn main() {
    let set = build_set();
    let coords: Vec<WeylCoord> = consolidate(&qft(12, false))
        .instructions
        .iter()
        .filter(|i| i.gate.is_two_qubit())
        .map(|i| coords_of(&i.gate.matrix2()))
        .collect();

    bench("cost_lookup/uncached", || {
        let mut total = 0.0;
        for w in &coords {
            total += set.cost_or_max(black_box(w));
        }
        total
    });

    let mut cache = CostCache::new(4096);
    bench("cost_lookup/lru_cached", || {
        let mut total = 0.0;
        for w in &coords {
            total += cache.get_or_insert_with(black_box(w), || set.cost_or_max(w));
        }
        total
    });

    let shared = SharedCostCache::new(4096);
    bench("cost_lookup/shared_sharded", || {
        let mut total = 0.0;
        for w in &coords {
            total += shared.get_or_insert_with(black_box(w), || set.cost_or_max(w));
        }
        total
    });

    // Contention sweep: parallel routing trials hammer the same handful of
    // hot coordinate classes, so everything rides on how many threads can
    // hold a shard at once. One shard is the worst case (a single global
    // mutex); the default tracks available_parallelism.
    // At least two threads so single-core machines still measure lock
    // handoff rather than a solo fast path.
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
    for (label, shards) in [
        ("contention/1_shard", 1),
        (
            "contention/default_shards",
            SharedCostCache::default_shard_count(),
        ),
    ] {
        let cache = SharedCostCache::with_shards(4096, shards);
        // Warm the hot set once so the measurement is pure lock traffic.
        for w in &coords {
            cache.get_or_insert_with(w, || set.cost_or_max(w));
        }
        bench(&format!("{label}_x{threads}_threads"), || {
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        let mut total = 0.0;
                        for _ in 0..8 {
                            for w in &coords {
                                total +=
                                    cache.get_or_insert_with(black_box(w), || set.cost_or_max(w));
                            }
                        }
                        black_box(total)
                    });
                }
            });
        });
    }

    let circ = qft(16, true);
    bench("consolidate/qft16", || consolidate(black_box(&circ)));

    let u = mirage_gates::cns();
    bench("coords_of/cns", || coords_of(black_box(&u)));
}
