//! Logical→physical qubit mappings.

use mirage_math::Rng;

/// A bijective placement of `n_logical` circuit qubits onto `n_physical ≥
/// n_logical` device qubits. Internally both directions are tracked; when
/// `n_logical < n_physical`, the spare physical qubits carry virtual
/// logical indices `n_logical..n_physical` so SWAPs through unused qubits
/// stay well-defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    log_to_phys: Vec<usize>,
    phys_to_log: Vec<usize>,
    n_logical: usize,
}

impl Layout {
    /// The identity layout on `n_physical` qubits with `n_logical` real
    /// circuit qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_logical > n_physical`.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Layout {
        assert!(n_logical <= n_physical, "circuit larger than device");
        Layout {
            log_to_phys: (0..n_physical).collect(),
            phys_to_log: (0..n_physical).collect(),
            n_logical,
        }
    }

    /// A uniformly random layout.
    pub fn random(n_logical: usize, n_physical: usize, rng: &mut Rng) -> Layout {
        let mut l = Layout::trivial(n_logical, n_physical);
        rng.shuffle(&mut l.log_to_phys);
        for (log, &phys) in l.log_to_phys.iter().enumerate() {
            l.phys_to_log[phys] = log;
        }
        l
    }

    /// Build from an explicit logical→physical assignment for the real
    /// qubits; spare physical qubits get virtual logical indices.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is not injective or out of range.
    pub fn from_assignment(assignment: &[usize], n_physical: usize) -> Layout {
        let n_logical = assignment.len();
        assert!(n_logical <= n_physical);
        let mut l = Layout {
            log_to_phys: vec![usize::MAX; n_physical],
            phys_to_log: vec![usize::MAX; n_physical],
            n_logical,
        };
        for (log, &phys) in assignment.iter().enumerate() {
            assert!(phys < n_physical, "physical index out of range");
            assert_eq!(l.phys_to_log[phys], usize::MAX, "assignment not injective");
            l.log_to_phys[log] = phys;
            l.phys_to_log[phys] = log;
        }
        // Fill virtual logicals onto the free physical qubits.
        let mut next_virtual = n_logical;
        for phys in 0..n_physical {
            if l.phys_to_log[phys] == usize::MAX {
                l.phys_to_log[phys] = next_virtual;
                l.log_to_phys[next_virtual] = phys;
                next_virtual += 1;
            }
        }
        l
    }

    /// Physical location of a logical qubit.
    pub fn phys(&self, logical: usize) -> usize {
        self.log_to_phys[logical]
    }

    /// Logical qubit living at a physical location.
    pub fn log(&self, physical: usize) -> usize {
        self.phys_to_log[physical]
    }

    /// Number of real (circuit) logical qubits.
    pub fn n_logical(&self) -> usize {
        self.n_logical
    }

    /// Number of device qubits.
    pub fn n_physical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Exchange the logical occupants of two physical qubits (the effect of
    /// a SWAP gate or an accepted mirror).
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.phys_to_log[p1];
        let l2 = self.phys_to_log[p2];
        self.phys_to_log.swap(p1, p2);
        self.log_to_phys[l1] = p2;
        self.log_to_phys[l2] = p1;
    }

    /// The logical→physical assignment restricted to real qubits, as a
    /// borrowed view. Scoring paths that run once per routed candidate
    /// (`RoutedCircuit::log_success`, the VF2 tie-break) read this instead
    /// of paying [`Layout::assignment`]'s allocation.
    pub fn real_assignment(&self) -> &[usize] {
        &self.log_to_phys[..self.n_logical]
    }

    /// The logical→physical assignment restricted to real qubits (owned;
    /// see [`Layout::real_assignment`] for the zero-copy view).
    pub fn assignment(&self) -> Vec<usize> {
        self.real_assignment().to_vec()
    }

    /// True when the two internal maps are mutually inverse bijections
    /// over the full device register — the invariant every constructor
    /// and every [`LayoutStrategy`](crate::placement::LayoutStrategy)
    /// must uphold (the placement property tests check proposals with
    /// this).
    pub fn is_bijective(&self) -> bool {
        let n = self.n_physical();
        if self.phys_to_log.len() != n || self.n_logical > n {
            return false;
        }
        let mut seen = vec![false; n];
        for logical in 0..n {
            let p = self.log_to_phys[logical];
            if p >= n || seen[p] || self.phys_to_log[p] != logical {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    /// Full physical-side permutation `old→new` between two layouts of the
    /// same device: where does the occupant of `p` under `self` sit under
    /// `other`?
    pub fn permutation_to(&self, other: &Layout) -> Vec<usize> {
        (0..self.n_physical())
            .map(|p| other.phys(self.log(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_roundtrip() {
        let l = Layout::trivial(3, 5);
        for q in 0..5 {
            assert_eq!(l.phys(q), q);
            assert_eq!(l.log(q), q);
        }
        assert_eq!(l.n_logical(), 3);
    }

    #[test]
    fn swap_physical_updates_both_maps() {
        let mut l = Layout::trivial(4, 4);
        l.swap_physical(1, 3);
        assert_eq!(l.phys(1), 3);
        assert_eq!(l.phys(3), 1);
        assert_eq!(l.log(3), 1);
        assert_eq!(l.log(1), 3);
        l.swap_physical(1, 3);
        assert_eq!(l, Layout::trivial(4, 4));
    }

    #[test]
    fn random_is_bijective() {
        let mut rng = Rng::new(5);
        for _ in 0..20 {
            let l = Layout::random(6, 9, &mut rng);
            let mut seen = [false; 9];
            for log in 0..9 {
                let p = l.phys(log);
                assert!(!seen[p]);
                seen[p] = true;
                assert_eq!(l.log(p), log);
            }
            assert!(l.is_bijective());
        }
    }

    #[test]
    fn from_assignment_fills_virtuals() {
        let l = Layout::from_assignment(&[4, 0], 5);
        assert_eq!(l.phys(0), 4);
        assert_eq!(l.phys(1), 0);
        // Virtual logicals cover the rest bijectively.
        let mut phys_seen: Vec<usize> = (0..5).map(|p| l.log(p)).collect();
        phys_seen.sort_unstable();
        assert_eq!(phys_seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn from_assignment_rejects_duplicates() {
        let _ = Layout::from_assignment(&[1, 1], 3);
    }

    #[test]
    fn permutation_to_tracks_moves() {
        let a = Layout::trivial(3, 3);
        let mut b = a.clone();
        b.swap_physical(0, 2);
        let perm = a.permutation_to(&b);
        assert_eq!(perm, vec![2, 1, 0]);
    }
}
