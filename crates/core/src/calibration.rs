//! Device calibration data: per-edge two-qubit durations and error rates,
//! per-qubit single-qubit durations/errors, and readout errors.
//!
//! The paper's headline claim is that absorbing SWAPs into mirror gates
//! wins *on real hardware* — where every coupler has its own gate time and
//! fidelity. [`Calibration`] is the data model for that heterogeneity: one
//! [`EdgeCalibration`] per coupler and one [`QubitCalibration`] per qubit,
//! normalized so that [`Calibration::uniform`] reproduces the paper's
//! idealized device (free 1Q gates, nominal 2Q durations, zero error)
//! exactly.
//!
//! Conventions:
//!
//! * **Edge durations are scale factors.** Decomposition costs come out of
//!   the coverage set in normalized duration units (iSWAP = 1.0);
//!   [`EdgeCalibration::duration_factor`] multiplies that cost, so `1.0`
//!   means the nominal device and `10.0` a 10× slower coupler.
//! * **Edge errors are per basis-gate application.** A gate that needs
//!   `k` applications of the basis on an edge with error `e` succeeds with
//!   probability `(1 − e)^k` — a SWAP priced at 3 CNOTs (CNOT basis) or
//!   3 √iSWAPs pays 3 applications, a mirrored `SWAP·U` pays only `U`'s.
//! * **Qubit errors are per gate**, readout errors per measurement.
//!
//! A plain-text load/save format ([`Calibration::from_text`] /
//! [`Calibration::to_text`]) lets `mirage-cli` consume calibration files
//! via `--calibration <file>`; the format round-trips exactly.
//!
//! ```
//! use mirage_core::calibration::Calibration;
//! use mirage_topology::CouplingMap;
//!
//! let topo = CouplingMap::line(3);
//! let cal = Calibration::uniform(&topo);
//! let reparsed = Calibration::from_text(&cal.to_text()).unwrap();
//! assert_eq!(cal, reparsed);
//! ```

use mirage_math::Rng;
use mirage_topology::CouplingMap;
use std::collections::BTreeMap;

/// Calibration of one physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitCalibration {
    /// Duration charged per single-qubit gate (normalized units,
    /// iSWAP = 1.0). The paper treats 1Q gates as free (§IV-B): `0.0`.
    pub duration_1q: f64,
    /// Error probability per single-qubit gate.
    pub error_1q: f64,
    /// Error probability per measurement of this qubit.
    pub readout_error: f64,
}

impl Default for QubitCalibration {
    /// The paper's idealized qubit: free, error-less 1Q gates and perfect
    /// readout. [`crate::target::DurationModel::default`] derives its 1Q
    /// duration from this value — one source of truth.
    fn default() -> Self {
        QubitCalibration {
            duration_1q: 0.0,
            error_1q: 0.0,
            readout_error: 0.0,
        }
    }
}

/// Calibration of one coupler (undirected qubit pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCalibration {
    /// Scale factor on the decomposition duration of gates executed on this
    /// edge (`1.0` = the nominal device the coverage set is normalized to).
    pub duration_factor: f64,
    /// Error probability per basis-gate application on this edge.
    pub error_2q: f64,
}

impl Default for EdgeCalibration {
    /// The nominal coupler: unit duration scale, zero error.
    fn default() -> Self {
        EdgeCalibration {
            duration_factor: 1.0,
            error_2q: 0.0,
        }
    }
}

/// Errors from building, parsing, or validating calibration data.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// A queried or required edge has no calibration entry.
    MissingEdge {
        /// Lower endpoint.
        a: usize,
        /// Upper endpoint.
        b: usize,
    },
    /// A qubit index is outside the calibrated register.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// Calibrated register width.
        n_qubits: usize,
    },
    /// An edge entry names the same qubit twice.
    SelfLoop {
        /// The repeated qubit.
        qubit: usize,
    },
    /// The calibrated register is narrower than the device it is applied to.
    WidthMismatch {
        /// Calibrated register width.
        calibration: usize,
        /// Device width.
        device: usize,
    },
    /// A value is out of its physical range (negative duration, error
    /// outside `[0, 1)`).
    InvalidValue {
        /// Which field was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A text-format line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::MissingEdge { a, b } => {
                write!(f, "no calibration entry for edge ({a}, {b})")
            }
            CalibrationError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} outside calibrated register of {n_qubits}")
            }
            CalibrationError::SelfLoop { qubit } => {
                write!(f, "self-loop edge ({qubit}, {qubit})")
            }
            CalibrationError::WidthMismatch {
                calibration,
                device,
            } => write!(
                f,
                "calibration covers {calibration} qubits, device has {device}"
            ),
            CalibrationError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            CalibrationError::Parse { line, msg } => {
                write!(f, "calibration parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Per-edge and per-qubit calibration of a device.
///
/// See the [module docs](self) for units and conventions. Build with
/// [`Calibration::uniform`], [`Calibration::from_edges`], or
/// [`Calibration::synthetic`], or load a file with
/// [`Calibration::from_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    n_qubits: usize,
    qubits: Vec<QubitCalibration>,
    edges: BTreeMap<(usize, usize), EdgeCalibration>,
}

fn check_qubit(cal: &QubitCalibration) -> Result<(), CalibrationError> {
    let bad = |what, value| Err(CalibrationError::InvalidValue { what, value });
    if !cal.duration_1q.is_finite() || cal.duration_1q < 0.0 {
        return bad("1Q duration", cal.duration_1q);
    }
    if !(0.0..1.0).contains(&cal.error_1q) {
        return bad("1Q error", cal.error_1q);
    }
    if !(0.0..1.0).contains(&cal.readout_error) {
        return bad("readout error", cal.readout_error);
    }
    Ok(())
}

fn check_edge(cal: &EdgeCalibration) -> Result<(), CalibrationError> {
    let bad = |what, value| Err(CalibrationError::InvalidValue { what, value });
    if !cal.duration_factor.is_finite() || cal.duration_factor <= 0.0 {
        return bad("edge duration factor", cal.duration_factor);
    }
    if !(0.0..1.0).contains(&cal.error_2q) {
        return bad("edge error", cal.error_2q);
    }
    Ok(())
}

impl Calibration {
    /// The idealized uniform device over a topology: every coupler nominal
    /// ([`EdgeCalibration::default`]), every qubit ideal
    /// ([`QubitCalibration::default`]). Scoring against this calibration
    /// reproduces the uncalibrated metrics exactly.
    pub fn uniform(topo: &CouplingMap) -> Calibration {
        let edges = topo
            .edges()
            .iter()
            .map(|&e| (e, EdgeCalibration::default()))
            .collect();
        Calibration {
            n_qubits: topo.n_qubits(),
            qubits: vec![QubitCalibration::default(); topo.n_qubits()],
            edges,
        }
    }

    /// Build from an explicit edge list; qubits start ideal and can be
    /// refined with [`Calibration::set_qubit`].
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops, and out-of-range values.
    pub fn from_edges(
        n_qubits: usize,
        edges: &[(usize, usize, EdgeCalibration)],
    ) -> Result<Calibration, CalibrationError> {
        let mut cal = Calibration {
            n_qubits,
            qubits: vec![QubitCalibration::default(); n_qubits],
            edges: BTreeMap::new(),
        };
        for &(a, b, e) in edges {
            cal.set_edge(a, b, e)?;
        }
        Ok(cal)
    }

    /// A seeded-random heterogeneous calibration over a topology, for
    /// benchmarks and noise-model experiments: edge durations spread over
    /// `[0.85, 1.3]×` nominal, edge errors log-uniform in `[3·10⁻³, 2·10⁻²]`
    /// per application, qubit errors in `[10⁻⁴, 10⁻³]`, readout errors in
    /// `[5·10⁻³, 4·10⁻²]`. 1Q gates stay free (the paper's convention) so
    /// depth comparisons against uniform devices remain meaningful.
    pub fn synthetic(topo: &CouplingMap, rng: &mut Rng) -> Calibration {
        let mut cal = Calibration::uniform(topo);
        for q in 0..cal.n_qubits {
            cal.qubits[q] = QubitCalibration {
                duration_1q: 0.0,
                error_1q: rng.uniform_range(1e-4, 1e-3),
                readout_error: rng.uniform_range(5e-3, 4e-2),
            };
        }
        for entry in cal.edges.values_mut() {
            let log_err = rng.uniform_range((3e-3f64).ln(), (2e-2f64).ln());
            *entry = EdgeCalibration {
                duration_factor: rng.uniform_range(0.85, 1.3),
                error_2q: log_err.exp(),
            };
        }
        cal
    }

    /// A skew model for the calibration-sweep experiment: a base
    /// calibration with `base_error` per application on every edge, then a
    /// random `outlier_fraction` of edges degraded by `factor` (duration
    /// ×`factor`, error ×`factor`, capped below 50%). `factor = 1` is the
    /// uniform device.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range `base_error` / `factor` combinations through
    /// the same validation as every other construction path.
    pub fn skewed(
        topo: &CouplingMap,
        rng: &mut Rng,
        base_error: f64,
        outlier_fraction: f64,
        factor: f64,
    ) -> Result<Calibration, CalibrationError> {
        let mut cal = Calibration::uniform(topo);
        let mut keys: Vec<(usize, usize)> = cal.edges.keys().copied().collect();
        for &(a, b) in &keys {
            cal.set_edge(
                a,
                b,
                EdgeCalibration {
                    duration_factor: 1.0,
                    error_2q: base_error,
                },
            )?;
        }
        rng.shuffle(&mut keys);
        let n_outliers = ((keys.len() as f64) * outlier_fraction).round() as usize;
        for (a, b) in keys.into_iter().take(n_outliers) {
            cal.set_edge(
                a,
                b,
                EdgeCalibration {
                    duration_factor: factor,
                    error_2q: (base_error * factor).min(0.5),
                },
            )?;
        }
        Ok(cal)
    }

    /// A drifted copy of this calibration: every edge's duration factor
    /// and error rate, and every qubit's errors, are multiplied by an
    /// independent random factor in `[1/(1+magnitude), 1+magnitude]`
    /// (log-uniform, so drift is unbiased in log space), clamped to the
    /// physical ranges. This is the serving-layer scenario: the device a
    /// long-lived `mirage_serve::TranspileService` process targets is never
    /// the device that was calibrated at boot, and
    /// [`Target::swap_calibration`](crate::target::Target::swap_calibration)
    /// absorbs the refreshed snapshot without a rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude` is negative or non-finite.
    pub fn drifted(&self, rng: &mut Rng, magnitude: f64) -> Calibration {
        assert!(
            magnitude.is_finite() && magnitude >= 0.0,
            "drift magnitude must be a finite non-negative factor"
        );
        let span = (1.0 + magnitude).ln();
        let factor = |rng: &mut Rng| rng.uniform_range(-span, span).exp();
        let mut cal = self.clone();
        for q in cal.qubits.iter_mut() {
            // 1Q durations stay put (the paper's free-1Q convention);
            // errors drift multiplicatively and stay in [0, 1).
            q.error_1q = (q.error_1q * factor(rng)).min(0.999_999);
            q.readout_error = (q.readout_error * factor(rng)).min(0.999_999);
        }
        for e in cal.edges.values_mut() {
            e.duration_factor = (e.duration_factor * factor(rng)).max(1e-6);
            e.error_2q = (e.error_2q * factor(rng)).min(0.999_999);
        }
        cal
    }

    /// Calibrated register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// True when every qubit is ideal and every edge nominal — i.e. the
    /// device is indistinguishable from [`Calibration::uniform`] and no
    /// placement can be better than any other on noise grounds. The
    /// `NoiseAware` layout strategy uses this to fall back to random
    /// seeding instead of manufacturing spurious quality differences.
    pub fn is_uniform(&self) -> bool {
        self.qubits
            .iter()
            .all(|q| *q == QubitCalibration::default())
            && self
                .edges
                .values()
                .all(|e| *e == EdgeCalibration::default())
    }

    /// Iterate over `(edge, calibration)` entries in normalized order.
    pub fn edges(&self) -> impl Iterator<Item = (&(usize, usize), &EdgeCalibration)> {
        self.edges.iter()
    }

    /// Set one qubit's calibration.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices and out-of-range values.
    pub fn set_qubit(&mut self, q: usize, cal: QubitCalibration) -> Result<(), CalibrationError> {
        if q >= self.n_qubits {
            return Err(CalibrationError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        check_qubit(&cal)?;
        self.qubits[q] = cal;
        Ok(())
    }

    /// Set one edge's calibration (endpoint order is irrelevant).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops, and out-of-range values.
    pub fn set_edge(
        &mut self,
        a: usize,
        b: usize,
        cal: EdgeCalibration,
    ) -> Result<(), CalibrationError> {
        let hi = a.max(b);
        if hi >= self.n_qubits {
            return Err(CalibrationError::QubitOutOfRange {
                qubit: hi,
                n_qubits: self.n_qubits,
            });
        }
        if a == b {
            return Err(CalibrationError::SelfLoop { qubit: a });
        }
        check_edge(&cal)?;
        self.edges.insert((a.min(b), a.max(b)), cal);
        Ok(())
    }

    /// One qubit's calibration.
    ///
    /// # Errors
    ///
    /// [`CalibrationError::QubitOutOfRange`] when `q` is outside the
    /// calibrated register.
    pub fn qubit(&self, q: usize) -> Result<QubitCalibration, CalibrationError> {
        self.qubits
            .get(q)
            .copied()
            .ok_or(CalibrationError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            })
    }

    /// One edge's calibration (endpoint order is irrelevant).
    ///
    /// # Errors
    ///
    /// [`CalibrationError::MissingEdge`] when the pair has no entry — e.g.
    /// a coupler the calibration file forgot.
    pub fn edge(&self, a: usize, b: usize) -> Result<EdgeCalibration, CalibrationError> {
        let key = (a.min(b), a.max(b));
        self.edges
            .get(&key)
            .copied()
            .ok_or(CalibrationError::MissingEdge { a: key.0, b: key.1 })
    }

    /// Qubit calibration with an ideal-qubit fallback for indices outside
    /// the register (scoring stays total on any circuit).
    pub fn qubit_or_default(&self, q: usize) -> QubitCalibration {
        self.qubits.get(q).copied().unwrap_or_default()
    }

    /// Edge calibration with a nominal fallback for uncalibrated pairs
    /// (only reachable when scoring circuits that were never placed on the
    /// device — routed circuits touch calibrated couplers exclusively once
    /// the calibration passes [`Calibration::validate_for`]).
    pub fn edge_or_nominal(&self, a: usize, b: usize) -> EdgeCalibration {
        self.edges
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or_default()
    }

    /// Check that this calibration fully covers a device: the register is
    /// at least as wide and **every** coupler has an entry.
    ///
    /// # Errors
    ///
    /// [`CalibrationError::WidthMismatch`] or
    /// [`CalibrationError::MissingEdge`] for the first uncovered coupler.
    pub fn validate_for(&self, topo: &CouplingMap) -> Result<(), CalibrationError> {
        if self.n_qubits < topo.n_qubits() {
            return Err(CalibrationError::WidthMismatch {
                calibration: self.n_qubits,
                device: topo.n_qubits(),
            });
        }
        for &(a, b) in topo.edges() {
            if !self.edges.contains_key(&(a, b)) {
                return Err(CalibrationError::MissingEdge { a, b });
            }
        }
        Ok(())
    }

    /// Serialize to the plain-text format (see [`Calibration::from_text`]).
    /// Floats are written in shortest round-trip form, so
    /// `from_text(to_text())` is the identity.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# mirage calibration v1\n");
        out.push_str(&format!("qubits {}\n", self.n_qubits));
        for (q, cal) in self.qubits.iter().enumerate() {
            out.push_str(&format!(
                "qubit {q} dur {} err {} ro {}\n",
                cal.duration_1q, cal.error_1q, cal.readout_error
            ));
        }
        for (&(a, b), cal) in &self.edges {
            out.push_str(&format!(
                "edge {a} {b} dur {} err {}\n",
                cal.duration_factor, cal.error_2q
            ));
        }
        out
    }

    /// Parse the plain-text calibration format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// qubits 4
    /// qubit 0 dur 0 err 0.001 ro 0.02
    /// edge 0 1 dur 1.25 err 0.008
    /// ```
    ///
    /// The `qubits <n>` header must come first; `qubit` lines are optional
    /// (unlisted qubits stay ideal), `edge` lines define the couplers.
    ///
    /// # Errors
    ///
    /// [`CalibrationError::Parse`] with the offending 1-based line number,
    /// or a value/range error from the setters.
    pub fn from_text(text: &str) -> Result<Calibration, CalibrationError> {
        let mut cal: Option<Calibration> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let parse_err = |msg: String| CalibrationError::Parse { line: line_no, msg };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let usize_at = |i: usize| -> Result<usize, CalibrationError> {
                tokens
                    .get(i)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(format!("expected an integer in '{line}'")))
            };
            let f64_after = |key: &str| -> Result<f64, CalibrationError> {
                let pos = tokens
                    .iter()
                    .position(|&t| t == key)
                    .ok_or_else(|| parse_err(format!("missing '{key}' in '{line}'")))?;
                tokens
                    .get(pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(format!("bad value for '{key}' in '{line}'")))
            };
            match tokens[0] {
                "qubits" => {
                    if cal.is_some() {
                        return Err(parse_err("duplicate 'qubits' header".into()));
                    }
                    cal = Some(Calibration {
                        n_qubits: usize_at(1)?,
                        qubits: vec![QubitCalibration::default(); usize_at(1)?],
                        edges: BTreeMap::new(),
                    });
                }
                "qubit" => {
                    let cal = cal
                        .as_mut()
                        .ok_or_else(|| parse_err("'qubit' before 'qubits' header".into()))?;
                    cal.set_qubit(
                        usize_at(1)?,
                        QubitCalibration {
                            duration_1q: f64_after("dur")?,
                            error_1q: f64_after("err")?,
                            readout_error: f64_after("ro")?,
                        },
                    )
                    // Re-wrap range/value rejections with the file location.
                    .map_err(|e| parse_err(e.to_string()))?;
                }
                "edge" => {
                    let cal = cal
                        .as_mut()
                        .ok_or_else(|| parse_err("'edge' before 'qubits' header".into()))?;
                    cal.set_edge(
                        usize_at(1)?,
                        usize_at(2)?,
                        EdgeCalibration {
                            duration_factor: f64_after("dur")?,
                            error_2q: f64_after("err")?,
                        },
                    )
                    .map_err(|e| parse_err(e.to_string()))?;
                }
                other => return Err(parse_err(format!("unknown record '{other}'"))),
            }
        }
        cal.ok_or(CalibrationError::Parse {
            line: 0,
            msg: "empty calibration (no 'qubits' header)".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_every_edge_with_nominal_values() {
        let topo = CouplingMap::grid(3, 3);
        let cal = Calibration::uniform(&topo);
        assert_eq!(cal.n_qubits(), 9);
        cal.validate_for(&topo).unwrap();
        for &(a, b) in topo.edges() {
            let e = cal.edge(a, b).unwrap();
            assert_eq!(e, EdgeCalibration::default());
        }
        assert_eq!(cal.qubit(0).unwrap(), QubitCalibration::default());
    }

    #[test]
    fn missing_edge_errors_cleanly() {
        let topo = CouplingMap::line(4);
        // Leave edge (1, 2) out of the calibration.
        let cal = Calibration::from_edges(
            4,
            &[
                (0, 1, EdgeCalibration::default()),
                (2, 3, EdgeCalibration::default()),
            ],
        )
        .unwrap();
        assert_eq!(
            cal.edge(1, 2),
            Err(CalibrationError::MissingEdge { a: 1, b: 2 })
        );
        assert_eq!(
            cal.validate_for(&topo),
            Err(CalibrationError::MissingEdge { a: 1, b: 2 })
        );
        // The error formats usefully.
        let msg = cal.validate_for(&topo).unwrap_err().to_string();
        assert!(msg.contains("(1, 2)"), "{msg}");
    }

    #[test]
    fn narrow_calibration_rejected() {
        let topo = CouplingMap::line(5);
        let cal = Calibration::uniform(&CouplingMap::line(3));
        assert!(matches!(
            cal.validate_for(&topo),
            Err(CalibrationError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn edge_lookup_is_order_insensitive() {
        let mut cal = Calibration::uniform(&CouplingMap::line(3));
        cal.set_edge(
            2,
            1,
            EdgeCalibration {
                duration_factor: 2.5,
                error_2q: 0.01,
            },
        )
        .unwrap();
        assert_eq!(cal.edge(1, 2).unwrap().duration_factor, 2.5);
        assert_eq!(cal.edge(2, 1).unwrap().duration_factor, 2.5);
    }

    #[test]
    fn value_ranges_enforced() {
        let mut cal = Calibration::uniform(&CouplingMap::line(3));
        assert!(matches!(
            cal.set_edge(
                0,
                1,
                EdgeCalibration {
                    duration_factor: 0.0,
                    error_2q: 0.0
                }
            ),
            Err(CalibrationError::InvalidValue { .. })
        ));
        assert!(matches!(
            cal.set_edge(
                0,
                1,
                EdgeCalibration {
                    duration_factor: 1.0,
                    error_2q: 1.0
                }
            ),
            Err(CalibrationError::InvalidValue { .. })
        ));
        assert!(matches!(
            cal.set_qubit(
                0,
                QubitCalibration {
                    duration_1q: -0.1,
                    error_1q: 0.0,
                    readout_error: 0.0
                }
            ),
            Err(CalibrationError::InvalidValue { .. })
        ));
        assert!(matches!(
            cal.set_qubit(9, QubitCalibration::default()),
            Err(CalibrationError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn is_uniform_detects_any_degradation() {
        let topo = CouplingMap::grid(3, 3);
        let mut cal = Calibration::uniform(&topo);
        assert!(cal.is_uniform());
        cal.set_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 1e-4,
            },
        )
        .unwrap();
        assert!(!cal.is_uniform());
        let mut cal2 = Calibration::uniform(&topo);
        cal2.set_qubit(
            4,
            QubitCalibration {
                duration_1q: 0.0,
                error_1q: 0.0,
                readout_error: 0.01,
            },
        )
        .unwrap();
        assert!(!cal2.is_uniform());
        assert!(!Calibration::synthetic(&topo, &mut Rng::new(3)).is_uniform());
    }

    #[test]
    fn text_format_round_trips() {
        let topo = CouplingMap::heavy_hex(3);
        let mut rng = Rng::new(0xCA1);
        let cal = Calibration::synthetic(&topo, &mut rng);
        let text = cal.to_text();
        let back = Calibration::from_text(&text).unwrap();
        assert_eq!(cal, back, "plain-text format must round-trip exactly");
    }

    #[test]
    fn from_text_parses_comments_and_defaults() {
        let text = "# device X\n\nqubits 3\nedge 0 1 dur 1.5 err 0.02\nedge 1 2 dur 1 err 0\n";
        let cal = Calibration::from_text(text).unwrap();
        assert_eq!(cal.n_qubits(), 3);
        // Unlisted qubits stay ideal.
        assert_eq!(cal.qubit(2).unwrap(), QubitCalibration::default());
        assert!((cal.edge(0, 1).unwrap().duration_factor - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_text_rejects_garbage() {
        for (text, needle) in [
            ("", "qubits"),
            ("edge 0 1 dur 1 err 0\n", "before 'qubits'"),
            ("qubits 3\nqubits 3\n", "duplicate"),
            ("qubits 3\nwibble 1\n", "unknown record"),
            ("qubits 3\nedge 0 1 dur x err 0\n", "bad value"),
            ("qubits 3\nedge 0 0 dur 1 err 0\n", "self-loop"),
        ] {
            let err = Calibration::from_text(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} gave {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn synthetic_is_seed_deterministic_and_valid() {
        let topo = CouplingMap::grid(3, 3);
        let a = Calibration::synthetic(&topo, &mut Rng::new(7));
        let b = Calibration::synthetic(&topo, &mut Rng::new(7));
        let c = Calibration::synthetic(&topo, &mut Rng::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.validate_for(&topo).unwrap();
        for (_, e) in a.edges() {
            assert!(e.duration_factor >= 0.85 && e.duration_factor <= 1.3);
            assert!(e.error_2q > 0.0 && e.error_2q < 1.0);
        }
    }

    #[test]
    fn drifted_stays_valid_and_bounded() {
        let topo = CouplingMap::grid(3, 3);
        let base = Calibration::synthetic(&topo, &mut Rng::new(0xD1));
        let drifted = base.drifted(&mut Rng::new(0xD2), 0.3);
        drifted.validate_for(&topo).unwrap();
        assert_ne!(base, drifted, "nonzero drift must change something");
        for ((k, e0), (k1, e1)) in base.edges().zip(drifted.edges()) {
            assert_eq!(k, k1, "drift never adds or drops couplers");
            let ratio = e1.duration_factor / e0.duration_factor;
            assert!((1.0 / 1.3..=1.3).contains(&ratio), "ratio {ratio}");
            assert!(e1.error_2q > 0.0 && e1.error_2q < 1.0);
        }
        // Zero magnitude is the identity.
        assert_eq!(base.drifted(&mut Rng::new(1), 0.0), base);
        // Seed-deterministic.
        assert_eq!(
            base.drifted(&mut Rng::new(7), 0.2),
            base.drifted(&mut Rng::new(7), 0.2)
        );
    }

    #[test]
    fn skewed_degrades_requested_fraction() {
        let topo = CouplingMap::grid(4, 4);
        let mut rng = Rng::new(11);
        let cal = Calibration::skewed(&topo, &mut rng, 5e-3, 0.25, 10.0).unwrap();
        let outliers = cal.edges().filter(|(_, e)| e.duration_factor > 1.0).count();
        let expected = ((topo.edges().len() as f64) * 0.25).round() as usize;
        assert_eq!(outliers, expected);
        for (_, e) in cal.edges() {
            assert!(e.error_2q <= 0.5);
        }
        // factor = 1 is the uniform-duration device with a base error.
        let flat = Calibration::skewed(&topo, &mut Rng::new(11), 5e-3, 0.25, 1.0).unwrap();
        assert!(flat.edges().all(|(_, e)| e.duration_factor == 1.0));
        // Same seed, different factors: the *same* edges are degraded, so a
        // skew sweep isolates magnitude from outlier placement.
        let a = Calibration::skewed(&topo, &mut Rng::new(11), 5e-3, 0.25, 10.0).unwrap();
        let b = Calibration::skewed(&topo, &mut Rng::new(11), 5e-3, 0.25, 3.0).unwrap();
        let outlier_set = |c: &Calibration| -> Vec<(usize, usize)> {
            c.edges()
                .filter(|(_, e)| e.duration_factor > 1.0)
                .map(|(k, _)| *k)
                .collect()
        };
        assert_eq!(outlier_set(&a), outlier_set(&b));
        // Out-of-range base errors are rejected, not silently stored.
        assert!(matches!(
            Calibration::skewed(&topo, &mut Rng::new(11), 1.5, 0.25, 1.0),
            Err(CalibrationError::InvalidValue { .. })
        ));
    }
}
