//! Initial placement: pluggable layout-seeding strategies.
//!
//! The paper's trial loop (§V) starts every layout trial from a uniformly
//! random placement and lets SABRE-style refinement plus post-selection do
//! the rest. That is one point in a design space this module makes
//! explicit: a [`LayoutStrategy`] proposes the *seed* layout of a trial,
//! and the [`TrialEngine`](crate::trials::TrialEngine) spreads its layout
//! budget across strategies via [`TrialOptions::strategy_mix`] — the same
//! shape as the aggression mix of §IV-C.
//!
//! Strategies:
//!
//! * [`Random`] — the paper's uniform seeding ([`Layout::random`]).
//! * [`DegreeMatched`] — high-interaction logical qubits onto high-degree
//!   physical qubits, packing interaction partners close together.
//! * [`NoiseAware`] — grows a low-error region of the device (ranked by
//!   [`Target::qubit_quality`]) and places the circuit inside it; on a
//!   uniform calibration there is nothing to rank, so it falls back to
//!   [`Random`].
//! * [`DegreeNoise`] — the hybrid: degree-greedy assignment seeded into a
//!   low-error region (with head-room), so hubs land on well-connected
//!   seats *of the quiet part* of the device; degrades to [`DegreeMatched`]
//!   on uniform calibrations.
//! * [`Vf2Embed`] — exact subgraph embedding (the `VF2Layout` pre-pass of
//!   §V, extracted from the pipeline), breaking ties between embeddings by
//!   [`Metric::EstimatedSuccess`](crate::trials::Metric::EstimatedSuccess)
//!   on calibrated targets.
//!
//! Every strategy receives a [`PlacementContext`] (circuit interaction
//! weights + the [`Target`]) and a seeded [`Rng`], and must return a valid
//! bijection (see [`Layout`]) or `None` when it cannot place the circuit
//! (only [`Vf2Embed`], when no embedding exists); callers fall back to
//! [`Random`], which always succeeds.
//!
//! [`TrialOptions::strategy_mix`]: crate::trials::TrialOptions::strategy_mix

use crate::calibration::Calibration;
use crate::layout::Layout;
use crate::target::Target;
use crate::trials::mix_counts;
use mirage_circuit::Circuit;
use mirage_math::Rng;
use mirage_topology::vf2::{find_embeddings, InteractionGraph};

/// Everything a layout strategy may consult: the (consolidated) circuit,
/// the device, and precomputed interaction statistics.
#[derive(Debug)]
pub struct PlacementContext<'a> {
    circuit: &'a Circuit,
    target: &'a Target,
    /// Interacting logical pairs with their two-qubit gate counts.
    interactions: Vec<((usize, usize), f64)>,
    /// Per-logical-qubit sum of interaction weights.
    weighted_degree: Vec<f64>,
    vf2_budget: usize,
}

/// Default VF2 search-node budget for placement contexts built without an
/// explicit one (matches `TranspileOptions::quick`).
pub const DEFAULT_VF2_BUDGET: usize = 200_000;

impl<'a> PlacementContext<'a> {
    /// Build a context for placing `circuit` onto `target`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the device.
    pub fn new(circuit: &'a Circuit, target: &'a Target) -> PlacementContext<'a> {
        assert!(
            circuit.n_qubits <= target.n_qubits(),
            "circuit wider than device"
        );
        let mut weights = std::collections::BTreeMap::new();
        let mut weighted_degree = vec![0.0; circuit.n_qubits];
        for instr in &circuit.instructions {
            if instr.gate.is_two_qubit() {
                let (a, b) = (instr.qubits[0], instr.qubits[1]);
                *weights.entry((a.min(b), a.max(b))).or_insert(0.0) += 1.0;
                weighted_degree[a] += 1.0;
                weighted_degree[b] += 1.0;
            }
        }
        PlacementContext {
            circuit,
            target,
            interactions: weights.into_iter().collect(),
            weighted_degree,
            vf2_budget: DEFAULT_VF2_BUDGET,
        }
    }

    /// Override the VF2 search-node budget (builder style).
    #[must_use]
    pub fn with_vf2_budget(mut self, budget: usize) -> PlacementContext<'a> {
        self.vf2_budget = budget;
        self
    }

    /// The circuit being placed.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The device being placed onto.
    pub fn target(&self) -> &Target {
        self.target
    }

    /// Number of real (circuit) logical qubits.
    pub fn n_logical(&self) -> usize {
        self.circuit.n_qubits
    }

    /// Number of device qubits.
    pub fn n_physical(&self) -> usize {
        self.target.n_qubits()
    }

    /// Interacting logical pairs (normalized `lo < hi`) with the number of
    /// two-qubit gates on each pair.
    pub fn interactions(&self) -> &[((usize, usize), f64)] {
        &self.interactions
    }

    /// Sum of interaction weights touching logical qubit `q`.
    pub fn weighted_degree(&self, q: usize) -> f64 {
        self.weighted_degree[q]
    }

    /// Per-logical adjacency: `(partner, weight)` lists.
    fn partner_lists(&self) -> Vec<Vec<(usize, f64)>> {
        let mut partners = vec![Vec::new(); self.n_logical()];
        for &((a, b), w) in &self.interactions {
            partners[a].push((b, w));
            partners[b].push((a, w));
        }
        partners
    }
}

/// Re-apply a placement: rewrite every instruction of `circuit` onto the
/// physical qubits `layout` assigns, widening to the device register.
pub fn apply_layout(circuit: &Circuit, layout: &Layout) -> Circuit {
    let mut placed = Circuit::new(layout.n_physical());
    for instr in &circuit.instructions {
        let qubits: Vec<usize> = instr.qubits.iter().map(|&q| layout.phys(q)).collect();
        placed.push(instr.gate.clone(), &qubits);
    }
    placed
}

/// A pluggable initial-layout generator. Implementations must be cheap
/// relative to a routing trial and deterministic given the `rng` state.
pub trait LayoutStrategy: Send + Sync {
    /// Short stable identifier (CLI values, table headers).
    fn name(&self) -> &'static str;

    /// Propose a seed layout, or `None` when the strategy cannot place
    /// this circuit (callers fall back to [`Random`]).
    fn propose(&self, ctx: &PlacementContext<'_>, rng: &mut Rng) -> Option<Layout>;
}

/// The paper's uniform seeding: a fresh [`Layout::random`] per trial.
#[derive(Debug, Clone, Copy, Default)]
pub struct Random;

impl LayoutStrategy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&self, ctx: &PlacementContext<'_>, rng: &mut Rng) -> Option<Layout> {
        Some(Layout::random(ctx.n_logical(), ctx.n_physical(), rng))
    }
}

/// Greedy interaction/connectivity matching: logical qubits are placed in
/// descending interaction order; each lands on the free physical qubit
/// minimizing the interaction-weighted distance to its already-placed
/// partners, tie-broken by hardware degree (hubs onto well-connected
/// seats) and then randomly, so repeated trials explore distinct
/// placements.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeMatched;

impl LayoutStrategy for DegreeMatched {
    fn name(&self) -> &'static str {
        "degree-matched"
    }

    fn propose(&self, ctx: &PlacementContext<'_>, rng: &mut Rng) -> Option<Layout> {
        let allowed: Vec<usize> = (0..ctx.n_physical()).collect();
        let degree = |p: usize| ctx.target().topology().neighbors(p).len() as f64;
        Some(greedy_assign(ctx, &allowed, &degree, rng))
    }
}

/// Calibration-aware seeding: rank physical qubits by
/// [`Target::qubit_quality`], grow a connected low-error region from a
/// randomly chosen high-quality start seat, and place the circuit inside
/// it (interaction-heavy logical qubits onto the quietest seats). On a
/// uniform calibration every seat scores identically, so the strategy
/// falls back to [`Random`] rather than manufacturing fake preferences.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoiseAware;

impl LayoutStrategy for NoiseAware {
    fn name(&self) -> &'static str {
        "noise-aware"
    }

    fn propose(&self, ctx: &PlacementContext<'_>, rng: &mut Rng) -> Option<Layout> {
        let target = ctx.target();
        let cal = target.calibration();
        if cal.is_uniform() {
            return Random.propose(ctx, rng);
        }
        let quality: Vec<f64> = (0..ctx.n_physical())
            .map(|q| target.qubit_quality_with(&cal, q))
            .collect();
        let region = grow_low_error_region(ctx, &cal, &quality, ctx.n_logical(), rng);
        Some(greedy_assign(ctx, &region, &|p| quality[p], rng))
    }
}

/// Grow a connected region of `size` physical qubits, preferring quiet
/// seats reached through quiet couplers. `cal` is the caller's calibration
/// snapshot (the same one that ranked `quality`, so one proposal never
/// mixes two calibrations). The start seat is drawn from the best quartile
/// (randomized, so the trial loop explores several regions of a patchy
/// device). Shared by [`NoiseAware`] and [`DegreeNoise`].
fn grow_low_error_region(
    ctx: &PlacementContext<'_>,
    cal: &Calibration,
    quality: &[f64],
    size: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    let target = ctx.target();
    let n_phys = ctx.n_physical();
    let mut ranked: Vec<usize> = (0..n_phys).collect();
    ranked.sort_by(|&a, &b| quality[b].total_cmp(&quality[a]));
    let pool = ranked.len().div_ceil(4).max(1);
    let start = ranked[rng.below(pool)];

    let topo = target.topology();
    let mut in_region = vec![false; n_phys];
    let mut region = vec![start];
    in_region[start] = true;
    while region.len() < size.min(n_phys) {
        // Deduplicated frontier (ordered, so the random tie-break is
        // one fair draw per candidate regardless of how many region
        // members it touches).
        let frontier: std::collections::BTreeSet<usize> = region
            .iter()
            .flat_map(|&member| topo.neighbors(member).iter().copied())
            .filter(|&q| !in_region[q])
            .collect();
        let mut best: Option<(f64, f64, usize)> = None;
        for q in frontier {
            let links: Vec<f64> = topo
                .neighbors(q)
                .iter()
                .filter(|&&nb| in_region[nb])
                .map(|&nb| ln_survival(cal.edge_or_nominal(q, nb).error_2q))
                .collect();
            let bonus = links.iter().sum::<f64>() / links.len().max(1) as f64;
            let key = (quality[q] + bonus, rng.uniform(), q);
            if best.map_or(true, |b| (key.0, key.1).gt(&(b.0, b.1))) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, q)) => {
                in_region[q] = true;
                region.push(q);
            }
            // Disconnected device (transpile rejects these, but stay
            // total): take the best remaining seat outright.
            None => {
                let q = ranked
                    .iter()
                    .copied()
                    .find(|&q| !in_region[q])
                    .expect("size <= n_physical");
                in_region[q] = true;
                region.push(q);
            }
        }
    }
    region
}

/// The hybrid degree+noise strategy the ROADMAP asked for: degree-greedy
/// placement seeded **into** a low-error region. [`DegreeMatched`] alone
/// chases hardware hubs wherever they sit — on a skewed device it happily
/// parks the whole circuit on lossy couplers, and because it is nearly
/// deterministic it concentrates its entire trial budget on that one
/// placement family. `DegreeNoise` first grows a connected low-error region
/// (like [`NoiseAware`]) with head-room beyond the circuit width, then runs
/// the same interaction-weighted greedy assignment *restricted to that
/// region*, tie-breaking toward well-connected seats. On a uniform
/// calibration there is no noise signal and it degrades to
/// [`DegreeMatched`] exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeNoise;

impl DegreeNoise {
    /// Extra seats grown beyond the circuit width, as a fraction of it:
    /// the slack gives the degree-greedy core real seat choices inside the
    /// quiet region (a region of exactly circuit width would make the
    /// assignment order irrelevant).
    pub const REGION_SLACK: f64 = 0.5;

    /// Region size for a circuit of `n_logical` qubits on a device with
    /// `n_physical` seats.
    fn region_size(n_logical: usize, n_physical: usize) -> usize {
        let slack = ((n_logical as f64 * Self::REGION_SLACK).ceil() as usize).max(1);
        (n_logical + slack).min(n_physical)
    }
}

impl LayoutStrategy for DegreeNoise {
    fn name(&self) -> &'static str {
        "degree-noise"
    }

    fn propose(&self, ctx: &PlacementContext<'_>, rng: &mut Rng) -> Option<Layout> {
        let target = ctx.target();
        let cal = target.calibration();
        if cal.is_uniform() {
            return DegreeMatched.propose(ctx, rng);
        }
        let quality: Vec<f64> = (0..ctx.n_physical())
            .map(|q| target.qubit_quality_with(&cal, q))
            .collect();
        let size = Self::region_size(ctx.n_logical(), ctx.n_physical());
        let region = grow_low_error_region(ctx, &cal, &quality, size, rng);
        let topo = target.topology();
        // Degree dominates the tie-break inside the quiet region; quality
        // (a small negative log-survival) orders seats of equal degree.
        let seat_quality = |p: usize| topo.neighbors(p).len() as f64 + quality[p].clamp(-0.9, 0.0);
        Some(greedy_assign(ctx, &region, &seat_quality, rng))
    }
}

/// The `VF2Layout` pre-pass as a strategy: an exact SWAP-free embedding of
/// the interaction graph when one exists (then routing has nothing to do).
/// Up to [`Vf2Embed::MAX_CANDIDATES`] embeddings are enumerated and ties
/// are broken by the estimated success probability of the placed circuit —
/// on a calibrated device, embeddings avoiding lossy couplers and bad
/// readout win; on a uniform device every embedding scores 1.0 and the
/// first (the classic single-result VF2 answer) is kept.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2Embed;

impl Vf2Embed {
    /// How many embeddings the tie-break considers.
    pub const MAX_CANDIDATES: usize = 8;
}

impl LayoutStrategy for Vf2Embed {
    fn name(&self) -> &'static str {
        "vf2"
    }

    fn propose(&self, ctx: &PlacementContext<'_>, _rng: &mut Rng) -> Option<Layout> {
        let pairs = ctx.interactions().iter().map(|&((a, b), _)| (a, b));
        let g = InteractionGraph::new(ctx.n_logical(), pairs);
        let topo = ctx.target().topology();
        let candidates = if ctx.target().calibration().is_uniform() {
            find_embeddings(&g, topo, ctx.vf2_budget, 1)
        } else {
            find_embeddings(&g, topo, ctx.vf2_budget, Self::MAX_CANDIDATES)
        };
        let mut best: Option<(f64, Layout)> = None;
        for embedding in candidates {
            let layout = Layout::from_assignment(&embedding, topo.n_qubits());
            let placed = apply_layout(ctx.circuit(), &layout);
            let success = ctx
                .target()
                .estimated_success(&placed, layout.real_assignment());
            // Strict improvement only: ties keep the earliest embedding,
            // so uniform targets reproduce the single-result VF2 pass.
            if best.as_ref().map_or(true, |(s, _)| success > *s) {
                best = Some((success, layout));
            }
        }
        best.map(|(_, layout)| layout)
    }
}

/// The built-in strategies, addressable for mixes and CLI flags. The
/// order defines the lanes of
/// [`TrialOptions::strategy_mix`](crate::trials::TrialOptions::strategy_mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// [`Random`].
    Random,
    /// [`DegreeMatched`].
    DegreeMatched,
    /// [`NoiseAware`].
    NoiseAware,
    /// [`DegreeNoise`].
    DegreeNoise,
    /// [`Vf2Embed`].
    Vf2Embed,
}

/// Number of strategy lanes — the width of
/// [`TrialOptions::strategy_mix`](crate::trials::TrialOptions::strategy_mix).
pub const N_STRATEGIES: usize = 5;

/// A balanced split of the layout budget across all five strategies:
/// random exploration keeps its plurality (it is the only unbiased
/// estimator), the calibration-aware lanes (noise-aware and the
/// degree+noise hybrid) split the next share, pure degree-matching keeps a
/// small diversity lane, and VF2 a token one (it is deterministic, so one
/// trial extracts all its value).
pub const BALANCED_STRATEGY_MIX: [f64; N_STRATEGIES] = [0.35, 0.1, 0.25, 0.2, 0.1];

impl StrategyKind {
    /// Every strategy, in mix-lane order.
    pub const ALL: [StrategyKind; N_STRATEGIES] = [
        StrategyKind::Random,
        StrategyKind::DegreeMatched,
        StrategyKind::NoiseAware,
        StrategyKind::DegreeNoise,
        StrategyKind::Vf2Embed,
    ];

    /// The strategy object.
    pub fn strategy(self) -> &'static dyn LayoutStrategy {
        match self {
            StrategyKind::Random => &Random,
            StrategyKind::DegreeMatched => &DegreeMatched,
            StrategyKind::NoiseAware => &NoiseAware,
            StrategyKind::DegreeNoise => &DegreeNoise,
            StrategyKind::Vf2Embed => &Vf2Embed,
        }
    }

    /// Short stable identifier (same as the strategy object's name).
    pub fn name(self) -> &'static str {
        self.strategy().name()
    }

    /// A mix giving this strategy the whole layout budget.
    pub fn one_hot(self) -> [f64; N_STRATEGIES] {
        let mut mix = [0.0; N_STRATEGIES];
        mix[self as usize] = 1.0;
        mix
    }

    /// The strategy seeding layout trial `t` of `total` under `mix`
    /// (mirrors [`aggression_for_trial`](crate::trials::aggression_for_trial):
    /// every strategy with a nonzero share gets at least one trial).
    pub fn for_trial(t: usize, total: usize, mix: &[f64; N_STRATEGIES]) -> StrategyKind {
        let counts = mix_counts(total.max(1), mix);
        let mut upto = 0usize;
        for (lane, &n) in counts.iter().enumerate() {
            upto += n;
            if t < upto {
                return StrategyKind::ALL[lane];
            }
        }
        StrategyKind::Vf2Embed
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<StrategyKind, String> {
        match s {
            "random" => Ok(StrategyKind::Random),
            "degree" | "degree-matched" => Ok(StrategyKind::DegreeMatched),
            "noise" | "noise-aware" => Ok(StrategyKind::NoiseAware),
            "degree-noise" | "hybrid" => Ok(StrategyKind::DegreeNoise),
            "vf2" => Ok(StrategyKind::Vf2Embed),
            other => Err(format!("unknown layout strategy '{other}'")),
        }
    }
}

/// Shared greedy placement core: take logical qubits in descending
/// interaction order and put each on the free seat from `allowed`
/// minimizing the interaction-weighted distance to its placed partners;
/// ties go to the seat with the higher `seat_quality`, then randomly.
fn greedy_assign(
    ctx: &PlacementContext<'_>,
    allowed: &[usize],
    seat_quality: &dyn Fn(usize) -> f64,
    rng: &mut Rng,
) -> Layout {
    let n_logical = ctx.n_logical();
    assert!(allowed.len() >= n_logical, "region smaller than circuit");
    let partners = ctx.partner_lists();
    let topo = ctx.target().topology();

    // Random jitter decides equal-interaction orderings per trial.
    let mut order: Vec<(f64, f64, usize)> = (0..n_logical)
        .map(|l| (ctx.weighted_degree(l), rng.uniform(), l))
        .collect();
    order.sort_by(|a, b| (b.0, b.1).partial_cmp(&(a.0, a.1)).expect("finite keys"));

    let mut seat_of = vec![usize::MAX; n_logical];
    let mut taken = vec![false; ctx.n_physical()];
    for &(_, _, l) in &order {
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for &p in allowed {
            if taken[p] {
                continue;
            }
            let mut cost = 0.0;
            for &(partner, w) in &partners[l] {
                if seat_of[partner] != usize::MAX {
                    cost += w * f64::from(topo.distance(p, seat_of[partner]));
                }
            }
            let key = (cost, -seat_quality(p), rng.uniform(), p);
            let better = best.map_or(true, |b| {
                (key.0, key.1, key.2)
                    .partial_cmp(&(b.0, b.1, b.2))
                    .expect("finite keys")
                    .is_lt()
            });
            if better {
                best = Some(key);
            }
        }
        let (_, _, _, p) = best.expect("free seat exists");
        seat_of[l] = p;
        taken[p] = true;
    }
    Layout::from_assignment(&seat_of, ctx.n_physical())
}

/// `ln(1 − e)` clamped to stay finite (same convention as the target's
/// scoring paths).
fn ln_survival(error: f64) -> f64 {
    (1.0 - error).max(1e-300).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{Calibration, EdgeCalibration, QubitCalibration};
    use mirage_circuit::generators::{ghz, qft, two_local_full};
    use mirage_topology::CouplingMap;

    fn assert_valid_bijection(layout: &Layout, n_logical: usize, n_physical: usize) {
        assert_eq!(layout.n_logical(), n_logical);
        assert_eq!(layout.n_physical(), n_physical);
        assert!(layout.is_bijective());
    }

    #[test]
    fn every_strategy_emits_valid_bijections_on_ragged_sizes() {
        // Seeded sweep over n_logical < n_physical on three topologies.
        let mut rng = Rng::new(0x9A9);
        for topo in [
            CouplingMap::line(9),
            CouplingMap::grid(3, 4),
            CouplingMap::heavy_hex(3),
        ] {
            for n_logical in [2usize, 3, 5, 7] {
                let circ = two_local_full(n_logical, 1, 7);
                let cal = Calibration::synthetic(&topo, &mut Rng::new(0xBAD));
                let target = Target::sqrt_iswap(topo.clone())
                    .with_calibration(cal)
                    .unwrap();
                let ctx = PlacementContext::new(&circ, &target);
                for kind in StrategyKind::ALL {
                    for _ in 0..4 {
                        if let Some(layout) = kind.strategy().propose(&ctx, &mut rng) {
                            assert_valid_bijection(&layout, n_logical, topo.n_qubits());
                        } else {
                            assert_eq!(
                                kind,
                                StrategyKind::Vf2Embed,
                                "only VF2 may decline to place"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degree_matched_puts_hub_on_high_degree_seat() {
        // A 5-qubit star circuit on a 3x3 grid: the hub interacts with
        // everyone and must land on the center (the only degree-4 seat).
        let mut circ = Circuit::new(5);
        for leaf in 1..5 {
            circ.cx(0, leaf);
        }
        let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
        let ctx = PlacementContext::new(&circ, &target);
        for seed in 0..5 {
            let layout = DegreeMatched
                .propose(&ctx, &mut Rng::new(seed))
                .expect("always places");
            assert_eq!(layout.phys(0), 4, "hub on the grid center");
            // Leaves sit adjacent to the hub.
            for leaf in 1..5 {
                assert!(target.topology().are_adjacent(layout.phys(leaf), 4));
            }
        }
    }

    #[test]
    fn noise_aware_prefers_the_quiet_region_and_falls_back_on_uniform() {
        // Left half of a 2x4 grid is clean, right half noisy.
        let topo = CouplingMap::grid(2, 4);
        let mut cal = Calibration::uniform(&topo);
        for q in [2, 3, 6, 7] {
            cal.set_qubit(
                q,
                QubitCalibration {
                    duration_1q: 0.0,
                    error_1q: 5e-3,
                    readout_error: 0.08,
                },
            )
            .unwrap();
        }
        for &(a, b) in topo.edges() {
            if a.max(b) % 4 >= 2 {
                cal.set_edge(
                    a,
                    b,
                    EdgeCalibration {
                        duration_factor: 1.0,
                        error_2q: 0.04,
                    },
                )
                .unwrap();
            }
        }
        let target = Target::sqrt_iswap(topo.clone())
            .with_calibration(cal)
            .unwrap();
        let circ = ghz(4);
        let ctx = PlacementContext::new(&circ, &target);
        for seed in 0..6 {
            let layout = NoiseAware
                .propose(&ctx, &mut Rng::new(seed))
                .expect("always places");
            let seats: Vec<usize> = layout.assignment();
            // The clean 2x2 block is columns 0-1: qubits {0, 1, 4, 5}.
            for &p in &seats {
                assert!(
                    [0usize, 1, 4, 5].contains(&p),
                    "seed {seed}: seat {p} outside the quiet region ({seats:?})"
                );
            }
        }
        // Uniform calibration: noise-aware must be exactly random seeding.
        let uniform = Target::sqrt_iswap(CouplingMap::grid(2, 4));
        let uctx = PlacementContext::new(&circ, &uniform);
        let a = NoiseAware.propose(&uctx, &mut Rng::new(42)).unwrap();
        let b = Random.propose(&uctx, &mut Rng::new(42)).unwrap();
        assert_eq!(a, b, "uniform targets degrade to Random");
    }

    #[test]
    fn vf2_embed_breaks_ties_by_estimated_success() {
        // One CNOT on a 3-line whose (0,1) coupler is lossy: several
        // embeddings exist, and the strategy must pick one on (1,2).
        let topo = CouplingMap::line(3);
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 0.1,
            },
        )
        .unwrap();
        cal.set_edge(
            1,
            2,
            EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 1e-4,
            },
        )
        .unwrap();
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let circ = ghz(2);
        let ctx = PlacementContext::new(&circ, &target);
        let layout = Vf2Embed
            .propose(&ctx, &mut Rng::new(0))
            .expect("a 2-line embeds into a 3-line");
        let mut seats = layout.assignment();
        seats.sort_unstable();
        assert_eq!(seats, vec![1, 2], "must avoid the lossy (0,1) coupler");
        // And it declines when no embedding exists (full graph on a line).
        let heavy = two_local_full(4, 1, 7);
        let line = Target::sqrt_iswap(CouplingMap::line(4));
        let no_embed = PlacementContext::new(&heavy, &line);
        assert!(Vf2Embed.propose(&no_embed, &mut Rng::new(0)).is_none());
    }

    #[test]
    fn strategy_kind_round_trips_names_and_mixes() {
        for kind in StrategyKind::ALL {
            assert_eq!(kind.name().parse::<StrategyKind>().unwrap(), kind);
            let mix = kind.one_hot();
            assert_eq!(mix.iter().sum::<f64>(), 1.0);
            for t in 0..7 {
                assert_eq!(StrategyKind::for_trial(t, 7, &mix), kind);
            }
        }
        assert!("wibble".parse::<StrategyKind>().is_err());
        assert!((BALANCED_STRATEGY_MIX.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The balanced mix reaches every lane on a paper-size budget.
        let hit: std::collections::BTreeSet<&str> = (0..20)
            .map(|t| StrategyKind::for_trial(t, 20, &BALANCED_STRATEGY_MIX).name())
            .collect();
        assert_eq!(hit.len(), N_STRATEGIES, "{hit:?}");
    }

    #[test]
    fn degree_noise_degrades_to_degree_matched_on_uniform() {
        let target = Target::sqrt_iswap(CouplingMap::grid(3, 3));
        let circ = two_local_full(5, 1, 7);
        let ctx = PlacementContext::new(&circ, &target);
        for seed in 0..5 {
            let hybrid = DegreeNoise.propose(&ctx, &mut Rng::new(seed)).unwrap();
            let degree = DegreeMatched.propose(&ctx, &mut Rng::new(seed)).unwrap();
            assert_eq!(hybrid, degree, "uniform targets degrade to DegreeMatched");
        }
    }

    #[test]
    fn degree_noise_keeps_the_hub_on_a_well_connected_quiet_seat() {
        // Left half of a 2x4 grid is clean, right half noisy (same device
        // as the NoiseAware test). A 4-qubit star circuit: the hybrid must
        // stay inside the clean block AND put the hub on one of its two
        // degree-3 seats — DegreeMatched alone would chase the global
        // degree-3 seats regardless of noise.
        let topo = CouplingMap::grid(2, 4);
        let mut cal = Calibration::uniform(&topo);
        for q in [2, 3, 6, 7] {
            cal.set_qubit(
                q,
                QubitCalibration {
                    duration_1q: 0.0,
                    error_1q: 5e-3,
                    readout_error: 0.08,
                },
            )
            .unwrap();
        }
        for &(a, b) in topo.edges() {
            if a.max(b) % 4 >= 2 {
                cal.set_edge(
                    a,
                    b,
                    EdgeCalibration {
                        duration_factor: 1.0,
                        error_2q: 0.04,
                    },
                )
                .unwrap();
            }
        }
        let target = Target::sqrt_iswap(topo.clone())
            .with_calibration(cal)
            .unwrap();
        let mut circ = Circuit::new(4);
        for leaf in 1..4 {
            circ.cx(0, leaf);
        }
        let ctx = PlacementContext::new(&circ, &target);
        // Region size: 4 logical + ceil(4 * 0.5) slack = 6 seats.
        assert_eq!(DegreeNoise::region_size(4, 8), 6);
        for seed in 0..6 {
            let layout = DegreeNoise
                .propose(&ctx, &mut Rng::new(seed))
                .expect("always places");
            let hub = layout.phys(0);
            // The clean columns are 0-1 ({0, 1, 4, 5}); with slack the
            // region can reach into column 2, but never the far noisy
            // column {3, 7} — and the hub must sit on a degree-3 seat of
            // the quiet side.
            assert!(
                [1usize, 5].contains(&hub),
                "seed {seed}: hub on {hub}, expected a quiet degree-3 seat"
            );
            let adjacent = (1..4)
                .filter(|&leaf| target.topology().are_adjacent(layout.phys(leaf), hub))
                .count();
            assert!(adjacent >= 2, "seed {seed}: only {adjacent} leaves by hub");
            for leaf in 0..4 {
                let p = layout.phys(leaf);
                assert!(
                    ![3usize, 7].contains(&p),
                    "seed {seed}: seat {p} in the far noisy column"
                );
            }
        }
    }

    #[test]
    fn apply_layout_relabels_wires() {
        let circ = qft(3, false);
        let layout = Layout::from_assignment(&[2, 0, 3], 4);
        let placed = apply_layout(&circ, &layout);
        assert_eq!(placed.n_qubits, 4);
        assert_eq!(placed.gate_count(), circ.gate_count());
        for (orig, moved) in circ.instructions.iter().zip(&placed.instructions) {
            for (&q, &p) in orig.qubits.iter().zip(&moved.qubits) {
                assert_eq!(layout.phys(q), p);
            }
        }
    }
}
