//! Statevector verification of routed circuits.
//!
//! A routed circuit acts on physical wires; logical qubit `l` starts at
//! `initial_layout.phys(l)` and ends at `final_layout.phys(l)`. The checker
//! simulates both circuits from `|0…0⟩` and compares through the final
//! placement. Because all inputs are `|0⟩`, the initial placement needs no
//! correction.

use crate::router::RoutedCircuit;
use mirage_circuit::sim::{run, State};
use mirage_circuit::Circuit;
use mirage_math::Complex64;

/// True when `routed` implements `original` up to global phase and the
/// routing-induced output permutation.
///
/// # Panics
///
/// Panics if the physical register exceeds the simulator cap (24 qubits).
pub fn verify_routed(original: &Circuit, routed: &RoutedCircuit) -> bool {
    let n_log = original.n_qubits;
    let n_phys = routed.circuit.n_qubits;
    let s_log = run(original);
    let s_phys = run(&routed.circuit);

    // Expected physical state: logical basis state `s` lands on the
    // physical basis state with bit final_layout.phys(l) = bit l of s.
    let mut expected = vec![Complex64::ZERO; 1 << n_phys];
    for (s, &amp) in s_log.amps.iter().enumerate() {
        let mut t = 0usize;
        for l in 0..n_log {
            if s & (1 << l) != 0 {
                t |= 1 << routed.final_layout.phys(l);
            }
        }
        expected[t] = amp;
    }
    let expected = State {
        n: n_phys,
        amps: expected,
    };
    s_phys.fidelity(&expected) > 1.0 - 1e-7
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn identity_routing_verifies() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let routed = RoutedCircuit {
            circuit: c.clone(),
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(verify_routed(&c, &routed));
    }

    #[test]
    fn wrong_circuit_fails() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut wrong = Circuit::new(2);
        wrong.h(0);
        let routed = RoutedCircuit {
            circuit: wrong,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(!verify_routed(&c, &routed));
    }

    #[test]
    fn trailing_swap_with_updated_layout_verifies() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut r = c.clone();
        r.swap(0, 1);
        let mut final_layout = Layout::trivial(2, 2);
        final_layout.swap_physical(0, 1);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: Layout::trivial(2, 2),
            final_layout,
            swaps_inserted: 1,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(verify_routed(&c, &routed));
    }

    #[test]
    fn trailing_swap_without_layout_update_fails() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut r = c.clone();
        r.swap(0, 1);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 1,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(!verify_routed(&c, &routed));
    }

    #[test]
    fn wider_physical_register() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        // Same circuit placed on qubits (1, 2) of a 4-qubit device.
        let mut r = Circuit::new(4);
        r.h(1).cx(1, 2);
        let layout = Layout::from_assignment(&[1, 2], 4);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: layout.clone(),
            final_layout: layout,
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(verify_routed(&c, &routed));
    }
}
