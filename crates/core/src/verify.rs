//! Statevector verification of routed circuits against a target.
//!
//! A routed circuit acts on physical wires; logical qubit `l` starts at
//! `initial_layout.phys(l)` and ends at `final_layout.phys(l)`. The checker
//! simulates both circuits from `|0…0⟩` and compares through the final
//! placement. Because all inputs are `|0⟩`, the initial placement needs no
//! correction. On top of semantic equivalence, every two-qubit gate of the
//! routed circuit must sit on a coupled pair of the target's topology.
//!
//! [`verify_report`] bundles both checks with the calibration-derived
//! success estimate into one [`VerifyReport`] for CLI/bench reporting.

use crate::router::RoutedCircuit;
use crate::target::Target;
use mirage_circuit::sim::{run, State};
use mirage_circuit::Circuit;
use mirage_math::Complex64;

/// The full verification verdict: structural and semantic checks plus the
/// calibration-derived success estimate, so one call answers both "is this
/// routing correct?" and "how likely is it to succeed on the device?".
#[derive(Debug, Clone, Copy)]
pub struct VerifyReport {
    /// Every two-qubit gate sits on a coupled pair of the target.
    pub coupling_ok: bool,
    /// The routed circuit implements the original (up to global phase and
    /// the routing-induced output permutation). `false` without simulation
    /// when the coupling check already failed.
    pub semantics_ok: bool,
    /// Natural log of the estimated success probability under the target's
    /// calibration (see [`RoutedCircuit::log_success`]).
    pub log_success: f64,
    /// `exp` of [`VerifyReport::log_success`].
    pub estimated_success: f64,
}

impl VerifyReport {
    /// True when both the coupling and the semantic checks passed.
    pub fn ok(&self) -> bool {
        self.coupling_ok && self.semantics_ok
    }
}

/// Verify `routed` against `original` and report the verdict together with
/// the calibrated success estimate.
///
/// # Panics
///
/// Panics if the physical register exceeds the simulator cap (24 qubits).
pub fn verify_report(original: &Circuit, routed: &RoutedCircuit, target: &Target) -> VerifyReport {
    let coupling_ok = coupling_respected(routed, target);
    let semantics_ok = coupling_ok && semantics_match(original, routed);
    let log_success = routed.log_success(target);
    VerifyReport {
        coupling_ok,
        semantics_ok,
        log_success,
        estimated_success: log_success.exp(),
    }
}

/// Every two-qubit gate of the routed circuit sits on a coupled pair.
fn coupling_respected(routed: &RoutedCircuit, target: &Target) -> bool {
    routed.circuit.instructions.iter().all(|instr| {
        !instr.gate.is_two_qubit()
            || target
                .topology()
                .are_adjacent(instr.qubits[0], instr.qubits[1])
    })
}

/// True when `routed` implements `original` up to global phase and the
/// routing-induced output permutation, and every two-qubit gate respects
/// the target's coupling map.
///
/// # Panics
///
/// Panics if the physical register exceeds the simulator cap (24 qubits).
pub fn verify_routed(original: &Circuit, routed: &RoutedCircuit, target: &Target) -> bool {
    coupling_respected(routed, target) && semantics_match(original, routed)
}

/// Statevector comparison through the final placement (no coupling check).
fn semantics_match(original: &Circuit, routed: &RoutedCircuit) -> bool {
    let n_log = original.n_qubits;
    let n_phys = routed.circuit.n_qubits;
    let s_log = run(original);
    let s_phys = run(&routed.circuit);

    // Expected physical state: logical basis state `s` lands on the
    // physical basis state with bit final_layout.phys(l) = bit l of s.
    let mut expected = vec![Complex64::ZERO; 1 << n_phys];
    for (s, &amp) in s_log.amps.iter().enumerate() {
        let mut t = 0usize;
        for l in 0..n_log {
            if s & (1 << l) != 0 {
                t |= 1 << routed.final_layout.phys(l);
            }
        }
        expected[t] = amp;
    }
    let expected = State {
        n: n_phys,
        amps: expected,
    };
    s_phys.fidelity(&expected) > 1.0 - 1e-7
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use mirage_topology::CouplingMap;

    fn line_target(n: usize) -> Target {
        // Verification never queries decomposition costs, so the lazy
        // coverage set stays unbuilt and these targets are cheap.
        Target::sqrt_iswap(CouplingMap::line(n))
    }

    #[test]
    fn identity_routing_verifies() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let routed = RoutedCircuit {
            circuit: c.clone(),
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        let t = line_target(2);
        assert!(verify_routed(&c, &routed, &t));
        assert!(!t.coverage_built(), "verification must not build coverage");
    }

    #[test]
    fn wrong_circuit_fails() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut wrong = Circuit::new(2);
        wrong.h(0);
        let routed = RoutedCircuit {
            circuit: wrong,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(!verify_routed(&c, &routed, &line_target(2)));
    }

    #[test]
    fn trailing_swap_with_updated_layout_verifies() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut r = c.clone();
        r.swap(0, 1);
        let mut final_layout = Layout::trivial(2, 2);
        final_layout.swap_physical(0, 1);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: Layout::trivial(2, 2),
            final_layout,
            swaps_inserted: 1,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(verify_routed(&c, &routed, &line_target(2)));
    }

    #[test]
    fn trailing_swap_without_layout_update_fails() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut r = c.clone();
        r.swap(0, 1);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 1,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(!verify_routed(&c, &routed, &line_target(2)));
    }

    #[test]
    fn report_combines_checks_and_success() {
        use crate::calibration::{Calibration, EdgeCalibration};

        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let routed = RoutedCircuit {
            circuit: c.clone(),
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        let topo = mirage_topology::CouplingMap::line(2);
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 0.01,
            },
        )
        .unwrap();
        let t = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let report = verify_report(&c, &routed, &t);
        assert!(report.ok());
        assert!(report.coupling_ok && report.semantics_ok);
        // One CNOT = 2 applications at 1% error, perfect readout.
        let expected = (1.0f64 - 0.01).powi(2);
        assert!((report.estimated_success - expected).abs() < 1e-12);
        assert!((report.log_success - expected.ln()).abs() < 1e-12);
    }

    #[test]
    fn report_flags_coupling_failure_without_simulating() {
        let mut c = Circuit::new(3);
        c.cx(0, 2); // uncoupled on a line
        let routed = RoutedCircuit {
            circuit: c.clone(),
            initial_layout: Layout::trivial(3, 3),
            final_layout: Layout::trivial(3, 3),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        let t = line_target(3);
        let report = verify_report(&c, &routed, &t);
        assert!(!report.coupling_ok);
        assert!(!report.semantics_ok);
        assert!(!report.ok());
        // The success estimate is still produced (nominal here).
        assert_eq!(report.estimated_success, 1.0);
    }

    #[test]
    fn wider_physical_register() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        // Same circuit placed on qubits (1, 2) of a 4-qubit device.
        let mut r = Circuit::new(4);
        r.h(1).cx(1, 2);
        let layout = Layout::from_assignment(&[1, 2], 4);
        let routed = RoutedCircuit {
            circuit: r,
            initial_layout: layout.clone(),
            final_layout: layout,
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(verify_routed(&c, &routed, &line_target(4)));
    }

    #[test]
    fn uncoupled_gate_fails_even_when_semantics_match() {
        // Semantically perfect, but the 2Q gate sits on an uncoupled pair
        // (0, 2) of a line — the target check must reject it.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2);
        let routed = RoutedCircuit {
            circuit: c.clone(),
            initial_layout: Layout::trivial(3, 3),
            final_layout: Layout::trivial(3, 3),
            swaps_inserted: 0,
            mirrors_accepted: 0,
            mirror_candidates: 0,
        };
        assert!(!verify_routed(&c, &routed, &line_target(3)));
        // On an all-to-all target the same pair is fine.
        let a2a = Target::sqrt_iswap(CouplingMap::all_to_all(3));
        assert!(verify_routed(&c, &routed, &a2a));
    }
}
