//! The trial engine: layout search, independent routing trials, and
//! post-selection behind one API.
//!
//! The paper's configuration (§V): 20 independent layout trials, each
//! refined by 4 forward–backward routing passes (SABRE layout), then
//! independent routing runs whose best result is kept. MIRAGE changes the
//! post-selection metric from *fewest SWAPs* to *shortest duration-weighted
//! critical path* (§IV-B) and spreads routing trials across aggression
//! levels 5% / 45% / 45% / 5% (§IV-C). On calibrated targets a third
//! metric, [`Metric::EstimatedSuccess`], post-selects on the predicted
//! success probability instead — the quantity the paper compares on real
//! hardware.
//!
//! [`TrialEngine`] owns the whole loop — seed-layout generation through the
//! pluggable strategies of [`crate::placement`] (budget split by
//! [`TrialOptions::strategy_mix`], mirroring the aggression mix), SABRE
//! refinement, routing trials, and post-selection — and is the one consumer
//! `transpile`, the bench harness, and `mirage-cli` all sit on.

use crate::layout::Layout;
use crate::pipeline::TranspileError;
use crate::placement::{LayoutStrategy, PlacementContext, StrategyKind, Vf2Embed};
use crate::router::{
    node_coords, route_with_scratch, Aggression, RoutedCircuit, RouterConfig, RouterScratch,
};
use crate::target::Target;
use mirage_circuit::{Circuit, Dag};
use mirage_math::Rng;
use mirage_weyl::coords::WeylCoord;

/// One layout trial's routed candidates, tagged by the strategy that
/// seeded the layout.
type TrialResult = (StrategyKind, Vec<RoutedCircuit>);

/// Post-selection metric across routing trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fewest SWAPs inserted (the Qiskit/SABRE baseline metric).
    SwapCount,
    /// Shortest duration-weighted critical path (MIRAGE-Depth, §IV-B).
    Depth,
    /// Highest estimated success probability under the target's
    /// [`Calibration`](crate::calibration::Calibration): the log-fidelity
    /// product over every routed gate (edge errors priced per basis
    /// application, so SWAPs pay 3 CNOTs / 3 √iSWAPs and accepted mirrors
    /// only their own cost) plus readout on the logical qubits' final
    /// homes. The noise-aware analogue of the paper's Table III hardware
    /// comparison.
    EstimatedSuccess,
}

/// Trial-loop configuration.
#[derive(Debug, Clone)]
pub struct TrialOptions {
    /// Independent initial layouts.
    pub layout_trials: usize,
    /// Forward–backward refinement passes per layout.
    pub fwd_bwd_iters: usize,
    /// Independent final routing runs per layout.
    pub routing_trials: usize,
    /// Post-selection metric.
    pub metric: Metric,
    /// Fraction of routing trials at each aggression level (A0..A3);
    /// ignored by the SABRE baseline. Must sum to ~1.0
    /// (see [`TrialOptions::validate`]).
    pub aggression_mix: [f64; 4],
    /// Fraction of layout trials seeded by each [`StrategyKind`] (lane
    /// order [`StrategyKind::ALL`]: random, degree-matched, noise-aware,
    /// degree-noise, vf2). Must sum to ~1.0. The default gives random
    /// seeding the whole budget — the paper's configuration.
    pub strategy_mix: [f64; crate::placement::N_STRATEGIES],
    /// Base RNG seed.
    pub seed: u64,
    /// Run layout trials on threads. Results are bit-identical to a
    /// serial run at any thread count: seeds come from the pre-split
    /// [`SeedSchedule`] and the winner is reduced in trial-index order
    /// (see [`TrialEngine::run_detailed`]).
    pub parallel: bool,
    /// Worker threads when `parallel` is set; `0` means use the host's
    /// available parallelism. Capped at `layout_trials` — never affects
    /// results, only wall-clock.
    pub threads: usize,
    /// Override for the mirror-decision weight λ (None = engine default).
    pub mirror_lambda: Option<f64>,
}

/// The pre-split per-trial seed schedule: a pure function of
/// `(master seed, trial index)`.
///
/// Every layout trial draws all of its randomness — strategy proposal,
/// refinement passes, and the `spawn()`ed routing-trial streams — from one
/// [`Rng`] seeded by [`SeedSchedule::trial_seed`]. Because the seed
/// depends on nothing but the master seed and the trial's own index,
/// adding, removing, or reordering *other* trials (or running trials on
/// any number of threads, in any completion order) can never shift a
/// trial's stream. This is the first half of the engine's determinism
/// contract; the second is the fixed trial-index reduction order in
/// [`TrialEngine::run_detailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSchedule {
    master: u64,
}

impl SeedSchedule {
    /// The schedule rooted at `master` (normally [`TrialOptions::seed`]).
    pub fn new(master: u64) -> SeedSchedule {
        SeedSchedule { master }
    }

    /// The RNG seed for layout trial `trial`. The offset keeps trial 0
    /// distinct from the master seed itself and the stride keeps
    /// neighboring trials' seeds far apart in the SplitMix64 expansion
    /// ([`Rng::new`] hashes the seed, so any injective map suffices —
    /// this one is pinned by a regression test and must never change:
    /// every golden trials fingerprint depends on it).
    pub fn trial_seed(&self, trial: usize) -> u64 {
        self.master ^ (0x9E37 + trial as u64 * 0x100_0000)
    }
}

impl TrialOptions {
    /// The paper's full configuration (expensive; use in benches).
    pub fn paper(metric: Metric, seed: u64) -> TrialOptions {
        TrialOptions {
            layout_trials: 20,
            fwd_bwd_iters: 4,
            routing_trials: 20,
            metric,
            aggression_mix: [0.05, 0.45, 0.45, 0.05],
            strategy_mix: StrategyKind::Random.one_hot(),
            seed,
            parallel: true,
            threads: 0,
            mirror_lambda: None,
        }
    }

    /// A light configuration for tests and examples.
    pub fn quick(metric: Metric, seed: u64) -> TrialOptions {
        TrialOptions {
            layout_trials: 4,
            fwd_bwd_iters: 2,
            routing_trials: 4,
            metric,
            aggression_mix: [0.05, 0.45, 0.45, 0.05],
            strategy_mix: StrategyKind::Random.one_hot(),
            seed,
            parallel: false,
            threads: 0,
            mirror_lambda: None,
        }
    }

    /// The worker count a parallel run will use: `threads`, or the host's
    /// available parallelism when `threads == 0` (falling back to 1 if
    /// the host won't say). The engine additionally caps the pool at
    /// `layout_trials` — idle workers would be pure overhead.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Give one strategy the whole layout budget (builder style).
    #[must_use]
    pub fn with_strategy(mut self, kind: StrategyKind) -> TrialOptions {
        self.strategy_mix = kind.one_hot();
        self
    }

    /// Set the layout-strategy mix (builder style); see
    /// [`crate::placement::BALANCED_STRATEGY_MIX`] for a ready-made split.
    #[must_use]
    pub fn with_strategy_mix(mut self, mix: [f64; crate::placement::N_STRATEGIES]) -> TrialOptions {
        self.strategy_mix = mix;
        self
    }

    /// Check that both trial mixes are well-formed: every share finite and
    /// non-negative, and each mix summing to 1 (±1e-6). Mis-normalized
    /// mixes would silently re-allocate the trial budget, so the pipeline
    /// rejects them up front.
    ///
    /// # Errors
    ///
    /// [`TranspileError::InvalidTrialMix`] naming the offending mix.
    pub fn validate(&self) -> Result<(), TranspileError> {
        validate_mix("aggression_mix", &self.aggression_mix)?;
        validate_mix("strategy_mix", &self.strategy_mix)?;
        Ok(())
    }
}

fn validate_mix(which: &'static str, mix: &[f64]) -> Result<(), TranspileError> {
    for &share in mix {
        if !share.is_finite() || share < 0.0 {
            return Err(TranspileError::InvalidTrialMix {
                which,
                detail: format!("share {share} is not a finite non-negative fraction"),
            });
        }
    }
    let sum: f64 = mix.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return Err(TranspileError::InvalidTrialMix {
            which,
            detail: format!("shares sum to {sum}, expected 1.0"),
        });
    }
    Ok(())
}

fn score(r: &RoutedCircuit, metric: Metric, target: &Target) -> f64 {
    match metric {
        Metric::SwapCount => r.swaps_inserted as f64,
        Metric::Depth => target.depth_estimate(&r.circuit),
        // Trials minimize the score, so the negated log-success ranks the
        // most-likely-to-succeed candidate first.
        Metric::EstimatedSuccess => -r.log_success(target),
    }
}

/// Trial counts per mix lane for `total` trials. Every lane with a nonzero
/// share gets **at least one** trial — in particular A0 (the mirror-free
/// safety net of the aggression mix) is always in the candidate pool, so
/// depth post-selection can never do worse than the baseline plus trial
/// noise. Shared by the aggression bands and the layout-strategy lanes.
///
/// # Panics
///
/// Panics when `mix` is empty but `total > 0` (no lane to assign to).
pub fn mix_counts(total: usize, mix: &[f64]) -> Vec<usize> {
    let lanes = mix.len();
    let mut counts = vec![0usize; lanes];
    let mut assigned = 0usize;
    for (i, &share) in mix.iter().enumerate() {
        if share > 0.0 {
            counts[i] = ((share * total as f64).floor() as usize).max(1);
            assigned += counts[i];
        }
    }
    // Reconcile to exactly `total`: trim the largest shares first while
    // they have spares, then drop the smallest shares entirely (with fewer
    // trials than configured lanes, some lane must lose its slot).
    while assigned > total {
        let i = (0..lanes)
            .filter(|&i| counts[i] > 1)
            .max_by(|&a, &b| mix[a].total_cmp(&mix[b]))
            .or_else(|| {
                (0..lanes)
                    .filter(|&i| counts[i] > 0)
                    .min_by(|&a, &b| mix[a].total_cmp(&mix[b]))
            })
            .expect("assigned > 0 implies a nonzero count");
        counts[i] -= 1;
        assigned -= 1;
    }
    while assigned < total {
        let i = (0..lanes)
            .max_by(|&a, &b| {
                let da = mix[a] * total as f64 - counts[a] as f64;
                let db = mix[b] * total as f64 - counts[b] as f64;
                da.total_cmp(&db)
            })
            .expect("nonempty mix");
        counts[i] += 1;
        assigned += 1;
    }
    counts
}

/// Trial counts per aggression level for `total` routing trials under the
/// mix (the four-lane view of [`mix_counts`]).
pub fn aggression_counts(total: usize, mix: &[f64; 4]) -> [usize; 4] {
    let counts = mix_counts(total, mix);
    [counts[0], counts[1], counts[2], counts[3]]
}

/// Assign an aggression level to routing-trial `t` of `total` according to
/// the mix (via [`aggression_counts`], so every configured level appears).
pub fn aggression_for_trial(t: usize, total: usize, mix: &[f64; 4]) -> Aggression {
    let counts = aggression_counts(total.max(1), mix);
    let mut upto = 0usize;
    for (band, &n) in counts.iter().enumerate() {
        upto += n;
        if t < upto {
            return match band {
                0 => Aggression::A0,
                1 => Aggression::A1,
                2 => Aggression::A2,
                _ => Aggression::A3,
            };
        }
    }
    Aggression::A3
}

/// The routing result of a full trial run, with provenance.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The best routed candidate under the configured metric.
    pub best: RoutedCircuit,
    /// The layout strategy that seeded the winning candidate.
    pub strategy: StrategyKind,
    /// Total routed candidates scored (layout trials × routing trials).
    pub candidates: usize,
}

/// The routing precompute: forward/backward DAGs and per-node Weyl
/// coordinates. Built lazily — a transpile that takes the VF2 fast path
/// never routes, so it never pays for this.
#[derive(Debug)]
struct RoutingState {
    dag_fwd: Dag,
    dag_bwd: Dag,
    coords_fwd: Vec<Option<WeylCoord>>,
    coords_bwd: Vec<Option<WeylCoord>>,
}

/// The unified trial engine: one object owning layout generation (via the
/// [`crate::placement`] strategies), SABRE forward–backward refinement,
/// independent routing trials, and metric post-selection.
///
/// The forward/backward DAGs and per-node Weyl coordinates are computed
/// once, on first routing use; [`TrialEngine::run`] can be called
/// repeatedly with different options (the bench harness sweeps strategies
/// this way). The engine borrows its circuit and [`Target`]; reusing one
/// target keeps the shared cost cache warm across runs.
#[derive(Debug)]
pub struct TrialEngine<'a> {
    target: &'a Target,
    ctx: PlacementContext<'a>,
    routing: std::sync::OnceLock<RoutingState>,
    /// `Vf2Embed` is deterministic per engine, so its (possibly absent)
    /// proposal is computed once and shared by the pre-pass and every
    /// vf2-lane layout trial.
    vf2: std::sync::OnceLock<Option<Layout>>,
    /// Reusable [`RouterScratch`]es. Each trial *worker* checks one out
    /// for its whole run of layout trials and returns it afterwards, so
    /// serial runs route with a single scratch end-to-end and parallel
    /// runs hold exactly one per worker thread — the router's steady
    /// state stays allocation-free across trials (and across the repeated
    /// `run` calls of a serve worker's jobs on one engine). Scratches
    /// carry no routing state — only buffer capacity and a [`CostMemo`]
    /// of pure `(class, edge) → cost` values — so pooling never changes
    /// results.
    ///
    /// [`CostMemo`]: mirage_coverage::cache::CostMemo
    scratch_pool: std::sync::Mutex<Vec<RouterScratch>>,
}

impl<'a> TrialEngine<'a> {
    /// Build an engine for routing `circuit` (already consolidated) onto
    /// `target`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the device (the pipeline
    /// rejects this case with a clean error before constructing engines).
    pub fn new(circuit: &'a Circuit, target: &'a Target) -> TrialEngine<'a> {
        TrialEngine {
            target,
            ctx: PlacementContext::new(circuit, target),
            routing: std::sync::OnceLock::new(),
            vf2: std::sync::OnceLock::new(),
            scratch_pool: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Override the VF2 search-node budget used by the [`Vf2Embed`]
    /// strategy (builder style).
    #[must_use]
    pub fn with_vf2_budget(mut self, budget: usize) -> TrialEngine<'a> {
        self.ctx = self.ctx.with_vf2_budget(budget);
        self
    }

    /// The placement context the engine hands to layout strategies.
    pub fn context(&self) -> &PlacementContext<'a> {
        &self.ctx
    }

    /// The SWAP-free VF2 placement, when one exists — the pipeline's
    /// pre-pass: a circuit that embeds directly needs no routing at all.
    /// Ties between embeddings break by estimated success (see
    /// [`Vf2Embed`]). The search runs once per engine; repeated calls
    /// (and vf2-lane layout trials) reuse the cached answer.
    pub fn vf2_layout(&self) -> Option<Layout> {
        self.vf2
            // Vf2Embed is deterministic; the RNG is unused by it.
            .get_or_init(|| Vf2Embed.propose(&self.ctx, &mut Rng::new(0)))
            .clone()
    }

    /// The lazily-built routing precompute.
    fn routing_state(&self) -> &RoutingState {
        self.routing.get_or_init(|| {
            let circuit = self.ctx.circuit();
            let dag_fwd = Dag::from_circuit(circuit);
            let reversed = circuit.reversed();
            let dag_bwd = Dag::from_circuit(&reversed);
            let coords_fwd = node_coords(&dag_fwd);
            let coords_bwd = node_coords(&dag_bwd);
            RoutingState {
                dag_fwd,
                dag_bwd,
                coords_fwd,
                coords_bwd,
            }
        })
    }

    /// Check a scratch out of the pool (or grow the pool by one). The
    /// holder must hand it back through [`TrialEngine::return_scratch`].
    fn checkout_scratch(&self) -> RouterScratch {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a checked-out scratch for the next trial to reuse.
    fn return_scratch(&self, scratch: RouterScratch) {
        self.scratch_pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// SABRE layout refinement: route forward, then backward over the
    /// reversed circuit, feeding each final layout into the next pass.
    /// Cost queries go through the target's shared cache; working storage
    /// comes from the caller's scratch.
    fn refine_layout(
        &self,
        config: &RouterConfig,
        mut layout: Layout,
        iters: usize,
        rng: &mut Rng,
        scratch: &mut RouterScratch,
    ) -> Layout {
        let state = self.routing_state();
        for _ in 0..iters {
            let fwd = route_with_scratch(
                &state.dag_fwd,
                &state.coords_fwd,
                self.target,
                layout,
                config,
                rng,
                scratch,
            );
            let bwd = route_with_scratch(
                &state.dag_bwd,
                &state.coords_bwd,
                self.target,
                fwd.final_layout,
                config,
                rng,
                scratch,
            );
            layout = bwd.final_layout;
        }
        layout
    }

    /// One layout trial: seed a layout via the mix-selected strategy,
    /// refine it, and run the configured routing trials. The trial's
    /// entire stream of randomness comes from its [`SeedSchedule`] seed,
    /// so the result is a pure function of `(trial, mirage, opts)` — the
    /// caller-provided scratch is working storage only.
    fn one_layout_trial(
        &self,
        trial: usize,
        mirage: bool,
        opts: &TrialOptions,
        scratch: &mut RouterScratch,
    ) -> TrialResult {
        let mut rng = Rng::new(SeedSchedule::new(opts.seed).trial_seed(trial));
        let kind = StrategyKind::for_trial(trial, opts.layout_trials, &opts.strategy_mix);
        // Only Vf2Embed can decline (no embedding); fall back to random
        // seeding so the trial budget is never wasted. Vf2Embed proposals
        // go through the engine-level cache — the strategy is
        // deterministic, so per-trial re-searches would be pure waste.
        let proposed = if kind == StrategyKind::Vf2Embed {
            self.vf2_layout()
        } else {
            kind.strategy().propose(&self.ctx, &mut rng)
        };
        let layout = proposed.unwrap_or_else(|| {
            Layout::random(self.ctx.n_logical(), self.ctx.n_physical(), &mut rng)
        });

        // Two refinements per layout trial: a mirror-free one (placements
        // that suit the A0 safety net and conservative trials) and, for
        // MIRAGE, a mirror-aware one (the paper runs MIRAGE inside
        // SABRELayout). Ablations show each wins on different circuits —
        // qft-family placements improve markedly under mirror-aware
        // refinement while ripple-adder placements degrade — so routing
        // trials are spread over both and post-selection arbitrates.
        let plain = self.refine_layout(
            &RouterConfig::default(),
            layout.clone(),
            opts.fwd_bwd_iters,
            &mut rng,
            scratch,
        );
        let mirrored = if mirage {
            self.refine_layout(
                &RouterConfig {
                    aggression: Some(Aggression::A1),
                    ..RouterConfig::default()
                },
                layout,
                opts.fwd_bwd_iters,
                &mut rng,
                scratch,
            )
        } else {
            plain.clone()
        };

        let state = self.routing_state();
        let routed = (0..opts.routing_trials)
            .map(|t| {
                let aggression = if mirage {
                    Some(aggression_for_trial(
                        t,
                        opts.routing_trials,
                        &opts.aggression_mix,
                    ))
                } else {
                    None
                };
                let mut config = RouterConfig {
                    aggression,
                    ..RouterConfig::default()
                };
                if let Some(lambda) = opts.mirror_lambda {
                    config.mirror_heuristic_weight = lambda;
                }
                let mut trial_rng = rng.spawn();
                // A0 trials anchor on the mirror-free placement; the rest
                // alternate between the two refinements.
                let start = if aggression == Some(Aggression::A0) || t % 2 == 0 {
                    plain.clone()
                } else {
                    mirrored.clone()
                };
                let mut routed = route_with_scratch(
                    &state.dag_fwd,
                    &state.coords_fwd,
                    self.target,
                    start,
                    &config,
                    &mut trial_rng,
                    scratch,
                );
                if mirage && aggression != Some(Aggression::A0) {
                    // Mirage-SWAP absorption: fold leftover SWAPs that sit
                    // next to a same-pair gate into mirror blocks.
                    let (fused_circuit, fused) =
                        crate::router::absorb_adjacent_swaps(&routed.circuit);
                    routed.circuit = fused_circuit;
                    routed.swaps_inserted -= fused;
                    routed.mirrors_accepted += fused;
                    routed.mirror_candidates += fused;
                }
                routed
            })
            .collect();
        (kind, routed)
    }

    /// Run the full trial loop; like [`TrialEngine::run`] but also reports
    /// which strategy seeded the winner and how many candidates were
    /// scored (the `layout_strategies` experiment consumes this).
    ///
    /// # Determinism
    ///
    /// Parallel runs are bit-identical to serial runs at every thread
    /// count. Two invariants make that hold:
    ///
    /// 1. **Pre-split seeds.** Each trial's randomness is a pure function
    ///    of `(opts.seed, trial index)` via [`SeedSchedule`]; which worker
    ///    runs a trial (and when) cannot influence its stream.
    /// 2. **Fixed reduction order.** Results land in trial-indexed slots
    ///    and are flattened in index order before the `min_by` below — and
    ///    `min_by` keeps the *first* of equal minima, so ties break by
    ///    trial index, never by completion order or pool size.
    ///
    /// # Errors
    ///
    /// [`TranspileError::InvalidTrialMix`] when either mix in `opts` is
    /// mis-normalized (see [`TrialOptions::validate`]).
    pub fn run_detailed(
        &self,
        mirage: bool,
        opts: &TrialOptions,
    ) -> Result<TrialOutcome, TranspileError> {
        opts.validate()?;
        let n = opts.layout_trials;
        let workers = if opts.parallel {
            opts.effective_threads().min(n).max(1)
        } else {
            1
        };
        // Trial-indexed result slots: whatever order workers finish in,
        // the reduction below reads them back in trial order.
        let mut slots: Vec<Option<TrialResult>> = (0..n).map(|_| None).collect();
        if workers > 1 {
            // Warm the lazy precomputes on this thread so workers never
            // race to build them (OnceLock would dedupe anyway; this just
            // keeps the work off the timed region).
            let _ = self.routing_state();
            let next = std::sync::atomic::AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, TrialResult)>> = std::thread::scope(|s| {
                let next = &next;
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(move || {
                            // One pooled scratch per worker for its
                            // whole run of trials.
                            let mut scratch = self.checkout_scratch();
                            let mut local = Vec::new();
                            loop {
                                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if t >= n {
                                    break;
                                }
                                local.push((
                                    t,
                                    self.one_layout_trial(t, mirage, opts, &mut scratch),
                                ));
                            }
                            self.return_scratch(scratch);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("routing thread panicked"))
                    .collect()
            });
            for (t, result) in per_worker.into_iter().flatten() {
                slots[t] = Some(result);
            }
        } else {
            let mut scratch = self.checkout_scratch();
            for (t, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.one_layout_trial(t, mirage, opts, &mut scratch));
            }
            self.return_scratch(scratch);
        }
        let mut tagged: Vec<(StrategyKind, RoutedCircuit)> = Vec::new();
        for slot in slots {
            let (kind, routed) = slot.expect("every trial index was claimed by a worker");
            tagged.extend(routed.into_iter().map(|r| (kind, r)));
        }
        let candidates = tagged.len();
        let (strategy, best) = tagged
            .into_iter()
            .min_by(|(_, a), (_, b)| {
                score(a, opts.metric, self.target).total_cmp(&score(b, opts.metric, self.target))
            })
            .expect("at least one trial ran");
        Ok(TrialOutcome {
            best,
            strategy,
            candidates,
        })
    }

    /// Run the full trial loop and return the best routed circuit under
    /// the metric. `mirage = false` gives the SABRE baseline (no mirrors;
    /// the metric should be [`Metric::SwapCount`] for a faithful
    /// baseline).
    ///
    /// # Errors
    ///
    /// [`TranspileError::InvalidTrialMix`] when either mix in `opts` is
    /// mis-normalized.
    pub fn run(&self, mirage: bool, opts: &TrialOptions) -> Result<RoutedCircuit, TranspileError> {
        self.run_detailed(mirage, opts).map(|outcome| outcome.best)
    }
}

/// Run the full trial loop and return the best routed circuit under the
/// metric — the classic free-function view of [`TrialEngine`].
///
/// # Panics
///
/// Panics when `opts` carries a mis-normalized trial mix; construct a
/// [`TrialEngine`] (or go through `transpile`) for a `Result` instead.
pub fn route_with_trials(
    circuit: &Circuit,
    target: &Target,
    mirage: bool,
    opts: &TrialOptions,
) -> RoutedCircuit {
    TrialEngine::new(circuit, target)
        .run(mirage, opts)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_routed;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::two_local_full;
    use mirage_topology::CouplingMap;

    const PAPER_MIX: [f64; 4] = [0.05, 0.45, 0.45, 0.05];

    #[test]
    fn aggression_mix_banding() {
        let total = 20;
        let counts = (0..total).fold([0usize; 4], |mut acc, t| {
            match aggression_for_trial(t, total, &PAPER_MIX) {
                Aggression::A0 => acc[0] += 1,
                Aggression::A1 => acc[1] += 1,
                Aggression::A2 => acc[2] += 1,
                Aggression::A3 => acc[3] += 1,
            }
            acc
        });
        assert_eq!(counts, [1, 9, 9, 1], "paper's 5/45/45/5 on 20 trials");
        // Small trial counts still include every configured level.
        let counts8 = aggression_counts(8, &PAPER_MIX);
        assert!(counts8.iter().all(|&c| c >= 1), "{counts8:?}");
        assert_eq!(counts8.iter().sum::<usize>(), 8);
    }

    #[test]
    fn aggression_counts_single_trial_with_paper_mix() {
        // total = 1 with four nonzero shares: every level first claims its
        // at-least-one slot (assigned = 4), then reconciliation must shed
        // three without panicking; the surviving slot belongs to a main
        // strategy, not the 5% tails.
        let counts = aggression_counts(1, &PAPER_MIX);
        assert_eq!(counts.iter().sum::<usize>(), 1, "{counts:?}");
        assert_eq!(counts[1] + counts[2], 1, "tails dropped first: {counts:?}");
        // And the trial-to-level map agrees with the counts.
        let level = aggression_for_trial(0, 1, &PAPER_MIX);
        assert!(matches!(level, Aggression::A1 | Aggression::A2));
    }

    #[test]
    fn aggression_counts_two_trials_with_paper_mix() {
        let counts = aggression_counts(2, &PAPER_MIX);
        assert_eq!(counts.iter().sum::<usize>(), 2, "{counts:?}");
        // The small shares (A0/A3) are dropped before the main strategies.
        assert_eq!(counts[1] + counts[2], 2, "{counts:?}");
    }

    #[test]
    fn aggression_counts_all_zero_mix() {
        // A degenerate all-zero mix must still produce exactly `total`
        // trials (no level gets the at-least-one guarantee, so the
        // surplus-distribution loop alone fills the bands).
        for total in [1usize, 2, 7, 20] {
            let counts = aggression_counts(total, &[0.0; 4]);
            assert_eq!(counts.iter().sum::<usize>(), total, "{counts:?}");
        }
        // The trial mapper stays total as well.
        let _ = aggression_for_trial(0, 1, &[0.0; 4]);
        let _ = aggression_for_trial(19, 20, &[0.0; 4]);
    }

    #[test]
    fn mix_counts_generalizes_beyond_four_lanes() {
        let counts = mix_counts(10, &[0.5, 0.25, 0.25]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts[0], 5);
        assert!(counts[1].min(counts[2]) == 2 && counts[1].max(counts[2]) == 3);
        let counts = mix_counts(3, &[0.9, 0.05, 0.03, 0.01, 0.01]);
        assert_eq!(counts.iter().sum::<usize>(), 3, "{counts:?}");
        assert!(counts[0] >= 1);
    }

    #[test]
    fn invalid_mixes_rejected_with_clean_errors() {
        let mut opts = TrialOptions::quick(Metric::Depth, 1);
        opts.aggression_mix = [0.5, 0.5, 0.5, 0.5];
        let err = opts.validate().unwrap_err();
        assert!(matches!(
            err,
            TranspileError::InvalidTrialMix {
                which: "aggression_mix",
                ..
            }
        ));
        assert!(err.to_string().contains("sum to 2"), "{err}");

        let mut opts = TrialOptions::quick(Metric::Depth, 1);
        opts.strategy_mix = [1.5, -0.5, 0.0, 0.0, 0.0];
        let err = opts.validate().unwrap_err();
        assert!(matches!(
            err,
            TranspileError::InvalidTrialMix {
                which: "strategy_mix",
                ..
            }
        ));

        let mut opts = TrialOptions::quick(Metric::Depth, 1);
        opts.strategy_mix = [f64::NAN, 0.5, 0.5, 0.0, 0.0];
        assert!(opts.validate().is_err());

        // The engine surfaces the same error instead of mis-allocating.
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 7));
        let mut opts = TrialOptions::quick(Metric::Depth, 1);
        opts.aggression_mix = [0.0; 4];
        let engine = TrialEngine::new(&c, &target);
        assert!(engine.run(true, &opts).is_err());

        // And slight float noise passes.
        let mut opts = TrialOptions::quick(Metric::Depth, 1);
        opts.aggression_mix = [0.1, 0.2, 0.3, 0.4 + 1e-9];
        opts.validate().unwrap();
    }

    #[test]
    fn trials_return_valid_routing() {
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 7));
        let r = route_with_trials(&c, &target, true, &TrialOptions::quick(Metric::Depth, 1));
        assert!(verify_routed(&c, &r, &target));
    }

    #[test]
    fn depth_metric_never_worse_than_random_trial() {
        let target = Target::sqrt_iswap(CouplingMap::line(5));
        let c = consolidate(&two_local_full(5, 2, 8));
        let best = route_with_trials(&c, &target, true, &TrialOptions::quick(Metric::Depth, 2));
        // The selected candidate's depth must be ≤ a fresh single trial's.
        let single = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions {
                layout_trials: 1,
                routing_trials: 1,
                ..TrialOptions::quick(Metric::Depth, 3)
            },
        );
        let d_best = target.depth_estimate(&best.circuit);
        let d_single = target.depth_estimate(&single.circuit);
        assert!(d_best <= d_single + 1e-9, "{d_best} vs {d_single}");
    }

    #[test]
    fn parallel_matches_serial() {
        // Exhaustive thread sweep: every pool size — including more
        // workers than trials — must reproduce the serial result bit for
        // bit.
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 9));
        let mut serial_opts = TrialOptions::quick(Metric::SwapCount, 5);
        serial_opts.parallel = false;
        let a = route_with_trials(&c, &target, false, &serial_opts);
        for threads in [1, 2, 4, 8] {
            let mut parallel_opts = serial_opts.clone();
            parallel_opts.parallel = true;
            parallel_opts.threads = threads;
            let b = route_with_trials(&c, &target, false, &parallel_opts);
            assert_eq!(
                a.circuit, b.circuit,
                "{threads} threads must not change results"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_with_mixed_strategies() {
        // Strategy selection is by trial index, so threading must not
        // change which strategy seeds which trial (or the result) — at
        // any pool size.
        let topo = CouplingMap::grid(2, 3);
        let cal = crate::calibration::Calibration::synthetic(&topo, &mut Rng::new(0xABC));
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let c = consolidate(&two_local_full(5, 1, 8));
        let mut opts = TrialOptions::quick(Metric::EstimatedSuccess, 5)
            .with_strategy_mix(crate::placement::BALANCED_STRATEGY_MIX);
        opts.layout_trials = 5;
        let engine = TrialEngine::new(&c, &target);
        let serial = engine.run_detailed(true, &opts).unwrap();
        assert_eq!(serial.candidates, 5 * opts.routing_trials);
        for threads in [1, 2, 4, 8] {
            opts.parallel = true;
            opts.threads = threads;
            let parallel = engine.run_detailed(true, &opts).unwrap();
            assert_eq!(serial.best.circuit, parallel.best.circuit);
            assert_eq!(serial.strategy, parallel.strategy);
            assert_eq!(serial.candidates, parallel.candidates);
        }
    }

    #[test]
    fn seed_schedule_is_a_pure_function_of_master_and_index() {
        // Pure in the strongest sense: recomputing any (master, trial)
        // pair — in any order, interleaved with other queries — always
        // returns the same seed, and distinct trial indices never
        // collide. Inserting or reordering trials therefore cannot shift
        // another trial's stream.
        let masters = [0u64, 1, 0x5EED, u64::MAX, 0xDEADBEEF];
        for &m in &masters {
            let schedule = SeedSchedule::new(m);
            let forward: Vec<u64> = (0..64).map(|t| schedule.trial_seed(t)).collect();
            let backward: Vec<u64> = (0..64).rev().map(|t| schedule.trial_seed(t)).collect();
            for (t, (&f, &b)) in forward.iter().zip(backward.iter().rev()).enumerate() {
                assert_eq!(f, b, "master {m:#X} trial {t}: query order leaked in");
                assert_eq!(
                    f,
                    SeedSchedule::new(m).trial_seed(t),
                    "fresh schedule instance must agree"
                );
            }
            let mut sorted = forward.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), forward.len(), "seed collision under {m:#X}");
        }
        // Distinct masters produce distinct schedules (XOR is injective
        // in the master for a fixed trial).
        assert_ne!(
            SeedSchedule::new(1).trial_seed(0),
            SeedSchedule::new(2).trial_seed(0)
        );
    }

    #[test]
    fn seed_schedule_pinned_for_known_master() {
        // Regression pin: this exact derivation feeds every golden trials
        // fingerprint in tests/golden_routing.rs. If this test fails, the
        // goldens are about to fail too — do not re-pin one without the
        // other.
        let schedule = SeedSchedule::new(0xDEADBEEF);
        let expected: [u64; 4] = [0xDEAD20D8, 0xDFAD20D8, 0xDCAD20D8, 0xDDAD20D8];
        for (t, &want) in expected.iter().enumerate() {
            assert_eq!(schedule.trial_seed(t), want, "trial {t}");
        }
    }

    #[test]
    fn estimated_success_metric_post_selects() {
        let topo = CouplingMap::line(5);
        let cal = crate::calibration::Calibration::synthetic(&topo, &mut Rng::new(0x5EED));
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let c = consolidate(&two_local_full(5, 1, 8));
        let best = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions::quick(Metric::EstimatedSuccess, 3),
        );
        assert!(verify_routed(&c, &best, &target));
        let s = best.estimated_success(&target);
        assert!(s > 0.0 && s < 1.0, "noisy device: 0 < {s} < 1");
        // Post-selection must beat (or tie) a single fresh trial.
        let single = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions {
                layout_trials: 1,
                routing_trials: 1,
                ..TrialOptions::quick(Metric::EstimatedSuccess, 4)
            },
        );
        assert!(
            best.log_success(&target) >= single.log_success(&target) - 1e-9,
            "{} vs {}",
            best.log_success(&target),
            single.log_success(&target)
        );
    }

    #[test]
    fn zero_error_calibration_gives_certain_success() {
        // Uniform (zero-error) calibration: EstimatedSuccess degenerates to
        // probability 1 for every candidate, and routing still verifies.
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 7));
        let r = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions::quick(Metric::EstimatedSuccess, 5),
        );
        assert!(verify_routed(&c, &r, &target));
        assert_eq!(r.estimated_success(&target), 1.0);
    }

    #[test]
    fn sabre_baseline_accepts_no_mirrors() {
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 10));
        let r = route_with_trials(
            &c,
            &target,
            false,
            &TrialOptions::quick(Metric::SwapCount, 6),
        );
        assert_eq!(r.mirrors_accepted, 0);
        assert_eq!(r.mirror_candidates, 0);
    }

    #[test]
    fn every_strategy_routes_verifiably() {
        // Each one-hot strategy mix produces a valid routed circuit, and
        // run_detailed attributes the winner to that strategy.
        let topo = CouplingMap::grid(2, 3);
        let cal = crate::calibration::Calibration::synthetic(&topo, &mut Rng::new(0x717));
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let c = consolidate(&two_local_full(4, 1, 7));
        let engine = TrialEngine::new(&c, &target);
        for kind in StrategyKind::ALL {
            let opts = TrialOptions::quick(Metric::EstimatedSuccess, 9).with_strategy(kind);
            let outcome = engine.run_detailed(true, &opts).unwrap();
            assert!(
                verify_routed(&c, &outcome.best, &target),
                "{} routed invalidly",
                kind.name()
            );
            assert_eq!(outcome.strategy, kind);
        }
    }
}
