//! Layout search, independent routing trials, and post-selection.
//!
//! The paper's configuration (§V): 20 independent layout trials, each
//! refined by 4 forward–backward routing passes (SABRE layout), then
//! independent routing runs whose best result is kept. MIRAGE changes the
//! post-selection metric from *fewest SWAPs* to *shortest duration-weighted
//! critical path* (§IV-B) and spreads routing trials across aggression
//! levels 5% / 45% / 45% / 5% (§IV-C). On calibrated targets a third
//! metric, [`Metric::EstimatedSuccess`], post-selects on the predicted
//! success probability instead — the quantity the paper compares on real
//! hardware.

use crate::layout::Layout;
use crate::router::{node_coords, route, Aggression, RoutedCircuit, RouterConfig};
use crate::target::Target;
use mirage_circuit::{Circuit, Dag};
use mirage_math::Rng;

/// Post-selection metric across routing trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fewest SWAPs inserted (the Qiskit/SABRE baseline metric).
    SwapCount,
    /// Shortest duration-weighted critical path (MIRAGE-Depth, §IV-B).
    Depth,
    /// Highest estimated success probability under the target's
    /// [`Calibration`](crate::calibration::Calibration): the log-fidelity
    /// product over every routed gate (edge errors priced per basis
    /// application, so SWAPs pay 3 CNOTs / 3 √iSWAPs and accepted mirrors
    /// only their own cost) plus readout on the logical qubits' final
    /// homes. The noise-aware analogue of the paper's Table III hardware
    /// comparison.
    EstimatedSuccess,
}

/// Trial-loop configuration.
#[derive(Debug, Clone)]
pub struct TrialOptions {
    /// Independent random initial layouts.
    pub layout_trials: usize,
    /// Forward–backward refinement passes per layout.
    pub fwd_bwd_iters: usize,
    /// Independent final routing runs per layout.
    pub routing_trials: usize,
    /// Post-selection metric.
    pub metric: Metric,
    /// Fraction of routing trials at each aggression level (A0..A3);
    /// ignored by the SABRE baseline.
    pub aggression_mix: [f64; 4],
    /// Base RNG seed.
    pub seed: u64,
    /// Run layout trials on threads.
    pub parallel: bool,
    /// Override for the mirror-decision weight λ (None = engine default).
    pub mirror_lambda: Option<f64>,
}

impl TrialOptions {
    /// The paper's full configuration (expensive; use in benches).
    pub fn paper(metric: Metric, seed: u64) -> TrialOptions {
        TrialOptions {
            layout_trials: 20,
            fwd_bwd_iters: 4,
            routing_trials: 20,
            metric,
            aggression_mix: [0.05, 0.45, 0.45, 0.05],
            seed,
            parallel: true,
            mirror_lambda: None,
        }
    }

    /// A light configuration for tests and examples.
    pub fn quick(metric: Metric, seed: u64) -> TrialOptions {
        TrialOptions {
            layout_trials: 4,
            fwd_bwd_iters: 2,
            routing_trials: 4,
            metric,
            aggression_mix: [0.05, 0.45, 0.45, 0.05],
            seed,
            parallel: false,
            mirror_lambda: None,
        }
    }
}

fn score(r: &RoutedCircuit, metric: Metric, target: &Target) -> f64 {
    match metric {
        Metric::SwapCount => r.swaps_inserted as f64,
        Metric::Depth => target.depth_estimate(&r.circuit),
        // Trials minimize the score, so the negated log-success ranks the
        // most-likely-to-succeed candidate first.
        Metric::EstimatedSuccess => -r.log_success(target),
    }
}

/// Trial counts per aggression level for `total` routing trials under the
/// mix. Every level with a nonzero share gets **at least one** trial —
/// in particular A0 (the mirror-free safety net) is always in the candidate
/// pool, so depth post-selection can never do worse than the baseline plus
/// trial noise.
pub fn aggression_counts(total: usize, mix: &[f64; 4]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    let mut assigned = 0usize;
    for (i, &share) in mix.iter().enumerate() {
        if share > 0.0 {
            counts[i] = ((share * total as f64).floor() as usize).max(1);
            assigned += counts[i];
        }
    }
    // Reconcile to exactly `total`: trim the largest shares first while
    // they have spares, then drop the smallest shares entirely (with fewer
    // trials than configured levels, some level must lose its slot).
    while assigned > total {
        let i = (0..4)
            .filter(|&i| counts[i] > 1)
            .max_by(|&a, &b| mix[a].total_cmp(&mix[b]))
            .or_else(|| {
                (0..4)
                    .filter(|&i| counts[i] > 0)
                    .min_by(|&a, &b| mix[a].total_cmp(&mix[b]))
            })
            .expect("assigned > 0 implies a nonzero count");
        counts[i] -= 1;
        assigned -= 1;
    }
    while assigned < total {
        let i = (0..4)
            .max_by(|&a, &b| {
                let da = mix[a] * total as f64 - counts[a] as f64;
                let db = mix[b] * total as f64 - counts[b] as f64;
                da.total_cmp(&db)
            })
            .expect("four bands");
        counts[i] += 1;
        assigned += 1;
    }
    counts
}

/// Assign an aggression level to routing-trial `t` of `total` according to
/// the mix (via [`aggression_counts`], so every configured level appears).
pub fn aggression_for_trial(t: usize, total: usize, mix: &[f64; 4]) -> Aggression {
    let counts = aggression_counts(total.max(1), mix);
    let mut upto = 0usize;
    for (band, &n) in counts.iter().enumerate() {
        upto += n;
        if t < upto {
            return match band {
                0 => Aggression::A0,
                1 => Aggression::A1,
                2 => Aggression::A2,
                _ => Aggression::A3,
            };
        }
    }
    Aggression::A3
}

/// SABRE layout refinement: route forward, then backward over the reversed
/// circuit, feeding each final layout into the next pass. Cost queries go
/// through the target's shared cache — no per-refinement cache exists.
#[allow(clippy::too_many_arguments)]
fn refine_layout(
    dag_fwd: &Dag,
    dag_bwd: &Dag,
    coords_fwd: &[Option<mirage_weyl::coords::WeylCoord>],
    coords_bwd: &[Option<mirage_weyl::coords::WeylCoord>],
    target: &Target,
    config: &RouterConfig,
    mut layout: Layout,
    iters: usize,
    rng: &mut Rng,
) -> Layout {
    for _ in 0..iters {
        let fwd = route(dag_fwd, coords_fwd, target, layout, config, rng);
        let bwd = route(dag_bwd, coords_bwd, target, fwd.final_layout, config, rng);
        layout = bwd.final_layout;
    }
    layout
}

/// Run the full trial loop and return the best routed circuit under the
/// metric. `mirage = false` gives the SABRE baseline (no mirrors, metric
/// should be [`Metric::SwapCount`] for a faithful baseline).
pub fn route_with_trials(
    circuit: &Circuit,
    target: &Target,
    mirage: bool,
    opts: &TrialOptions,
) -> RoutedCircuit {
    let dag_fwd = Dag::from_circuit(circuit);
    let reversed = circuit.reversed();
    let dag_bwd = Dag::from_circuit(&reversed);
    let coords_fwd = node_coords(&dag_fwd);
    let coords_bwd = node_coords(&dag_bwd);

    let one_layout_trial = |trial: usize| -> Vec<RoutedCircuit> {
        let mut rng = Rng::new(opts.seed ^ (0x9E37 + trial as u64 * 0x100_0000));
        let layout = Layout::random(circuit.n_qubits, target.n_qubits(), &mut rng);

        // Two refinements per layout trial: a mirror-free one (placements
        // that suit the A0 safety net and conservative trials) and, for
        // MIRAGE, a mirror-aware one (the paper runs MIRAGE inside
        // SABRELayout). Ablations show each wins on different circuits —
        // qft-family placements improve markedly under mirror-aware
        // refinement while ripple-adder placements degrade — so routing
        // trials are spread over both and post-selection arbitrates.
        let plain = refine_layout(
            &dag_fwd,
            &dag_bwd,
            &coords_fwd,
            &coords_bwd,
            target,
            &RouterConfig::default(),
            layout.clone(),
            opts.fwd_bwd_iters,
            &mut rng,
        );
        let mirrored = if mirage {
            refine_layout(
                &dag_fwd,
                &dag_bwd,
                &coords_fwd,
                &coords_bwd,
                target,
                &RouterConfig {
                    aggression: Some(Aggression::A1),
                    ..RouterConfig::default()
                },
                layout,
                opts.fwd_bwd_iters,
                &mut rng,
            )
        } else {
            plain.clone()
        };

        (0..opts.routing_trials)
            .map(|t| {
                let aggression = if mirage {
                    Some(aggression_for_trial(
                        t,
                        opts.routing_trials,
                        &opts.aggression_mix,
                    ))
                } else {
                    None
                };
                let mut config = RouterConfig {
                    aggression,
                    ..RouterConfig::default()
                };
                if let Some(lambda) = opts.mirror_lambda {
                    config.mirror_heuristic_weight = lambda;
                }
                let mut trial_rng = rng.spawn();
                // A0 trials anchor on the mirror-free placement; the rest
                // alternate between the two refinements.
                let start = if aggression == Some(Aggression::A0) || t % 2 == 0 {
                    plain.clone()
                } else {
                    mirrored.clone()
                };
                let mut routed = route(
                    &dag_fwd,
                    &coords_fwd,
                    target,
                    start,
                    &config,
                    &mut trial_rng,
                );
                if mirage && aggression != Some(Aggression::A0) {
                    // Mirage-SWAP absorption: fold leftover SWAPs that sit
                    // next to a same-pair gate into mirror blocks.
                    let (fused_circuit, fused) =
                        crate::router::absorb_adjacent_swaps(&routed.circuit);
                    routed.circuit = fused_circuit;
                    routed.swaps_inserted -= fused;
                    routed.mirrors_accepted += fused;
                    routed.mirror_candidates += fused;
                }
                routed
            })
            .collect()
    };

    let mut candidates: Vec<RoutedCircuit> = Vec::new();
    if opts.parallel && opts.layout_trials > 1 {
        let results: Vec<Vec<RoutedCircuit>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..opts.layout_trials)
                .map(|t| s.spawn(move || one_layout_trial(t)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("routing thread panicked"))
                .collect()
        });
        for r in results {
            candidates.extend(r);
        }
    } else {
        for t in 0..opts.layout_trials {
            candidates.extend(one_layout_trial(t));
        }
    }

    candidates
        .into_iter()
        .min_by(|a, b| score(a, opts.metric, target).total_cmp(&score(b, opts.metric, target)))
        .expect("at least one trial ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_routed;
    use mirage_circuit::consolidate::consolidate;
    use mirage_circuit::generators::two_local_full;
    use mirage_topology::CouplingMap;

    const PAPER_MIX: [f64; 4] = [0.05, 0.45, 0.45, 0.05];

    #[test]
    fn aggression_mix_banding() {
        let total = 20;
        let counts = (0..total).fold([0usize; 4], |mut acc, t| {
            match aggression_for_trial(t, total, &PAPER_MIX) {
                Aggression::A0 => acc[0] += 1,
                Aggression::A1 => acc[1] += 1,
                Aggression::A2 => acc[2] += 1,
                Aggression::A3 => acc[3] += 1,
            }
            acc
        });
        assert_eq!(counts, [1, 9, 9, 1], "paper's 5/45/45/5 on 20 trials");
        // Small trial counts still include every configured level.
        let counts8 = aggression_counts(8, &PAPER_MIX);
        assert!(counts8.iter().all(|&c| c >= 1), "{counts8:?}");
        assert_eq!(counts8.iter().sum::<usize>(), 8);
    }

    #[test]
    fn aggression_counts_single_trial_with_paper_mix() {
        // total = 1 with four nonzero shares: every level first claims its
        // at-least-one slot (assigned = 4), then reconciliation must shed
        // three without panicking; the surviving slot belongs to a main
        // strategy, not the 5% tails.
        let counts = aggression_counts(1, &PAPER_MIX);
        assert_eq!(counts.iter().sum::<usize>(), 1, "{counts:?}");
        assert_eq!(counts[1] + counts[2], 1, "tails dropped first: {counts:?}");
        // And the trial-to-level map agrees with the counts.
        let level = aggression_for_trial(0, 1, &PAPER_MIX);
        assert!(matches!(level, Aggression::A1 | Aggression::A2));
    }

    #[test]
    fn aggression_counts_two_trials_with_paper_mix() {
        let counts = aggression_counts(2, &PAPER_MIX);
        assert_eq!(counts.iter().sum::<usize>(), 2, "{counts:?}");
        // The small shares (A0/A3) are dropped before the main strategies.
        assert_eq!(counts[1] + counts[2], 2, "{counts:?}");
    }

    #[test]
    fn aggression_counts_all_zero_mix() {
        // A degenerate all-zero mix must still produce exactly `total`
        // trials (no level gets the at-least-one guarantee, so the
        // surplus-distribution loop alone fills the bands).
        for total in [1usize, 2, 7, 20] {
            let counts = aggression_counts(total, &[0.0; 4]);
            assert_eq!(counts.iter().sum::<usize>(), total, "{counts:?}");
        }
        // The trial mapper stays total as well.
        let _ = aggression_for_trial(0, 1, &[0.0; 4]);
        let _ = aggression_for_trial(19, 20, &[0.0; 4]);
    }

    #[test]
    fn trials_return_valid_routing() {
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 7));
        let r = route_with_trials(&c, &target, true, &TrialOptions::quick(Metric::Depth, 1));
        assert!(verify_routed(&c, &r, &target));
    }

    #[test]
    fn depth_metric_never_worse_than_random_trial() {
        let target = Target::sqrt_iswap(CouplingMap::line(5));
        let c = consolidate(&two_local_full(5, 2, 8));
        let best = route_with_trials(&c, &target, true, &TrialOptions::quick(Metric::Depth, 2));
        // The selected candidate's depth must be ≤ a fresh single trial's.
        let single = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions {
                layout_trials: 1,
                routing_trials: 1,
                ..TrialOptions::quick(Metric::Depth, 3)
            },
        );
        let d_best = target.depth_estimate(&best.circuit);
        let d_single = target.depth_estimate(&single.circuit);
        assert!(d_best <= d_single + 1e-9, "{d_best} vs {d_single}");
    }

    #[test]
    fn parallel_matches_serial() {
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 9));
        let mut serial_opts = TrialOptions::quick(Metric::SwapCount, 5);
        serial_opts.parallel = false;
        let mut parallel_opts = serial_opts.clone();
        parallel_opts.parallel = true;
        let a = route_with_trials(&c, &target, false, &serial_opts);
        let b = route_with_trials(&c, &target, false, &parallel_opts);
        assert_eq!(a.circuit, b.circuit, "parallelism must not change results");
    }

    #[test]
    fn estimated_success_metric_post_selects() {
        let topo = CouplingMap::line(5);
        let cal = crate::calibration::Calibration::synthetic(&topo, &mut Rng::new(0x5EED));
        let target = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let c = consolidate(&two_local_full(5, 1, 8));
        let best = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions::quick(Metric::EstimatedSuccess, 3),
        );
        assert!(verify_routed(&c, &best, &target));
        let s = best.estimated_success(&target);
        assert!(s > 0.0 && s < 1.0, "noisy device: 0 < {s} < 1");
        // Post-selection must beat (or tie) a single fresh trial.
        let single = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions {
                layout_trials: 1,
                routing_trials: 1,
                ..TrialOptions::quick(Metric::EstimatedSuccess, 4)
            },
        );
        assert!(
            best.log_success(&target) >= single.log_success(&target) - 1e-9,
            "{} vs {}",
            best.log_success(&target),
            single.log_success(&target)
        );
    }

    #[test]
    fn zero_error_calibration_gives_certain_success() {
        // Uniform (zero-error) calibration: EstimatedSuccess degenerates to
        // probability 1 for every candidate, and routing still verifies.
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 7));
        let r = route_with_trials(
            &c,
            &target,
            true,
            &TrialOptions::quick(Metric::EstimatedSuccess, 5),
        );
        assert!(verify_routed(&c, &r, &target));
        assert_eq!(r.estimated_success(&target), 1.0);
    }

    #[test]
    fn sabre_baseline_accepts_no_mirrors() {
        let target = Target::sqrt_iswap(CouplingMap::line(4));
        let c = consolidate(&two_local_full(4, 1, 10));
        let r = route_with_trials(
            &c,
            &target,
            false,
            &TrialOptions::quick(Metric::SwapCount, 6),
        );
        assert_eq!(r.mirrors_accepted, 0);
        assert_eq!(r.mirror_candidates, 0);
    }
}
