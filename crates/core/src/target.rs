//! The transpilation target: one object describing the device being
//! compiled for.
//!
//! The seed threaded `(CouplingMap, Arc<CoverageSet>, CostCache, mirror
//! flag)` tuples ad-hoc through pipeline → trials → router → bench, and
//! rebuilt fresh cost caches inside every pipeline branch. [`Target`]
//! replaces that plumbing with a single immutable-after-construction
//! object owning:
//!
//! * the [`CouplingMap`] connectivity graph,
//! * the basis gate ([`BasisGate`]) the device natively executes,
//! * the per-depth [`CoverageSet`] for that basis — resolved **lazily** on
//!   first cost query, since topology-only work (VF2 embedding, SWAP-only
//!   routing baselines) never needs it; the stock bases (√iSWAP, CNOT, CZ)
//!   load a checked-in coverage atlas (`mirage_coverage::atlas`) instead
//!   of re-running sampling + quickhull, falling back to a fresh build
//!   when the atlas is missing or stale,
//! * an [`Arc<Calibration>`] — per-edge 2Q durations and error rates,
//!   per-qubit 1Q durations/errors and readout errors — that drives
//!   duration weights ([`Target::duration_weight`]) and success estimates
//!   ([`Target::estimated_success`]); stock constructors start from
//!   [`Calibration::uniform`], which reproduces the paper's idealized
//!   device exactly, [`Target::with_calibration`] swaps in measured data at
//!   construction, and [`Target::swap_calibration`] **hot-swaps** it on a
//!   live shared target (see below), and
//! * one process-wide-shareable sharded [`SharedCostCache`] consulted by
//!   every routing trial, refinement pass, and metric computation.
//!
//! `Target` is `Send + Sync`; routing trials running on scoped threads
//! share one instance by reference, and a serving process
//! (`mirage_serve::TranspileService`) shares one `Arc<Target>` across its
//! whole worker pool. Cached coordinate costs are pure functions of the
//! coordinate class, so sharing never changes results.
//!
//! # Calibration hot-swap
//!
//! Real devices drift: a long-lived service must absorb fresh calibration
//! data without rebuilding the target (and with it the lazily built
//! coverage set and the warm cost cache). [`Target::swap_calibration`]
//! does this through `&self`: it validates that the new calibration covers
//! every coupler, publishes it, and bumps the **calibration generation**
//! ([`Target::calibration_generation`]). Per-edge costs cached in the
//! [`SharedCostCache`] are epoch-tagged, and the swap advances the cache
//! epoch, so a warm cache can never serve a cost computed under a
//! calibration that has since been replaced — while the (much more
//! expensive, calibration-independent) coordinate-class costs stay warm.
//!
//! ```
//! use mirage_core::target::Target;
//! use mirage_topology::CouplingMap;
//!
//! let target = Target::sqrt_iswap(CouplingMap::grid(6, 6));
//! assert_eq!(target.n_qubits(), 36);
//! assert!(!target.coverage_built(), "coverage is lazy");
//! assert_eq!(target.calibration_generation(), 0);
//! ```

use crate::calibration::{Calibration, CalibrationError, QubitCalibration};
use mirage_circuit::{Circuit, Instruction};
use mirage_coverage::cache::{CostMemo, SharedCostCache};
use mirage_coverage::set::{BasisGate, CoverageOptions, CoverageSet};
use mirage_topology::CouplingMap;
use mirage_weyl::coords::{coords_of, WeylCoord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Uniform gate-duration model: the single-knob special case of
/// [`Calibration`].
///
/// Two-qubit gates cost their minimum decomposition duration in the target
/// basis (normalized units, iSWAP = 1.0) scaled by their edge's
/// calibration; single-qubit gates cost [`DurationModel::one_qubit`] on
/// every qubit. The paper treats single-qubit gates as free (§IV-B), which
/// is the default.
///
/// Precedence: [`Target::with_durations`] rewrites the 1Q durations of the
/// target's **current** calibration — the calibration is the single source
/// of truth, and whichever of `with_durations` / `with_calibration` runs
/// last wins.
#[derive(Debug, Clone, Copy)]
pub struct DurationModel {
    /// Duration charged per single-qubit gate.
    pub one_qubit: f64,
}

impl Default for DurationModel {
    /// Derived from the ideal qubit of [`Calibration::uniform`]
    /// ([`QubitCalibration::default`]) — one source of truth for "1Q gates
    /// are free".
    fn default() -> Self {
        DurationModel {
            one_qubit: QubitCalibration::default().duration_1q,
        }
    }
}

/// Base capacity of a target's shared cost cache (coordinate classes).
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Per-coupler headroom on top of [`DEFAULT_CACHE_CAPACITY`]: every
/// coupler can hold this many edge-scoped cost entries before any LRU
/// pressure. Without it, a wide device's `(class, edge)` entries would
/// thrash a capacity sized for coordinate classes alone — and evict the
/// expensive polytope-scan entries to make room for cheap multiplies.
const EDGE_CACHE_HEADROOM: usize = 64;

/// Default cost-cache capacity for a device with `n_edges` couplers.
fn default_cache_capacity(n_edges: usize) -> usize {
    DEFAULT_CACHE_CAPACITY + EDGE_CACHE_HEADROOM * n_edges
}

/// The paper-default coverage construction parameters for a standard
/// (mirror-free) costing set.
fn default_coverage_options(seed: u64) -> CoverageOptions {
    CoverageOptions {
        max_k: 3,
        samples_per_k: 1200,
        inflation: 0.012,
        mirrors: false,
        seed,
    }
}

/// The shared default coverage set: √iSWAP, three levels, standard
/// (mirror-free) regions — the costing basis of every paper experiment.
/// Resolved once per process from the checked-in coverage atlas (falling
/// back to a fresh build when the atlas is absent or stale) and shared by
/// every [`Target::sqrt_iswap`].
fn default_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| Arc::new(mirage_coverage::atlas::stock_set("sqrt_iswap")))
        .clone()
}

/// Process-wide CNOT-basis coverage set shared by [`Target::cnot`]
/// (atlas-loaded, like [`default_coverage`]).
fn cnot_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| Arc::new(mirage_coverage::atlas::stock_set("cnot")))
        .clone()
}

/// Process-wide CZ-basis coverage set shared by [`Target::cz`]
/// (atlas-loaded, like [`default_coverage`]).
fn cz_coverage() -> Arc<CoverageSet> {
    static SET: OnceLock<Arc<CoverageSet>> = OnceLock::new();
    SET.get_or_init(|| Arc::new(mirage_coverage::atlas::stock_set("cz")))
        .clone()
}

/// A transpilation target: coupling topology, basis gate, lazily-built
/// coverage set, calibration data, and the shared cost cache.
///
/// See the [module docs](self) for design rationale.
#[derive(Debug)]
pub struct Target {
    topo: CouplingMap,
    basis: BasisGate,
    coverage_opts: CoverageOptions,
    coverage: OnceLock<Arc<CoverageSet>>,
    /// When set, `coverage()` resolves through a process-wide shared set
    /// instead of building a private one (the stock basis constructors use
    /// this so repeated `Target`s never rebuild identical polytopes).
    shared_coverage: Option<fn() -> Arc<CoverageSet>>,
    /// The live calibration. Behind a lock so a serving layer can swap it
    /// on a shared target; scoring paths take one snapshot per computation
    /// (an `Arc` clone), so snapshot-priced terms (1Q weights, all
    /// success/log-fidelity scoring) never mix two calibrations within one
    /// score. Per-edge 2Q costs resolve through the epoch-tagged cache
    /// instead: each entry is internally consistent with exactly one
    /// calibration, and a swap mid-depth-score at worst re-prices later
    /// edges under the new data — it can never serve stale values.
    calibration: RwLock<Arc<Calibration>>,
    /// Bumped by every [`Target::swap_calibration`]; results can record the
    /// generation they were computed under.
    generation: AtomicU64,
    cache: SharedCostCache,
}

impl Target {
    /// A target with an explicit basis and coverage-construction options;
    /// the coverage set is built on first cost query.
    pub fn new(topo: CouplingMap, basis: BasisGate, coverage_opts: CoverageOptions) -> Target {
        let calibration = Arc::new(Calibration::uniform(&topo));
        let cache = SharedCostCache::new(default_cache_capacity(topo.edges().len()));
        Target {
            topo,
            basis,
            coverage_opts,
            coverage: OnceLock::new(),
            shared_coverage: None,
            calibration: RwLock::new(calibration),
            generation: AtomicU64::new(0),
            cache,
        }
    }

    /// A target with a pre-built coverage set (bench binaries construct
    /// full-quality sets up front and share them across targets).
    pub fn with_coverage(topo: CouplingMap, coverage: Arc<CoverageSet>) -> Target {
        let basis = coverage.basis.clone();
        let cell = OnceLock::new();
        cell.set(coverage).expect("fresh cell");
        let calibration = Arc::new(Calibration::uniform(&topo));
        let cache = SharedCostCache::new(default_cache_capacity(topo.edges().len()));
        Target {
            topo,
            basis,
            coverage_opts: CoverageOptions::default(),
            coverage: cell,
            shared_coverage: None,
            calibration: RwLock::new(calibration),
            generation: AtomicU64::new(0),
            cache,
        }
    }

    /// The paper configuration: a √iSWAP-basis device. All `sqrt_iswap`
    /// targets share one process-wide coverage set (built on first use).
    pub fn sqrt_iswap(topo: CouplingMap) -> Target {
        let mut t = Target::new(
            topo,
            BasisGate::iswap_root(2),
            default_coverage_options(0xC0FFEE),
        );
        t.shared_coverage = Some(default_coverage);
        t
    }

    /// A CNOT-basis device (unit-duration CNOT, full chamber at `k = 3`).
    pub fn cnot(topo: CouplingMap) -> Target {
        let mut t = Target::new(topo, BasisGate::cnot(), default_coverage_options(0xC407));
        t.shared_coverage = Some(cnot_coverage);
        t
    }

    /// A CZ-basis device (same canonical class as CNOT; the basis unitary
    /// differs, which matters for pulse translation).
    pub fn cz(topo: CouplingMap) -> Target {
        let mut t = Target::new(topo, BasisGate::cz(), default_coverage_options(0xC2));
        t.shared_coverage = Some(cz_coverage);
        t
    }

    /// Apply a uniform duration model (builder style): every qubit's 1Q
    /// duration in the current calibration is set to
    /// [`DurationModel::one_qubit`]. Per-edge data is untouched; a later
    /// [`Target::with_calibration`] replaces this again — last call wins.
    ///
    /// # Panics
    ///
    /// Panics if `durations.one_qubit` is negative or non-finite (the
    /// calibration layer rejects unphysical durations).
    #[must_use]
    pub fn with_durations(mut self, durations: DurationModel) -> Target {
        let slot = self.calibration.get_mut().expect("calibration poisoned");
        let cal = Arc::make_mut(slot);
        for q in 0..cal.n_qubits() {
            let mut qc = cal.qubit_or_default(q);
            qc.duration_1q = durations.one_qubit;
            cal.set_qubit(q, qc)
                .expect("DurationModel::one_qubit must be finite and non-negative");
        }
        self
    }

    /// Replace the calibration (builder style). Stock constructors start
    /// from [`Calibration::uniform`], which scores identically to the
    /// uncalibrated paper device. For replacing the calibration of a
    /// target that is already **shared** (a live service), use
    /// [`Target::swap_calibration`] instead.
    ///
    /// # Errors
    ///
    /// Rejects calibrations that do not fully cover the topology (width
    /// mismatch or a coupler without an entry), so later per-edge lookups
    /// on routed circuits cannot fail.
    pub fn with_calibration(
        mut self,
        calibration: Calibration,
    ) -> Result<Target, CalibrationError> {
        calibration.validate_for(&self.topo)?;
        *self.calibration.get_mut().expect("calibration poisoned") = Arc::new(calibration);
        // The builder can run on an already-warmed target (e.g. a probed
        // `with_coverage` target): retire any per-edge costs priced under
        // the previous calibration, exactly like a hot swap would.
        self.cache.advance_epoch();
        Ok(self)
    }

    /// Hot-swap the calibration of a **live, shared** target: validate the
    /// new data, publish it, advance the cost-cache epoch (so per-edge
    /// costs computed under the old calibration are never served again),
    /// and bump the calibration generation. Everything already built —
    /// the coverage set, the coordinate-class cost entries, in-flight
    /// [`TrialEngine`](crate::trials::TrialEngine)s — stays warm and keeps
    /// working; only calibration-derived values refresh.
    ///
    /// Returns the new generation. Jobs scored after the swap see the new
    /// calibration; a job mid-flight sees a consistent snapshot per scoring
    /// computation (each takes the `Arc` once), so scores never blend two
    /// calibrations, though different trials of one mid-swap job may land
    /// on different sides of it.
    ///
    /// # Errors
    ///
    /// Rejects calibrations that do not fully cover the topology, exactly
    /// like [`Target::with_calibration`] — a failed swap leaves the current
    /// calibration, generation, and cache untouched.
    pub fn swap_calibration(&self, calibration: Arc<Calibration>) -> Result<u64, CalibrationError> {
        calibration.validate_for(&self.topo)?;
        *self.calibration.write().expect("calibration poisoned") = calibration;
        // Publish the data before advancing the epoch: a reader observing
        // the new epoch can only recompute against the new calibration.
        self.cache.advance_epoch();
        Ok(self.generation.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// The number of calibration swaps this target has absorbed (0 for a
    /// freshly built target). Serving layers record it per job so results
    /// can be attributed to the calibration they were computed under.
    pub fn calibration_generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Replace the shared cost cache with one of the given capacity
    /// (builder style; the runtime-figure binary uses capacity 1 to
    /// emulate the pre-caching behaviour the paper compares against).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Target {
        self.cache = SharedCostCache::new(capacity);
        self
    }

    /// The coupling topology.
    pub fn topology(&self) -> &CouplingMap {
        &self.topo
    }

    /// Device width.
    pub fn n_qubits(&self) -> usize {
        self.topo.n_qubits()
    }

    /// The native basis gate.
    pub fn basis(&self) -> &BasisGate {
        &self.basis
    }

    /// A snapshot of the device calibration (per-edge durations/errors,
    /// per-qubit durations/errors/readout). The returned `Arc` stays
    /// internally consistent even if [`Target::swap_calibration`] runs
    /// concurrently — it simply keeps describing the generation it was
    /// taken under.
    pub fn calibration(&self) -> Arc<Calibration> {
        self.calibration
            .read()
            .expect("calibration poisoned")
            .clone()
    }

    /// A short identifier, e.g. `sqrt_iswap@grid-6x6`.
    pub fn name(&self) -> String {
        format!("{}@{}", self.basis.name, self.topo.name())
    }

    /// The coverage set, building it on first call.
    pub fn coverage(&self) -> &Arc<CoverageSet> {
        self.coverage.get_or_init(|| match self.shared_coverage {
            Some(shared) => shared(),
            None => Arc::new(CoverageSet::build(self.basis.clone(), &self.coverage_opts)),
        })
    }

    /// True once the lazy coverage set has been built (or was supplied at
    /// construction).
    pub fn coverage_built(&self) -> bool {
        self.coverage.get().is_some()
    }

    /// The shared cost cache.
    pub fn cache(&self) -> &SharedCostCache {
        &self.cache
    }

    /// Aggregate `(hits, misses)` of the shared cost cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Minimum decomposition duration of coordinate class `w` in the
    /// target basis, answered through the shared cache (unreachable
    /// classes are charged one application past the deepest built level,
    /// keeping the cost function total).
    pub fn gate_cost(&self, w: &WeylCoord) -> f64 {
        let coverage = self.coverage();
        self.cache.get_or_insert_with(w, || coverage.cost_or_max(w))
    }

    /// Decomposition cost of coordinate class `w` executed on the coupler
    /// `(a, b)`: the basis-independent [`Target::gate_cost`] scaled by that
    /// edge's calibrated duration factor. Pairs without a calibration entry
    /// (a circuit scored before placement) fall back to the nominal factor.
    ///
    /// Answered through an epoch-tagged per-edge cache entry, so the hot
    /// path (every mirror decision of every routing trial) skips both the
    /// polytope scan and the calibration lookup — and a calibration swap
    /// invalidates exactly these entries.
    pub fn gate_cost_on(&self, w: &WeylCoord, a: usize, b: usize) -> f64 {
        self.cache.get_or_insert_edge_with(w, a, b, || {
            self.gate_cost(w) * self.calibration().edge_or_nominal(a, b).duration_factor
        })
    }

    /// [`Target::gate_cost_on`] through a caller-owned per-worker
    /// [`CostMemo`]: the router's steady state, where the mirror decision
    /// queries the same handful of `(class, edge)` pairs for thousands of
    /// gates and must not take two sharded-mutex locks per gate. A memo
    /// miss is seeded from one [`SharedCostCache`] read at the current
    /// epoch; a memo hit touches no shared state at all. The memo is
    /// epoch-tagged with the same counter the shared cache uses, so a
    /// calibration swap invalidates both identically and the returned
    /// value is always bit-identical to [`Target::gate_cost_on`].
    pub fn gate_cost_on_memo(&self, memo: &mut CostMemo, w: &WeylCoord, a: usize, b: usize) -> f64 {
        let epoch = self.cache.epoch();
        memo.get_or_insert_edge_with(w, a, b, epoch, || {
            self.cache.get_or_insert_edge_at(w, a, b, epoch, || {
                self.gate_cost(w) * self.calibration().edge_or_nominal(a, b).duration_factor
            })
        })
    }

    /// [`Target::duration_weight`] against an explicit calibration
    /// snapshot: whole-circuit weighing takes the snapshot once instead of
    /// paying a lock acquisition per single-qubit gate.
    fn duration_weight_with(&self, cal: &Calibration, instr: &Instruction) -> f64 {
        if !instr.gate.is_two_qubit() {
            return cal.qubit_or_default(instr.qubits[0]).duration_1q;
        }
        self.gate_cost_on(
            &coords_of(&instr.gate.matrix2()),
            instr.qubits[0],
            instr.qubits[1],
        )
    }

    /// Instruction weight under the calibration: two-qubit gates cost their
    /// decomposition duration scaled by their edge's duration factor,
    /// single-qubit gates cost their qubit's calibrated 1Q duration.
    pub fn duration_weight(&self, instr: &Instruction) -> f64 {
        self.duration_weight_with(&self.calibration(), instr)
    }

    /// Duration-weighted critical path of a circuit on this target
    /// (MIRAGE-Depth's post-selection metric, paper §IV-B). One calibration
    /// snapshot weighs the whole circuit; two-qubit costs resolve through
    /// the epoch-tagged per-edge cache.
    pub fn depth_estimate(&self, c: &Circuit) -> f64 {
        let cal = self.calibration();
        c.weighted_depth(|i| self.duration_weight_with(&cal, i))
    }

    /// Total decomposition cost (sum over all gates), under one
    /// calibration snapshot.
    pub fn total_gate_cost(&self, c: &Circuit) -> f64 {
        let cal = self.calibration();
        c.instructions
            .iter()
            .map(|i| self.duration_weight_with(&cal, i))
            .sum()
    }

    /// [`Target::instruction_log_success`] against an explicit calibration
    /// snapshot — the shared core that keeps whole-circuit scores on one
    /// snapshot (one lock acquisition, one consistent calibration).
    fn instruction_log_success_with(&self, cal: &Calibration, instr: &Instruction) -> f64 {
        if !instr.gate.is_two_qubit() {
            let q = cal.qubit_or_default(instr.qubits[0]);
            return ln_survival(q.error_1q);
        }
        let w = coords_of(&instr.gate.matrix2());
        let applications = self.gate_cost(&w) / self.basis.duration;
        let edge = cal.edge_or_nominal(instr.qubits[0], instr.qubits[1]);
        applications * ln_survival(edge.error_2q)
    }

    /// Natural log of one instruction's estimated success probability.
    ///
    /// Two-qubit gates pay their edge's per-application error once per
    /// basis application (`cost / basis.duration` applications — a SWAP
    /// priced at 3 CNOTs or 3 √iSWAPs pays 3, a mirror only its own cost);
    /// single-qubit gates pay their qubit's 1Q error once.
    pub fn instruction_log_success(&self, instr: &Instruction) -> f64 {
        self.instruction_log_success_with(&self.calibration(), instr)
    }

    /// Natural log of a circuit's estimated success probability: the sum of
    /// per-instruction log-fidelities (readout excluded; see
    /// [`Target::readout_log_success`]), all under one calibration
    /// snapshot.
    pub fn circuit_log_success(&self, c: &Circuit) -> f64 {
        let cal = self.calibration();
        c.instructions
            .iter()
            .map(|i| self.instruction_log_success_with(&cal, i))
            .sum()
    }

    /// Natural log of the probability that measuring the given physical
    /// qubits all succeeds, under the calibrated readout errors.
    pub fn readout_log_success(&self, measured: &[usize]) -> f64 {
        let cal = self.calibration();
        measured
            .iter()
            .map(|&q| ln_survival(cal.qubit_or_default(q).readout_error))
            .sum()
    }

    /// Estimated success probability of running `c` and measuring the
    /// physical qubits in `measured` — the quantity
    /// [`crate::trials::Metric::EstimatedSuccess`] post-selects on.
    pub fn estimated_success(&self, c: &Circuit, measured: &[usize]) -> f64 {
        (self.circuit_log_success(c) + self.readout_log_success(measured)).exp()
    }

    /// Quality of one physical qubit as a seat for a circuit qubit: the
    /// log-survival of its own 1Q and readout errors plus the **mean**
    /// log-survival per application across its incident couplers. Always
    /// `≤ 0`, with `0` the ideal qubit; on [`Calibration::uniform`] every
    /// qubit scores exactly `0`. The `NoiseAware` layout strategy ranks
    /// seats by this number.
    pub fn qubit_quality(&self, q: usize) -> f64 {
        self.qubit_quality_with(&self.calibration(), q)
    }

    /// [`Target::qubit_quality`] against an explicit calibration snapshot,
    /// so rankings over the whole register (the noise-aware layout
    /// strategies score every seat per proposal) take the lock once and
    /// can never mix two calibrations within one ranking.
    pub(crate) fn qubit_quality_with(&self, cal: &Calibration, q: usize) -> f64 {
        let qc = cal.qubit_or_default(q);
        let neighbors = self.topo.neighbors(q);
        let edge_term = if neighbors.is_empty() {
            0.0
        } else {
            neighbors
                .iter()
                .map(|&nb| ln_survival(cal.edge_or_nominal(q, nb).error_2q))
                .sum::<f64>()
                / neighbors.len() as f64
        };
        ln_survival(qc.error_1q) + ln_survival(qc.readout_error) + edge_term
    }

    /// Quality of a connected region of physical qubits: the sum of the
    /// members' 1Q/readout log-survivals plus the log-survival of every
    /// coupler internal to the region (counted once). Higher is better and
    /// `0` is a noiseless region; comparing candidate regions of equal size
    /// tells a layout strategy where a circuit should live.
    pub fn region_quality(&self, qubits: &[usize]) -> f64 {
        let cal = self.calibration();
        let member: std::collections::HashSet<usize> = qubits.iter().copied().collect();
        let mut quality = 0.0;
        for &q in &member {
            let qc = cal.qubit_or_default(q);
            quality += ln_survival(qc.error_1q) + ln_survival(qc.readout_error);
            for &nb in self.topo.neighbors(q) {
                if nb > q && member.contains(&nb) {
                    quality += ln_survival(cal.edge_or_nominal(q, nb).error_2q);
                }
            }
        }
        quality
    }
}

/// `ln(1 − e)`, clamped so pathological error rates (`e → 1`) stay finite
/// and comparisons through [`f64::total_cmp`] remain well-ordered.
fn ln_survival(error: f64) -> f64 {
    (1.0 - error).max(1e-300).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_circuit::generators::ghz;

    #[test]
    fn lazy_coverage_not_built_on_construction() {
        let t = Target::sqrt_iswap(CouplingMap::line(4));
        assert!(!t.coverage_built());
        let _ = t.gate_cost(&WeylCoord::CNOT);
        assert!(t.coverage_built());
    }

    #[test]
    fn stock_coverage_options_match_atlas_specs() {
        // The shared statics resolve through `atlas::stock_set`; the
        // per-target fallback options built here must describe the same
        // sets, or a custom `Target::new` with these options would diverge
        // from the atlas-backed stock targets. Only the three bases behind
        // `Target`'s constructors must match — the dense mirror-inclusive
        // iswap_1_3 atlas exists to exercise the grid-classifier query
        // path and deliberately uses deeper, mirror-inclusive options.
        let specs = mirage_coverage::atlas::stock_specs();
        let mut target_backed = 0;
        for (basis, opts) in &specs {
            match basis.name.as_str() {
                "sqrt_iswap" | "cnot" | "cz" => {
                    target_backed += 1;
                    assert_eq!(
                        &default_coverage_options(opts.seed),
                        opts,
                        "stock spec drifted for {}",
                        basis.name
                    );
                }
                "iswap_1_3" => assert!(
                    opts.mirrors && opts.max_k > default_coverage_options(opts.seed).max_k,
                    "iswap_1_3 exists to cover the dense/grid path"
                ),
                other => panic!("unexpected stock spec {other}"),
            }
        }
        assert_eq!(target_backed, 3, "a Target-backed stock basis vanished");
        let seeds: Vec<u64> = specs.iter().map(|(_, o)| o.seed).collect();
        assert_eq!(seeds, [0xC0FFEE, 0xC407, 0xC2, 0xC133]);
    }

    #[test]
    fn sqrt_iswap_costs_match_paper() {
        let t = Target::sqrt_iswap(CouplingMap::line(3));
        assert!((t.gate_cost(&WeylCoord::CNOT) - 1.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::SWAP) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_basis_prices_cnot_at_one_application() {
        let t = Target::cnot(CouplingMap::line(3));
        assert!((t.gate_cost(&WeylCoord::CNOT) - 1.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::ISWAP) - 2.0).abs() < 1e-12);
        assert!((t.gate_cost(&WeylCoord::SWAP) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cz_basis_matches_cnot_costs() {
        let cz = Target::cz(CouplingMap::line(3));
        let cnot = Target::cnot(CouplingMap::line(3));
        for w in [WeylCoord::CNOT, WeylCoord::ISWAP, WeylCoord::SWAP] {
            assert!((cz.gate_cost(&w) - cnot.gate_cost(&w)).abs() < 1e-12);
        }
        assert_eq!(cz.basis().name, "cz");
    }

    #[test]
    fn gate_cost_is_cached() {
        let t = Target::sqrt_iswap(CouplingMap::line(3));
        let a = t.gate_cost(&WeylCoord::CNOT);
        let b = t.gate_cost(&WeylCoord::CNOT);
        assert_eq!(a, b);
        let (hits, misses) = t.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn depth_and_total_cost() {
        let t = Target::sqrt_iswap(CouplingMap::line(4));
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3).swap(1, 2);
        // cx (1.0) ∥ cx (1.0), then swap (1.5): critical = 2.5, total 3.5.
        assert!((t.depth_estimate(&c) - 2.5).abs() < 1e-9);
        assert!((t.total_gate_cost(&c) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn one_qubit_duration_model() {
        let t = Target::sqrt_iswap(CouplingMap::line(2))
            .with_durations(DurationModel { one_qubit: 0.1 });
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert!((t.depth_estimate(&c) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn with_coverage_is_prebuilt() {
        let cov = default_coverage();
        let t = Target::with_coverage(CouplingMap::ring(5), cov.clone());
        assert!(t.coverage_built());
        assert_eq!(t.basis().name, "sqrt_iswap");
        assert!(Arc::ptr_eq(t.coverage(), &cov));
    }

    #[test]
    fn name_combines_basis_and_topology() {
        let t = Target::cnot(CouplingMap::grid(2, 3));
        assert_eq!(t.name(), "cnot@grid-2x3");
        assert_eq!(t.n_qubits(), 6);
    }

    #[test]
    fn target_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Target>();
        let _ = ghz(2); // keep the generators import exercised
    }

    #[test]
    fn default_duration_model_derives_from_uniform_calibration() {
        // One source of truth: DurationModel::default() is the 1Q duration
        // of the ideal qubit Calibration::uniform hands out.
        assert_eq!(
            DurationModel::default().one_qubit,
            QubitCalibration::default().duration_1q
        );
        let t = Target::sqrt_iswap(CouplingMap::line(3));
        assert_eq!(t.calibration().qubit_or_default(0).duration_1q, 0.0);
    }

    #[test]
    fn per_edge_duration_scales_depth() {
        let topo = CouplingMap::line(3);
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            1,
            2,
            crate::calibration::EdgeCalibration {
                duration_factor: 10.0,
                error_2q: 0.0,
            },
        )
        .unwrap();
        let t = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        let mut cheap = Circuit::new(3);
        cheap.cx(0, 1);
        let mut dear = Circuit::new(3);
        dear.cx(1, 2);
        assert!((t.depth_estimate(&cheap) - 1.0).abs() < 1e-9);
        assert!((t.depth_estimate(&dear) - 10.0).abs() < 1e-9);
        assert!((t.gate_cost_on(&WeylCoord::CNOT, 2, 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn log_success_prices_per_application() {
        let topo = CouplingMap::line(2);
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            crate::calibration::EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 0.01,
            },
        )
        .unwrap();
        let t = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        // CNOT = 2 √iSWAP applications, SWAP = 3.
        let mut cnot = Circuit::new(2);
        cnot.cx(0, 1);
        let mut swap = Circuit::new(2);
        swap.swap(0, 1);
        let ln_s = (1.0f64 - 0.01).ln();
        assert!((t.circuit_log_success(&cnot) - 2.0 * ln_s).abs() < 1e-12);
        assert!((t.circuit_log_success(&swap) - 3.0 * ln_s).abs() < 1e-12);
        // Success probability includes readout of the measured qubits.
        let mut cal2 = Calibration::uniform(t.topology());
        cal2.set_qubit(
            0,
            QubitCalibration {
                duration_1q: 0.0,
                error_1q: 0.0,
                readout_error: 0.5,
            },
        )
        .unwrap();
        let t2 = Target::sqrt_iswap(CouplingMap::line(2))
            .with_calibration(cal2)
            .unwrap();
        let empty = Circuit::new(2);
        assert!((t2.estimated_success(&empty, &[0]) - 0.5).abs() < 1e-12);
        assert!((t2.estimated_success(&empty, &[1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_calibration_scores_like_stock_target() {
        let stock = Target::sqrt_iswap(CouplingMap::line(4));
        let calibrated = Target::sqrt_iswap(CouplingMap::line(4))
            .with_calibration(Calibration::uniform(&CouplingMap::line(4)))
            .unwrap();
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).swap(1, 2);
        assert_eq!(stock.depth_estimate(&c), calibrated.depth_estimate(&c));
        assert_eq!(stock.total_gate_cost(&c), calibrated.total_gate_cost(&c));
        assert_eq!(calibrated.estimated_success(&c, &[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn with_calibration_rejects_partial_coverage() {
        let topo = CouplingMap::line(4);
        let partial =
            Calibration::from_edges(4, &[(0, 1, crate::calibration::EdgeCalibration::default())])
                .unwrap();
        let err = Target::sqrt_iswap(topo)
            .with_calibration(partial)
            .unwrap_err();
        assert!(matches!(err, CalibrationError::MissingEdge { .. }));
    }

    #[test]
    fn qubit_and_region_quality_rank_noise() {
        let topo = CouplingMap::line(4);
        let mut cal = Calibration::uniform(&topo);
        // Degrade the right end: qubit 3 reads out badly, edge (2,3) is lossy.
        cal.set_qubit(
            3,
            QubitCalibration {
                duration_1q: 0.0,
                error_1q: 0.0,
                readout_error: 0.1,
            },
        )
        .unwrap();
        cal.set_edge(
            2,
            3,
            crate::calibration::EdgeCalibration {
                duration_factor: 1.0,
                error_2q: 0.05,
            },
        )
        .unwrap();
        let t = Target::sqrt_iswap(topo).with_calibration(cal).unwrap();
        // Ideal qubits score 0; degraded seats score strictly worse.
        assert_eq!(t.qubit_quality(0), 0.0);
        assert!(t.qubit_quality(3) < t.qubit_quality(1));
        assert!(t.qubit_quality(2) < t.qubit_quality(1), "lossy coupler");
        // The clean left pair beats the degraded right pair.
        assert_eq!(t.region_quality(&[0, 1]), 0.0);
        assert!(t.region_quality(&[2, 3]) < t.region_quality(&[0, 1]));
        // Internal edges count once; disconnected members add no edge term.
        assert_eq!(t.region_quality(&[0, 2]), 0.0);
        // On a uniform target everything is indistinguishable.
        let uniform = Target::sqrt_iswap(CouplingMap::line(4));
        assert!(uniform.calibration().is_uniform());
        for q in 0..4 {
            assert_eq!(uniform.qubit_quality(q), 0.0);
        }
    }

    #[test]
    fn swap_calibration_never_serves_stale_edge_costs() {
        let topo = CouplingMap::line(3);
        let t = Target::sqrt_iswap(topo.clone());
        assert_eq!(t.calibration_generation(), 0);
        // Warm the per-edge cache under the uniform calibration.
        assert!((t.gate_cost_on(&WeylCoord::CNOT, 0, 1) - 1.0).abs() < 1e-12);
        assert!((t.gate_cost_on(&WeylCoord::CNOT, 0, 1) - 1.0).abs() < 1e-12);

        // Swap in a calibration that makes (0, 1) ten times slower.
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            crate::calibration::EdgeCalibration {
                duration_factor: 10.0,
                error_2q: 0.01,
            },
        )
        .unwrap();
        let generation = t.swap_calibration(Arc::new(cal)).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(t.calibration_generation(), 1);
        // The warm cache must answer with the *new* factor immediately.
        assert!((t.gate_cost_on(&WeylCoord::CNOT, 0, 1) - 10.0).abs() < 1e-12);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        assert!((t.depth_estimate(&c) - 10.0).abs() < 1e-9);
        // Success estimates reflect the swapped error rates too.
        let ln_s = (1.0f64 - 0.01).ln();
        assert!((t.circuit_log_success(&c) - 2.0 * ln_s).abs() < 1e-12);
        // The coverage set was not rebuilt: coordinate-only costs stay
        // warm (a second query after the swap is a pure hit).
        let (hits_before, misses_before) = t.cache_stats();
        let _ = t.gate_cost(&WeylCoord::CNOT);
        let (hits_after, misses_after) = t.cache_stats();
        assert_eq!(misses_after, misses_before, "coordinate entry went cold");
        assert_eq!(hits_after, hits_before + 1);
    }

    #[test]
    fn with_calibration_on_a_warmed_target_retires_stale_edge_costs() {
        // The builder path must behave like a hot swap for the cache: a
        // target probed before `with_calibration` (e.g. a shared
        // `with_coverage` target) may already hold per-edge entries.
        let topo = CouplingMap::line(3);
        let warmed = Target::sqrt_iswap(topo.clone());
        assert!((warmed.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 1.5).abs() < 1e-12);
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            crate::calibration::EdgeCalibration {
                duration_factor: 3.0,
                error_2q: 0.0,
            },
        )
        .unwrap();
        let t = warmed.with_calibration(cal).unwrap();
        assert!(
            (t.gate_cost_on(&WeylCoord::SWAP, 0, 1) - 4.5).abs() < 1e-12,
            "stale pre-builder cost served"
        );
    }

    #[test]
    fn swap_calibration_rejects_partial_coverage_and_keeps_state() {
        let t = Target::sqrt_iswap(CouplingMap::line(4));
        let _ = t.gate_cost_on(&WeylCoord::SWAP, 1, 2);
        let partial =
            Calibration::from_edges(4, &[(0, 1, crate::calibration::EdgeCalibration::default())])
                .unwrap();
        let err = t.swap_calibration(Arc::new(partial)).unwrap_err();
        assert!(matches!(err, CalibrationError::MissingEdge { .. }));
        // Failed swaps leave generation, calibration, and cache untouched.
        assert_eq!(t.calibration_generation(), 0);
        assert!(t.calibration().is_uniform());
        let (hits_before, _) = t.cache_stats();
        let _ = t.gate_cost_on(&WeylCoord::SWAP, 1, 2);
        let (hits_after, _) = t.cache_stats();
        assert_eq!(hits_after, hits_before + 1, "cache should still be warm");
    }

    #[test]
    fn swap_calibration_is_visible_through_shared_references() {
        // The serving shape: one Arc<Target> scored from several threads
        // while the calibration swaps underneath.
        let topo = CouplingMap::line(2);
        let t = Arc::new(Target::sqrt_iswap(topo.clone()));
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        assert_eq!(t.estimated_success(&c, &[0, 1]), 1.0);
        let mut noisy = Calibration::uniform(&topo);
        noisy
            .set_edge(
                0,
                1,
                crate::calibration::EdgeCalibration {
                    duration_factor: 1.0,
                    error_2q: 0.25,
                },
            )
            .unwrap();
        t.swap_calibration(Arc::new(noisy)).unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let success = t.estimated_success(&c, &[0, 1]);
                    assert!((success - 0.75f64.powi(2)).abs() < 1e-12);
                });
            }
        });
    }

    #[test]
    fn gate_cost_on_memo_matches_shared_path_across_swaps() {
        let topo = CouplingMap::line(3);
        let t = Target::sqrt_iswap(topo.clone());
        let mut memo = CostMemo::new();
        for w in [WeylCoord::CNOT, WeylCoord::SWAP, WeylCoord::ISWAP] {
            assert_eq!(
                t.gate_cost_on_memo(&mut memo, &w, 0, 1),
                t.gate_cost_on(&w, 0, 1)
            );
        }
        // Memo hits stop querying the shared cache entirely.
        let queries = |t: &Target| {
            let (h, m) = t.cache_stats();
            h + m
        };
        let before = queries(&t);
        for _ in 0..5 {
            let _ = t.gate_cost_on_memo(&mut memo, &WeylCoord::CNOT, 0, 1);
        }
        assert_eq!(queries(&t), before, "memo hits must bypass the cache");

        // A swap invalidates the memo exactly like the shared cache: the
        // warm memo must answer with the new factor immediately.
        let mut cal = Calibration::uniform(&topo);
        cal.set_edge(
            0,
            1,
            crate::calibration::EdgeCalibration {
                duration_factor: 10.0,
                error_2q: 0.0,
            },
        )
        .unwrap();
        t.swap_calibration(Arc::new(cal)).unwrap();
        assert!((t.gate_cost_on_memo(&mut memo, &WeylCoord::CNOT, 0, 1) - 10.0).abs() < 1e-12);
        assert_eq!(
            t.gate_cost_on_memo(&mut memo, &WeylCoord::SWAP, 0, 1),
            t.gate_cost_on(&WeylCoord::SWAP, 0, 1)
        );
    }

    #[test]
    fn with_durations_rewrites_all_qubits() {
        let t = Target::sqrt_iswap(CouplingMap::line(3))
            .with_durations(DurationModel { one_qubit: 0.25 });
        for q in 0..3 {
            assert_eq!(t.calibration().qubit_or_default(q).duration_1q, 0.25);
        }
    }
}
